#!/usr/bin/env python
"""Hardware/software codesign from one PIM — the MDA story end to end.

One platform-independent model of a packet filter is transformed into:

* a **software PSM** (tasks, queues, scheduler) and
* a **hardware PSM** (clocked modules, register map, deployment model),

then code is generated for both sides — executable Python for the
software path (actually run here) and VHDL/Verilog/SystemC for the
hardware path — demonstrating the "inherent interchangeability between
hardware and software" the paper claims interfaces should give.

Run:  python examples/hw_sw_codesign.py
"""

import repro.metamodel as mm
from repro.codegen import VALIDATORS, generate_all, python_gen
from repro.mda import hardware_transformation, software_transformation
from repro.metrics import abstraction_report
from repro.profiles import create_soc_profile, has_stereotype
from repro.statemachines import StateMachine, TransitionKind


def build_pim():
    """PIM: a packet filter that drops bad frames and forwards good ones."""
    model = mm.Model("packet_filter")
    design = model.create_package("design")

    filter_comp = design.add(mm.Component("Filter"))
    filter_comp.add_attribute("accepted", mm.INTEGER, default=0)
    filter_comp.add_attribute("dropped", mm.INTEGER, default=0)
    filter_comp.add_attribute("threshold", mm.INTEGER, default=64)
    filter_comp.add_port("in", direction=mm.PortDirection.IN)
    filter_comp.add_port("out", direction=mm.PortDirection.OUT)

    classify = filter_comp.add_operation("classify", mm.BOOLEAN)
    classify.add_parameter("length", mm.INTEGER)
    classify.set_body("return length >= threshold;")

    machine = StateMachine("FilterFsm")
    region = machine.region
    init = region.add_initial()
    ready = region.add_state("Ready")
    region.add_transition(init, ready)
    region.add_transition(
        ready, ready, trigger="Frame",
        guard="event.length >= threshold",
        effect='accepted = accepted + 1; '
               'send Forward(length=event.length) to "out";',
        kind=TransitionKind.INTERNAL)
    region.add_transition(
        ready, ready, trigger="Frame",
        guard="event.length < threshold",
        effect="dropped = dropped + 1;",
        kind=TransitionKind.INTERNAL)
    filter_comp.add_behavior(machine, as_classifier_behavior=True)
    return model


def main():
    profile = create_soc_profile()
    pim = build_pim()
    print(f"PIM: {pim.element_count()} elements")

    # --- software path ----------------------------------------------------
    sw = software_transformation().transform(pim, profiles=[profile])
    sw_filter = sw.psm.resolve("design::Filter", mm.Component)
    print(f"\nsoftware PSM: +{[m.name for m in sw_filter.members][-4:]} "
          f"and runtime package "
          f"{[c.name for c in sw.psm.member('runtime').members]}")

    # run the software realization: generated executable Python
    classes = python_gen.compile_module(sw_filter)
    forwarded = []
    instance = classes["Filter"](
        on_send=lambda sig, tgt, args: forwarded.append(args["length"]))
    for length in (128, 32, 96, 16, 64):
        instance.dispatch("Frame", length=length)
    print(f"generated SW run: accepted={instance.accepted} "
          f"dropped={instance.dropped} forwarded={forwarded}")

    # --- hardware path -----------------------------------------------------
    hw = hardware_transformation().transform(pim, profiles=[profile])
    hw_filter = hw.psm.resolve("design::Filter", mm.Component)
    print(f"\nhardware PSM: ports={[p.name for p in hw_filter.ports]}, "
          f"<<HwModule>>={has_stereotype(hw_filter, 'HwModule')}")
    deployment = hw.psm.member("deployment", mm.Package)
    print(f"deployment: {[m.name for m in deployment.members]}")

    generated = generate_all(hw.psm)
    print("\nbackend          files  lines  valid")
    for backend, files in generated.items():
        lines = sum(len(text.splitlines()) for text in files.values())
        valid = all(not VALIDATORS[backend](text)
                    for text in files.values())
        print(f"{backend:15}  {len(files):5}  {lines:5}  {valid}")

    merged = {backend: "\n".join(files.values())
              for backend, files in generated.items()}
    report = abstraction_report(pim, merged)
    print(f"\nabstraction gap: {report.model_loc:.0f} model-LoC -> "
          f"{report.total_generated} generated LoC "
          f"(x{report.expansion_factor:.1f})")

    print("\n--- generated Verilog (excerpt) ---")
    verilog_text = next(iter(generated["verilog"].values()))
    print("\n".join(verilog_text.splitlines()[:20]))


if __name__ == "__main__":
    main()
