#!/usr/bin/env python
"""Quickstart: model a tiny SoC block in UML 2.0 and use every layer.

Builds a `Counter` hardware block as a UML component with an executable
state machine, then walks the full flow the paper sketches:

1. model it (metamodel + SoC profile),
2. validate it (well-formedness + profile constraints),
3. execute it (run-to-completion interpreter),
4. interchange it (XMI round-trip),
5. transform it (PIM -> hardware PSM via MDA),
6. generate hardware code from it (VHDL shown here).

Run:  python examples/quickstart.py
"""

import repro.metamodel as mm
from repro import xmi
from repro.codegen import vhdl
from repro.mda import hardware_transformation
from repro.profiles import apply_stereotype, create_soc_profile, tagged_value
from repro.statemachines import StateMachine, StateMachineRuntime, TransitionKind
from repro.validation import validate_model


def build_model():
    """A Counter component: counts Tick events, raises Overflow."""
    profile = create_soc_profile()
    model = mm.Model("quickstart")
    design = model.create_package("design")

    counter = design.add(mm.Component("Counter"))
    apply_stereotype(counter, profile.stereotype("HwModule"),
                     clock_domain="core")
    count = counter.add_attribute("count", mm.INTEGER, default=0)
    limit = counter.add_attribute("limit", mm.INTEGER, default=3)
    apply_stereotype(count, profile.stereotype("Register"),
                     address=0x0, access="RO")
    apply_stereotype(limit, profile.stereotype("Register"),
                     address=0x4, access="RW")
    counter.add_port("irq", direction=mm.PortDirection.OUT)

    machine = StateMachine("CounterFsm")
    region = machine.region
    init = region.add_initial()
    counting = region.add_state("Counting")
    saturated = region.add_state("Saturated")
    region.add_transition(init, counting)
    region.add_transition(counting, counting, trigger="Tick",
                          guard="count + 1 < limit",
                          effect="count = count + 1;",
                          kind=TransitionKind.INTERNAL)
    region.add_transition(counting, saturated, trigger="Tick",
                          guard="count + 1 >= limit",
                          effect='count = count + 1; '
                                 'send Overflow(value=count) to "irq";')
    region.add_transition(saturated, counting, trigger="Clear",
                          effect="count = 0;")
    counter.add_behavior(machine, as_classifier_behavior=True)
    return model, profile, counter, machine


def main():
    model, profile, counter, machine = build_model()

    # 2. validate
    report = validate_model(model)
    print(f"validation: {report.summary()}")
    assert report.ok

    # 3. execute the model directly (xUML)
    sent = []
    runtime = StateMachineRuntime(machine,
                                  context={"count": 0, "limit": 3},
                                  signal_sink=sent.append).start()
    for _ in range(3):
        runtime.send("Tick")
    print(f"after 3 ticks: state={runtime.active_leaf_names()}, "
          f"count={runtime.context['count']}, irq={sent}")
    runtime.send("Clear")
    print(f"after clear:   state={runtime.active_leaf_names()}, "
          f"count={runtime.context['count']}")

    # 4. interchange via XMI
    text = xmi.write_model(model, profiles=[profile])
    restored = xmi.read_model(text)
    print(f"XMI round-trip: {len(text)} bytes, "
          f"{restored.model.element_count()} elements restored")

    # 5. MDA: PIM -> hardware PSM
    result = hardware_transformation().transform(model,
                                                 profiles=[profile])
    psm_counter = result.psm.resolve("design::Counter", mm.Component)
    print(f"PSM ports: {[p.name for p in psm_counter.ports]}, "
          f"completeness={result.completeness():.0%}")
    print(f"register 'count' @ "
          f"{tagged_value(psm_counter.member('count'), 'Register', 'address'):#x}")

    # 6. generate VHDL from the PSM
    vhdl_text = vhdl.generate_component(psm_counter)
    print("\n--- generated VHDL (first 25 lines) ---")
    print("\n".join(vhdl_text.splitlines()[:25]))


if __name__ == "__main__":
    main()
