#!/usr/bin/env python
"""xUML in action: a system of live objects executing pure UML.

The paper's Section 3 describes Executable UML: ASL gives "notation and
semantics for single actions like operation calls and assignments" so a
UML model becomes a complete, runnable specification.  This example
builds a small credit-based flow-control system as UML classes *only*
(attributes, ASL operation bodies, statecharts, invariants) and then:

1. instantiates live objects (:class:`repro.xuml.XObject`),
2. calls ASL operations and watches state change,
3. lets two objects converse through signal routing
   (:class:`repro.xuml.XUniverse`),
4. checks class invariants on the live objects after every step.

Run:  python examples/xuml_objects.py
"""

import repro.metamodel as mm
from repro.statemachines import StateMachine, TransitionKind
from repro.validation import add_invariant, check_object
from repro.xuml import XObject, XUniverse


def build_sender_class():
    """Sends Data while it has credits; each Credit tops it up."""
    sender = mm.UmlClass("Sender", is_active=True)
    sender.add_attribute("credits", mm.INTEGER, default=2)
    sender.add_attribute("sent", mm.INTEGER, default=0)
    add_invariant(sender, "credits >= 0", name="no-negative-credit")

    refill = sender.add_operation("refill", mm.INTEGER)
    refill.add_parameter("amount", mm.INTEGER)
    refill.set_body("credits = credits + amount; return credits;")

    machine = StateMachine("SenderFsm")
    region = machine.region
    init = region.add_initial()
    ready = region.add_state("Ready")
    region.add_transition(init, ready)
    region.add_transition(
        ready, ready, trigger="Go",
        guard="credits > 0",
        effect='credits = credits - 1; sent = sent + 1; '
               'send Data(seq=sent) to "receiver";',
        kind=TransitionKind.INTERNAL)
    region.add_transition(
        ready, ready, trigger="Credit",
        effect="credits = credits + event.amount;",
        kind=TransitionKind.INTERNAL)
    sender.add_behavior(machine, as_classifier_behavior=True)
    return sender


def build_receiver_class():
    """Acknowledges every other Data with a Credit (batching)."""
    receiver = mm.UmlClass("Receiver", is_active=True)
    receiver.add_attribute("received", mm.INTEGER, default=0)
    add_invariant(receiver, "received >= 0")

    machine = StateMachine("ReceiverFsm")
    region = machine.region
    init = region.add_initial()
    listening = region.add_state("Listening")
    region.add_transition(init, listening)
    region.add_transition(
        listening, listening, trigger="Data",
        effect='received = received + 1; '
               'if (received % 2 == 0) '
               '{ send Credit(amount=2) to "sender"; }',
        kind=TransitionKind.INTERNAL)
    receiver.add_behavior(machine, as_classifier_behavior=True)
    return receiver


def main():
    sender_cls = build_sender_class()
    receiver_cls = build_receiver_class()

    # 1-2. a lone object: operations + state machine on shared state
    lone = XObject(sender_cls, "lone", credits=1)
    print(f"lone object:     {lone.attributes}")
    lone.call("refill", 4)
    print(f"after refill(4): {lone.attributes}")
    lone.send("Go")
    print(f"after Go:        {lone.attributes}, outbox={len(lone.sent)}")
    print(f"invariants:      {check_object(lone) or 'all hold'}")

    # 3. a universe of communicating objects
    universe = XUniverse()
    sender = universe.create(sender_cls, "sender", credits=2)
    receiver = universe.create(receiver_cls, "receiver")

    print("\ndriving 6 Go events through the flow-control loop:")
    for step in range(6):
        universe.send("sender", "Go")
        assert check_object(sender) == [], "invariant broken!"
        assert check_object(receiver) == []
        print(f"  step {step}: credits={sender.attributes['credits']} "
              f"sent={sender.attributes['sent']} "
              f"received={receiver.attributes['received']}")

    print(f"\ndelivered {universe.delivered} signals total")
    print(f"final snapshot: {universe.snapshot()}")
    # flow control held: the sender never overran its credit window
    assert sender.attributes["sent"] == receiver.attributes["received"]
    print("flow control verified: sent == received, credits >= 0 "
          "throughout")


if __name__ == "__main__":
    main()
