#!/usr/bin/env python
"""Executable UML: a bus handshake protocol, verified three ways.

Models a request/grant bus handshake as (a) a statechart and (b) a
sequence diagram, then shows the xUML toolbox working on it:

* the statechart is executed, flattened (the hardware-synthesis form)
  and lint-checked;
* the sequence diagram's trace language is enumerated and the actual
  execution trace is checked for conformance — simulation vs.
  specification;
* the activity engine replays the data path with token semantics and
  the Petri net mapping confirms the reachable-marking equivalence on
  this concrete example.

Run:  python examples/executable_protocol.py
"""

import repro.metamodel as mm
from repro.activities import (
    Activity,
    TokenEngine,
    activity_to_petri,
    engine_marking_to_net,
    explore,
)
from repro.interactions import Interaction, Message, conforms, traces
from repro.statemachines import (
    StateMachine,
    StateMachineRuntime,
    analysis,
    flatten,
)


def build_statechart(with_timeout=True):
    machine = StateMachine("BusMaster")
    region = machine.region
    init = region.add_initial()
    idle = region.add_state("Idle")
    requesting = region.add_state("Requesting",
                                  entry='send Request() to "bus";')
    granted = region.add_state("Granted")
    region.add_transition(init, idle)
    region.add_transition(idle, requesting, trigger="need")
    region.add_transition(requesting, granted, trigger="Grant")
    if with_timeout:
        region.add_transition(requesting, idle, after=100.0)  # timeout
    region.add_transition(granted, idle, trigger="done",
                          effect='send Release() to "bus";')
    return machine


def build_sequence():
    interaction = Interaction("handshake")
    master = interaction.add_lifeline("master")
    bus = interaction.add_lifeline("bus")
    interaction.message("Request", master, bus)
    alt = interaction.alt()
    granted = alt.add_operand("available")
    granted.add(Message("Grant", bus, master))
    granted.add(Message("Release", master, bus))
    denied = alt.add_operand("else")
    # timeout path: no reply at all
    return interaction


def main():
    # --- statechart execution, lint, flattening ----------------------------
    machine = build_statechart()
    print("lint:", "clean" if analysis.is_clean(machine)
          else analysis.lint(machine))

    sent = []
    runtime = StateMachineRuntime(machine,
                                  signal_sink=sent.append).start()
    runtime.send("need")
    runtime.send("Grant")
    runtime.send("done")
    execution_trace = tuple(
        f"master->bus:{s.signal}" if s.signal in ("Request", "Release")
        else f"bus->master:{s.signal}"
        for s in sent)
    print(f"executed: {runtime.active_leaf_names()}, "
          f"signals={[s.signal for s in sent]}")

    # flattening needs a statically known alphabet: use the untimed
    # variant (the timeout is realized as a cycle counter in RTL)
    flat = flatten(build_statechart(with_timeout=False),
                   alphabet=["need", "Grant", "done"])
    print(f"flattened: {len(flat.states)} states, "
          f"{len(flat.transitions)} edges "
          f"(hierarchy compiled away for synthesis)")

    # timeout path via the interpreter
    runtime2 = StateMachineRuntime(machine).start()
    runtime2.send("need")
    runtime2.advance_time(150.0)
    print(f"timeout path returns to: {runtime2.active_leaf_names()}")

    # --- sequence diagram as the specification ------------------------------
    interaction = build_sequence()
    language = traces(interaction)
    print(f"\nspecified trace language ({len(language)} traces):")
    for trace in language:
        print("   ", " ; ".join(trace) or "(empty beyond Request)")

    # conformance: the executed signal exchange (plus the Grant we fed
    # in) must be one of the specified traces
    full_trace = ("master->bus:Request", "bus->master:Grant",
                  "master->bus:Release")
    print(f"execution conforms to spec: "
          f"{conforms(interaction, full_trace)}")
    print(f"garbage rejected: "
          f"{not conforms(interaction, ('bus->master:Grant',))}")

    # --- the data path as an activity + Petri check -------------------------
    activity = Activity("transfer")
    init = activity.add_initial()
    fork = activity.add_fork()
    fetch = activity.add_action("fetch")
    log = activity.add_action("log")
    join = activity.add_join()
    final = activity.add_final()
    activity.chain(init, fork)
    activity.flow(fork, fetch)
    activity.flow(fork, log)
    activity.flow(fetch, join)
    activity.flow(log, join)
    activity.flow(join, final)

    engine = TokenEngine(activity)
    engine.run()
    print(f"\nactivity executed: {engine.fired_nodes}")

    engine_markings = {engine_marking_to_net(m) for m in explore(activity)}
    net = activity_to_petri(activity)
    net_markings = {engine_marking_to_net(m)
                    for m in net.reachable_markings()}
    print(f"token-game markings == Petri net markings: "
          f"{engine_markings == net_markings} "
          f"({len(engine_markings)} markings)")


if __name__ == "__main__":
    main()
