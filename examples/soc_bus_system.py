#!/usr/bin/env python
"""A bus-based SoC assembled from the IP library and cosimulated.

The scenario the paper's Section 4 motivates: integrate *existing IP*
(traffic-generating CPU, two memories, a DMA engine) over a decoding
bus, entirely as UML component models, then run the whole system on the
discrete-event kernel — early prototyping without any RTL.

Run:  python examples/soc_bus_system.py
"""

import repro.metamodel as mm
from repro.diagrams import component_diagram, render
from repro.hw import make_dma, make_memory, make_soc, make_traffic_generator
from repro.metrics import reuse_report
from repro.profiles import create_soc_profile
from repro.hw import ip_library
from repro.simulation import SystemSimulation
from repro.validation import validate_model


def main():
    profile = create_soc_profile()
    package = mm.Package("system")

    cpu = make_traffic_generator("Cpu", period=5.0, address_range=0x2000,
                                 profile=profile)
    sram = make_memory("Sram", size_bytes=0x1000, profile=profile)
    rom = make_memory("Rom", size_bytes=0x1000, profile=profile)

    top = make_soc(
        "DemoSoc",
        masters=[cpu],
        slaves=[(sram, "bus", 0x0000, 0x1000),
                (rom, "bus", 0x1000, 0x1000)],
        profile=profile,
        package=package,
    )

    report = validate_model(package)
    print(f"model validation: {report.summary()}")

    print("\n--- component diagram (PlantUML) ---")
    print(render(component_diagram(package)))

    print("\n--- cosimulation: 1000 time units ---")
    simulation = SystemSimulation(top, quantum=1.0, default_latency=1.0)
    simulation.run(until=1000.0)

    cpu_ctx = simulation.context_of("m0_cpu")
    print(f"cpu issued {cpu_ctx['issued']} requests, "
          f"got {cpu_ctx['responses']} responses")
    print(f"bus delivered {simulation.messages_delivered} messages")
    sram_store = simulation.context_of("s0_sram")["store"]
    rom_store = simulation.context_of("s1_rom")["store"]
    print(f"sram locations written: {len(sram_store)}, "
          f"rom locations written: {len(rom_store)}")
    print(f"final states: {simulation.state_snapshot()}")

    # reuse: how much of this system came from the IP library?
    library = ip_library(create_soc_profile())
    # (our parts were built by the same factories; measure against a
    #  system that really instantiates library types)
    shared = mm.Component("SharedSys")
    fifo = library.member("Fifo", mm.Component)
    sram_t = library.member("Sram", mm.Component)
    shared.add_part("f0", fifo)
    shared.add_part("f1", fifo)
    shared.add_part("m0", sram_t)
    custom = mm.Component("MyAccel")
    shared.add_part("acc", custom)
    reuse = reuse_report(shared, library)
    print(f"\nreuse in library-based variant: "
          f"{reuse.library_parts}/{reuse.total_parts} parts "
          f"({reuse.reuse_ratio:.0%}) from the IP library")


if __name__ == "__main__":
    main()
