"""Verification-grade observability (PR 4): functional coverage,
the deterministic profiler, metrics export, the flight recorder, and
the PERF histogram/percentile machinery they build on."""

import json

import pytest

import repro.metamodel as mm
from repro.activities import AcceptEventAction, Activity
from repro.engine import EVENT, STATE_ENTER, TOKEN, TRANSITION, TraceBus
from repro.errors import ReproError, SimulationError
from repro.faults import FaultCampaign, FaultSpec
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.observability import (
    BIN_KINDS,
    COMPLETION,
    CoverageCollector,
    CoverageModel,
    CoverageReport,
    FlightRecorder,
    ObservabilitySuite,
    SimProfiler,
    cross_key,
    to_json,
    to_prometheus,
    transition_key,
)
from repro.perf import PERF, PerfRegistry
from repro.simulation import SystemSimulation
from repro.statemachines import StateMachine, flatten


def toggle_machine():
    machine = StateMachine("Toggle")
    region = machine.region
    init = region.add_initial()
    off = region.add_state("Off")
    on = region.add_state("On")
    region.add_transition(init, off)
    region.add_transition(off, on, trigger="Go")
    region.add_transition(on, off, trigger="Stop")
    return machine


def toggle_component(name="Dut"):
    component = mm.Component(name)
    component.add_behavior(toggle_machine(), as_classifier_behavior=True)
    return component


def soc_top():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x800)
    ram = make_memory("Ram", size_bytes=0x800)
    return make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)])


class TestCoverageModel:
    def test_bins_from_state_machine(self):
        part = CoverageModel.from_machine("dut", toggle_machine())
        assert part.behavior == "statemachine"
        assert part.bins["state"] == ("Off", "On")
        assert part.bins["event"] == ("Go", "Stop")
        assert transition_key("Off", "Go", "On") in part.bins["transition"]
        assert transition_key("On", "Stop", "Off") in part.bins["transition"]
        # cross = full state x event product
        assert set(part.bins["cross"]) == {
            cross_key(state, event)
            for state in ("Off", "On") for event in ("Go", "Stop")}
        assert part.total_bins == 2 + 2 + 2 + 4

    def test_bins_from_flat_machine(self):
        flat = flatten(toggle_machine())
        part = CoverageModel.from_flat("dut", flat)
        assert part.behavior == "flat"
        assert set(part.bins["state"]) == set(flat.states)
        assert set(part.bins["event"]) == set(flat.alphabet)
        assert len(part.bins["transition"]) == len(flat.transitions)

    def test_bins_from_activity(self):
        activity = Activity("Act")
        start = activity.add_accept_event("wait", event="Kick")
        done = activity.add_action("work")
        activity.flow(start, done)
        part = CoverageModel.from_activity("dut", activity)
        assert part.behavior == "activity"
        assert "wait" in part.bins["state"]
        assert "work" in part.bins["state"]
        assert part.bins["event"] == ("Kick",)
        assert part.bins["transition"] == ()

    def test_for_component_walks_parts(self):
        model = CoverageModel.for_component(soc_top())
        assert set(model.parts) == {"bus", "m0_cpu", "s0_ram"}
        assert model.total_bins > 0

    def test_completion_events_are_normalized(self):
        machine = StateMachine("Chain")
        region = machine.region
        init = region.add_initial()
        a = region.add_state("A")
        b = region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b)  # completion transition
        part = CoverageModel.from_machine("dut", machine)
        if COMPLETION in part.bins["event"]:
            assert transition_key("A", COMPLETION, "B") \
                in part.bins["transition"]
        # no bin may embed a per-process element id
        for kind in BIN_KINDS:
            for key in part.bins[kind]:
                assert "completion(" not in key


class TestCoverageCollector:
    def emit_toggle_run(self, collector_bus):
        collector_bus.emit(STATE_ENTER, 0.0, "dut", {"state": "Off"})
        collector_bus.emit(EVENT, 1.0, "dut", {"event": "Go"})
        collector_bus.emit(TRANSITION, 1.0, "dut",
                           {"source": "Off", "target": "On", "event": "Go"})
        collector_bus.emit("state_exit", 1.0, "dut", {"state": "Off"})
        collector_bus.emit(STATE_ENTER, 1.0, "dut", {"state": "On"})

    def test_hits_and_uncovered_enumeration(self):
        model = CoverageModel(
            [CoverageModel.from_machine("dut", toggle_machine())])
        bus = TraceBus()
        collector = CoverageCollector(model, bus=bus)
        self.emit_toggle_run(bus)
        report = collector.report()
        summary = report.part_summary("dut")
        assert summary["state"]["covered"] == 2
        assert summary["event"]["covered"] == 1
        assert summary["transition"]["covered"] == 1
        holes = report.uncovered("dut")
        assert holes["event"] == ["Stop"]
        assert transition_key("On", "Stop", "Off") in holes["transition"]
        # the cross bin hit while Off was active
        assert report.parts["dut"]["bins"]["cross"][
            cross_key("Off", "Go")] == 1
        assert cross_key("On", "Stop") in holes["cross"]

    def test_unplanned_hits_counted_not_binned(self):
        model = CoverageModel(
            [CoverageModel.from_machine("dut", toggle_machine())])
        bus = TraceBus()
        collector = CoverageCollector(model, bus=bus)
        bus.emit(EVENT, 0.0, "dut", {"event": "NeverDeclared"})
        bus.emit(EVENT, 0.0, "ghost_part", {"event": "Go"})  # ignored
        assert collector.unplanned == 1
        assert "NeverDeclared" not in \
            collector.report().parts["dut"]["bins"]["event"]

    def test_token_events_hit_activity_state_bins(self):
        activity = Activity("Act")
        activity.add_action("work")
        model = CoverageModel(
            [CoverageModel.from_activity("dut", activity)])
        bus = TraceBus()
        collector = CoverageCollector(model, bus=bus)
        bus.emit(TOKEN, 0.0, "dut", {"node": "work", "variant": "fire"})
        report = collector.report()
        assert report.parts["dut"]["bins"]["state"]["work"] == 1


class TestCoverageReport:
    def make_report(self):
        model = CoverageModel(
            [CoverageModel.from_machine("dut", toggle_machine())])
        bus = TraceBus()
        collector = CoverageCollector(model, bus=bus)
        bus.emit(STATE_ENTER, 0.0, "dut", {"state": "Off"})
        return collector.report()

    def test_serialization_round_trip_and_determinism(self):
        report = self.make_report()
        text = report.to_json(indent=2)
        rebuilt = CoverageReport.from_json(text)
        assert rebuilt.to_json(indent=2) == text
        assert report.to_json() == self.make_report().to_json()
        payload = json.loads(text)
        assert payload["version"] == 1
        assert 0.0 <= payload["total_percent"] <= 100.0
        assert "uncovered" in payload["parts"]["dut"]

    def test_merge_sums_counts_and_unions_bins(self):
        first = self.make_report()
        second = self.make_report()
        merged = first.merge(second)
        assert merged.parts["dut"]["bins"]["state"]["Off"] == 2
        assert merged.total_percent() == first.total_percent()
        assert CoverageReport.merged([first, second]).to_json() \
            == merged.to_json()

    def test_merged_requires_at_least_one(self):
        with pytest.raises(ReproError):
            CoverageReport.merged([])

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ReproError):
            CoverageReport.from_json("{not json")
        with pytest.raises(ReproError):
            CoverageReport.from_dict({"no": "parts"})


class TestSimProfiler:
    def test_time_attribution_is_exact(self):
        bus = TraceBus()
        profiler = SimProfiler(bus=bus)
        bus.emit(STATE_ENTER, 0.0, "dut", {"state": "Off"})
        bus.emit(EVENT, 3.0, "dut", {"event": "Go"})
        bus.emit("state_exit", 3.0, "dut", {"state": "Off"})
        bus.emit(STATE_ENTER, 3.0, "dut", {"state": "On"})
        profiler.finalize(10.0)
        assert profiler.residence[("dut", "Off")] == pytest.approx(3.0)
        assert profiler.residence[("dut", "On")] == pytest.approx(7.0)
        lines = profiler.collapsed_time()
        assert "dut;Off 3000" in lines
        assert "dut;On 7000" in lines

    def test_step_counts_label_event_and_fire_frames(self):
        bus = TraceBus()
        profiler = SimProfiler(bus=bus)
        bus.emit(STATE_ENTER, 0.0, "dut", {"state": "Off"})
        bus.emit(EVENT, 1.0, "dut", {"event": "Go"})
        bus.emit(TRANSITION, 1.0, "dut",
                 {"source": "Off", "target": "On", "event": "Go"})
        steps = profiler.collapsed_steps()
        assert "dut;Off;event:Go 1" in steps
        assert "dut;Off;fire:Off->On@Go 1" in steps

    def test_report_rollups(self):
        bus = TraceBus()
        profiler = SimProfiler(bus=bus)
        bus.emit(STATE_ENTER, 0.0, "dut", {"state": "Off"})
        profiler.finalize(5.0)
        report = profiler.report()
        assert report["parts"]["dut"]["time"] == pytest.approx(5.0)
        assert report["finalized_at"] == 5.0
        assert report["top_frames"][0]["frame"] == "dut;Off"


class TestFlightRecorder:
    def test_ring_is_bounded_oldest_dropped(self):
        bus = TraceBus()
        recorder = FlightRecorder(capacity=3, bus=bus)
        for index in range(5):
            bus.emit(EVENT, float(index), "p", {"event": f"E{index}"})
        assert len(recorder.events) == 3
        assert [event.data["event"] for event in recorder.events] \
            == ["E2", "E3", "E4"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            FlightRecorder(capacity=0)

    def test_dump_has_header_then_events(self, tmp_path):
        bus = TraceBus()
        recorder = FlightRecorder(capacity=8, bus=bus)
        bus.emit(EVENT, 1.0, "p", {"event": "E"})
        path = tmp_path / "dump.jsonl"
        count = recorder.dump(str(path), reason="test", detail="unit")
        lines = path.read_text().strip().splitlines()
        assert count == len(lines) == 2
        header = json.loads(lines[0])
        assert header["kind"] == "postmortem"
        assert header["reason"] == "test"
        assert header["buffered"] == 1
        assert json.loads(lines[1])["kind"] == "event"

    def test_auto_dump_on_quarantine(self, tmp_path):
        top = mm.Component("T")
        bad = mm.Component("Bad")
        machine = StateMachine("BadSm")
        region = machine.region
        init = region.add_initial()
        state = region.add_state("S")
        region.add_transition(init, state)
        region.add_transition(state, state, trigger="Tick",
                              effect="x = 1 / 0;")
        bad.add_behavior(machine, as_classifier_behavior=True)
        top.add_part("bad", bad)
        dump = tmp_path / "post.jsonl"
        with SystemSimulation(top, on_part_error="quarantine",
                              flight_recorder=16,
                              flight_dump=str(dump)) as sim:
            sim.send("bad", "Tick", delay=1.0)
            sim.run(until=10.0)
        assert "bad" in sim.quarantined_parts
        assert dump.exists()
        header = json.loads(dump.read_text().splitlines()[0])
        assert header["reason"] == "part_quarantined"
        assert header["quarantined"] == ["bad"]
        assert "configurations" in header

    def test_auto_dump_on_simulation_error(self, tmp_path):
        top = mm.Component("T")
        bad = mm.Component("Bad")
        machine = StateMachine("BadSm")
        region = machine.region
        init = region.add_initial()
        state = region.add_state("S")
        region.add_transition(init, state)
        region.add_transition(state, state, trigger="Tick",
                              effect="x = 1 / 0;")
        bad.add_behavior(machine, as_classifier_behavior=True)
        top.add_part("bad", bad)
        dump = tmp_path / "post.jsonl"
        with pytest.raises(ReproError):
            with SystemSimulation(top, on_part_error="raise",
                                  flight_recorder=16,
                                  flight_dump=str(dump)) as sim:
                sim.send("bad", "Tick", delay=1.0)
                sim.run(until=10.0)
        assert dump.exists()
        header = json.loads(dump.read_text().splitlines()[0])
        assert header["reason"] == "simulation_error"
        assert "detail" in header

    def test_dump_records_injector_rng(self, tmp_path):
        campaign = FaultCampaign(
            [FaultSpec("drop", probability=0.5)], name="c", seed=9)
        with SystemSimulation(soc_top(), faults=campaign,
                              flight_recorder=32) as sim:
            sim.run(until=20.0)
            recorder = FlightRecorder(capacity=4)
            header = recorder.header(sim, reason="manual")
        assert header["injector_rng"] is not None
        json.dumps(header)  # must already be jsonable


class TestMetricsExport:
    def snapshot(self):
        registry = PerfRegistry()
        registry.incr("alpha.count", 3)
        registry.observe("beta.wall_s", 0.5)
        registry.observe("beta.wall_s", 1.5)
        registry.hist("gamma.hist", 0.002)
        registry.hist("gamma.hist", 0.004)
        return registry.snapshot()

    def test_prometheus_rendering(self):
        text = to_prometheus(self.snapshot())
        assert "# TYPE repro_alpha_count counter" in text
        assert "repro_alpha_count 3" in text
        assert "repro_beta_wall_s_sum 2" in text
        assert "repro_beta_wall_s_count 2" in text
        assert 'repro_gamma_hist_bucket{le="+Inf"} 2' in text
        assert "repro_gamma_hist_p50" in text
        assert text.endswith("\n")

    def test_prometheus_includes_coverage_gauges(self):
        model = CoverageModel(
            [CoverageModel.from_machine("dut", toggle_machine())])
        bus = TraceBus()
        collector = CoverageCollector(model, bus=bus)
        bus.emit(STATE_ENTER, 0.0, "dut", {"state": "Off"})
        text = to_prometheus(self.snapshot(), coverage=collector.report())
        assert 'repro_coverage_percent{part="dut",kind="state"} 50' in text
        assert "repro_coverage_total_percent" in text

    def test_json_rendering_sorted_and_embeds_coverage(self):
        snapshot = self.snapshot()
        text = to_json(snapshot, indent=None)
        payload = json.loads(text)
        assert payload["perf"]["counters"]["alpha.count"] == 3
        assert text == to_json(snapshot, indent=None)  # deterministic

    def test_equal_snapshots_export_identically(self):
        assert to_prometheus(self.snapshot()) \
            == to_prometheus(self.snapshot())


class TestPerfHistograms:
    def test_hist_counts_and_overflow(self):
        registry = PerfRegistry()
        registry.hist("h", 0.5, buckets=(1.0, 2.0))
        registry.hist("h", 1.5)
        registry.hist("h", 99.0)  # overflow slot
        stats = registry.hist_stats("h")
        assert stats["counts"] == [1, 1, 1]
        assert stats["count"] == 3
        assert stats["min"] == 0.5
        assert stats["max"] == 99.0

    def test_percentiles_deterministic_and_clamped(self):
        registry = PerfRegistry()
        for value in (0.5, 0.5, 1.5, 99.0):
            registry.hist("h", value, buckets=(1.0, 2.0))
        estimates = registry.percentiles("h")
        assert estimates["p50"] == 1.0  # bucket upper bound at rank
        assert estimates["p99"] == 99.0  # overflow answers with max
        assert registry.percentiles("h") == estimates
        assert registry.percentiles("unknown") is None

    def test_snapshot_key_sorted_and_carries_percentiles(self):
        registry = PerfRegistry()
        registry.incr("z.last")
        registry.incr("a.first")
        registry.hist("h", 0.1)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["counters", "histograms", "observations"]
        assert list(snapshot["counters"]) == ["a.first", "z.last"]
        assert {"p50", "p95", "p99"} <= set(snapshot["histograms"]["h"])

    def test_reset_clears_all_series(self):
        registry = PerfRegistry()
        registry.incr("c")
        registry.observe("o", 1.0)
        registry.hist("h", 1.0)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["observations"] == {}
        assert snapshot["histograms"] == {}

    def test_report_mentions_histograms(self):
        registry = PerfRegistry()
        registry.hist("h", 0.01)
        assert "histograms:" in registry.report()


class TestObservabilitySuite:
    def test_wires_all_consumers(self):
        with SystemSimulation(soc_top(), coverage=True, profile=True,
                              flight_recorder=32) as sim:
            sim.run(until=40.0)
            suite = sim.observability
            assert isinstance(suite, ObservabilitySuite)
            report = suite.coverage_report()
            assert report.total_percent() > 0
            assert suite.profile_lines("time")
            assert suite.profile_lines("steps")
            assert len(suite.recorder.events) == 32
            summary = suite.summary()
            assert summary["coverage_percent"] == report.total_percent()

    def test_disabled_by_default(self):
        with SystemSimulation(soc_top()) as sim:
            sim.run(until=5.0)
            assert sim.observability is None

    def test_requires_a_bus(self):
        with pytest.raises(SimulationError):
            SystemSimulation(soc_top(), bus=False, coverage=True)

    def test_unknown_profile_metric_rejected(self):
        with SystemSimulation(soc_top(), profile=True) as sim:
            sim.run(until=5.0)
            with pytest.raises(SimulationError):
                sim.observability.profile_lines("calories")

    def test_accessors_raise_when_not_enabled(self):
        with SystemSimulation(soc_top(), profile=True) as sim:
            with pytest.raises(SimulationError):
                sim.observability.coverage_report()


class TestIncidentHooks:
    def test_hook_errors_are_swallowed_and_counted(self):
        PERF.reset()
        top = mm.Component("T")
        bad = mm.Component("Bad")
        machine = StateMachine("BadSm")
        region = machine.region
        init = region.add_initial()
        state = region.add_state("S")
        region.add_transition(init, state)
        region.add_transition(state, state, trigger="Tick",
                              effect="x = 1 / 0;")
        bad.add_behavior(machine, as_classifier_behavior=True)
        top.add_part("bad", bad)
        fired = []

        def good_hook(reason, detail):
            fired.append((reason, detail))

        def bad_hook(reason, detail):
            raise RuntimeError("hook bug")

        with SystemSimulation(top, on_part_error="quarantine") as sim:
            sim.incident_hooks.append(bad_hook)
            sim.incident_hooks.append(good_hook)
            sim.send("bad", "Tick", delay=1.0)
            sim.run(until=10.0)
        assert fired and fired[0][0] == "part_quarantined"
        assert PERF.counter("cosim.incident_hook_errors") >= 1
        PERF.reset()
