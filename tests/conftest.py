"""Shared fixtures: deterministic ids per test, common model builders."""

import pytest

import repro
import repro.metamodel as mm
from repro.statemachines import StateMachine


@pytest.fixture(autouse=True)
def _deterministic_ids():
    """Every test starts from a fresh id counter (stable snapshots)."""
    repro.reset_ids()
    yield


@pytest.fixture
def simple_model():
    """A small but representative structural model."""
    model = mm.Model("demo")
    pkg = model.create_package("core")
    iface = pkg.add(mm.Interface("IBus"))
    read = iface.add_operation("read", mm.INTEGER)
    read.add_parameter("addr", mm.INTEGER)
    cpu = pkg.add(mm.Component("Cpu"))
    cpu.realize(iface)
    cpu.add_attribute("freq", mm.INTEGER, default=100)
    mem = pkg.add(mm.Component("Mem"))
    mem.add_attribute("size", mm.INTEGER, default=4096)
    return model


@pytest.fixture
def toggle_machine():
    """A two-state machine: Off <-power-> On."""
    machine = StateMachine("toggle")
    region = machine.region
    init = region.add_initial()
    off = region.add_state("Off")
    on = region.add_state("On")
    region.add_transition(init, off)
    region.add_transition(off, on, trigger="power")
    region.add_transition(on, off, trigger="power")
    return machine
