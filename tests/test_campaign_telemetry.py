"""Live campaign telemetry and the cross-seed observability report
(PR 9): the pipe beat protocol, parent-side aggregation, the guarantee
that telemetry never touches the trace bus (so enabling it cannot
change a report byte), obs-enabled journal rows, and the merged
:class:`ObservabilityReport` artifact.
"""

import io
import json
import os

import pytest

import repro.metamodel as mm
from repro import xmi
from repro.faults import CampaignSpec, FaultCampaign, FaultSpec, run_campaign
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.observability import (
    CampaignTelemetry,
    ObservabilityReport,
    WorkerHeartbeat,
    campaign_fingerprint,
    send_beat,
)
from repro.observability.report import (
    hot_edges,
    merge_edges,
    merge_frames,
    parse_collapsed,
)


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_telemetry(total=4, **kwargs):
    options = dict(stream=io.StringIO(), enabled=True, clock=FakeClock())
    options.update(kwargs)
    return CampaignTelemetry(total, name="demo", **options)


class TestBeatProtocol:
    def test_send_beat_without_fd_is_silent(self):
        assert send_beat(None, "start 1") is False

    def test_send_beat_to_closed_fd_is_silent(self):
        read_fd, write_fd = os.pipe()
        os.close(read_fd)
        os.close(write_fd)
        assert send_beat(write_fd, "start 1") is False

    def test_beats_flow_through_the_pipe(self):
        telemetry = make_telemetry(total=2)
        fd = telemetry.open_pipe()
        send_beat(fd, "start 1")
        send_beat(fd, "hb 1 500")
        telemetry.poll()
        assert telemetry.running == {1: 500}
        send_beat(fd, "done 1 1200")
        send_beat(fd, "start 2")
        telemetry.poll()
        assert telemetry.done == 1
        assert telemetry.events_done == 1200
        assert telemetry.running == {2: 0}
        telemetry.finish()

    def test_partial_lines_are_buffered(self):
        telemetry = make_telemetry()
        fd = telemetry.open_pipe()
        os.write(fd, b"start ")
        telemetry.poll()
        assert telemetry.running == {}
        os.write(fd, b"7\n")
        telemetry.poll()
        assert telemetry.running == {7: 0}
        telemetry.finish()

    def test_garbage_lines_are_ignored(self):
        telemetry = make_telemetry()
        for line in ("", "hb", "hb x 3", "hb 1 x", "unknown 1"):
            telemetry._apply(line)
        assert telemetry.running == {}
        assert telemetry.done == 0

    def test_fail_beat_is_not_terminal(self):
        # a failed attempt may be retried; only the runner's reap loop
        # (seed_failed) decides terminal failure
        telemetry = make_telemetry()
        telemetry._apply("start 3")
        telemetry._apply("fail 3")
        assert telemetry.done == 0
        assert telemetry.failed == 0
        telemetry._apply("start 3")
        telemetry._apply("done 3 10")
        assert telemetry.done == 1
        assert telemetry.failed == 0


class TestAggregation:
    def test_seed_done_is_idempotent(self):
        telemetry = make_telemetry()
        telemetry.seed_started(1)
        telemetry.seed_done(1, 100)
        telemetry.seed_done(1, 100)  # reap loop may echo the pipe beat
        assert telemetry.done == 1
        assert telemetry.events_done == 100

    def test_done_keeps_the_larger_event_count(self):
        telemetry = make_telemetry()
        telemetry.beat(5, 900)  # last heartbeat sample
        telemetry.seed_done(5, 0)  # reap loop knows no count
        assert telemetry.events_done == 900

    def test_seed_failed_counts_once(self):
        telemetry = make_telemetry()
        telemetry.seed_started(2)
        telemetry.seed_failed(2)
        telemetry.seed_done(2, 50)  # late beat after terminal failure
        assert telemetry.done == 1
        assert telemetry.failed == 1
        assert telemetry.events_done == 0

    def test_rates_and_eta(self):
        clock = FakeClock()
        telemetry = make_telemetry(total=4, clock=clock)
        clock.advance(2.0)
        telemetry.seed_done(1, 1000)
        telemetry.seed_done(2, 1000)
        telemetry.beat(3, 500)
        assert telemetry.events_total() == 2500
        assert telemetry.events_per_second() == pytest.approx(1250.0)
        # pace 1 s/seed, 2 remaining, one running seed counts half-done
        assert telemetry.eta() == pytest.approx(1.5)

    def test_eta_is_none_before_first_finish_and_after_last(self):
        telemetry = make_telemetry(total=1)
        assert telemetry.eta() is None
        telemetry.seed_done(1)
        assert telemetry.eta() is None


class TestRendering:
    def test_progress_line_shape(self):
        clock = FakeClock()
        telemetry = make_telemetry(total=20, clock=clock)
        clock.advance(1.0)
        telemetry.seed_done(1, 1000)
        telemetry.seed_failed(2)
        telemetry.seed_started(3)
        line = telemetry.progress_line()
        assert line.startswith("campaign demo: 2/20 done (1 failed)")
        assert "| 1 running" in line
        assert "ev/s" in line
        assert "ETA" in line

    def test_render_only_when_enabled(self):
        stream = io.StringIO()
        telemetry = make_telemetry(enabled=False, stream=stream)
        telemetry.seed_done(1)
        telemetry.render(force=True)
        assert stream.getvalue() == ""

    def test_finish_terminates_the_line(self):
        stream = io.StringIO()
        telemetry = make_telemetry(stream=stream)
        telemetry.seed_done(1)
        telemetry.finish()
        text = stream.getvalue()
        assert text.startswith("\r\x1b[2K")
        assert text.endswith("\n")

    def test_broken_stream_disables_rendering(self):
        class Broken:
            def write(self, _):
                raise OSError("gone")

            def flush(self):
                pass

        telemetry = make_telemetry(stream=Broken())
        telemetry.render(force=True)
        assert telemetry.enabled is False

    def test_snapshot_and_prometheus(self):
        clock = FakeClock()
        telemetry = make_telemetry(total=3, clock=clock)
        clock.advance(1.0)
        telemetry.seed_done(1, 300)
        snap = telemetry.snapshot()
        assert snap["done"] == 1
        assert snap["events"] == 300
        text = telemetry.prometheus()
        assert "# HELP repro_campaign_live_done" in text
        assert "# TYPE repro_campaign_live_done gauge" in text
        assert "repro_campaign_live_events 300" in text
        assert "repro_campaign_live_events_per_second 300" in text


class TestWorkerHeartbeat:
    def test_start_and_done_beats(self):
        read_fd, write_fd = os.pipe()
        try:
            heartbeat = WorkerHeartbeat(write_fd, 11, lambda: 42,
                                        interval=10.0)
            heartbeat.close(ok=True)
            os.close(write_fd)
            data = b""
            while True:
                chunk = os.read(read_fd, 4096)
                if not chunk:
                    break
                data += chunk
        finally:
            os.close(read_fd)
        lines = data.decode().splitlines()
        assert lines[0] == "start 11"
        assert lines[-1] == "done 11 42"

    def test_fail_close_sends_fail(self):
        read_fd, write_fd = os.pipe()
        try:
            heartbeat = WorkerHeartbeat(write_fd, 7, lambda: 5,
                                        interval=10.0)
            heartbeat.close(ok=False)
            os.close(write_fd)
            data = os.read(read_fd, 4096)
        finally:
            os.close(read_fd)
        assert data.decode().splitlines() == ["start 7", "fail 7"]

    def test_no_fd_means_no_thread(self):
        heartbeat = WorkerHeartbeat(None, 1, lambda: 0)
        assert heartbeat._thread is None
        heartbeat.close()  # must not raise


# ---------------------------------------------------------------------------
# the runner integration and the merged report
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def spec_files(tmp_path_factory):
    model = mm.Model("design")
    package = model.create_package("design")
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)],
             package=package)
    root = tmp_path_factory.mktemp("telemetry")
    model_path = root / "soc.xmi"
    xmi.write_file(str(model_path), model)
    campaign = FaultCampaign(
        [FaultSpec("drop", signal="Read", probability=0.3),
         FaultSpec("delay", delay=1.5, probability=0.4)],
        name="sweep", seed=0)
    campaign_path = root / "campaign.json"
    campaign_path.write_text(campaign.to_json())
    return str(model_path), str(campaign_path)


def make_spec(spec_files, seeds=(1, 2, 3), **kwargs):
    model_file, campaign_file = spec_files
    options = dict(model=model_file, top="design::Soc",
                   campaign=campaign_file, until=40.0, name="sweep")
    options.update(kwargs)
    return CampaignSpec(seeds=list(seeds), **options)


class TestRunnerIntegration:
    def test_obs_rows_carry_profile_and_causal_edges(self, spec_files):
        result = run_campaign(make_spec(spec_files, obs=True))
        for row in result.rows:
            assert row["profile"], "obs rows must carry hot paths"
            assert row["causal_edges"]["kinds"]
            assert "coverage" in row

    def test_obs_rows_identical_serial_vs_vectorized(self, spec_files):
        spec = make_spec(spec_files, obs=True)
        serial = run_campaign(spec)
        vectorized = run_campaign(spec, vectorize=True)
        key = lambda rows: sorted(rows, key=lambda r: r["seed"])
        assert key(serial.rows) == key(vectorized.rows)

    def test_telemetry_does_not_change_the_report(self, spec_files):
        spec = make_spec(spec_files)
        plain = run_campaign(spec)
        telemetry = CampaignTelemetry(len(spec.seeds), name=spec.name,
                                      stream=io.StringIO(), enabled=True)
        observed = run_campaign(spec, progress=telemetry)
        assert plain.to_json() == observed.to_json()
        assert telemetry.done == len(spec.seeds)

    def test_parallel_campaign_feeds_telemetry(self, spec_files):
        spec = make_spec(spec_files, seeds=(1, 2, 3, 4))
        telemetry = CampaignTelemetry(len(spec.seeds), name=spec.name,
                                      stream=io.StringIO(), enabled=False)
        result = run_campaign(spec, workers=2, progress=telemetry)
        assert len(result.rows) == 4
        assert telemetry.done == 4
        assert telemetry.failed == 0
        assert telemetry.running == {}


class TestMergeFunctions:
    def test_parse_collapsed(self):
        frames = parse_collapsed(["a;b 2.5", "a;b 1.5", "c 1", "", "bad"])
        assert frames == {"a;b": 4.0, "c": 1.0}

    def test_merge_frames_ranks_and_truncates(self):
        merged = merge_frames([["a 1", "b 5"], ["a 2"]], top=2)
        assert merged == [{"stack": "b", "value": 5.0},
                          {"stack": "a", "value": 3.0}]

    def test_merge_frames_ties_break_lexically(self):
        merged = merge_frames([["b 1", "a 1"]])
        assert [frame["stack"] for frame in merged] == ["a", "b"]

    def test_merge_edges_sums_and_sorts(self):
        merged = merge_edges([
            {"kinds": {"x->y": 2}, "parts": {"p->q": 1}},
            {"kinds": {"x->y": 1, "a->b": 4}, "parts": {}},
        ])
        assert merged["kinds"] == {"a->b": 4, "x->y": 3}
        assert list(merged["kinds"]) == ["a->b", "x->y"]
        assert merged["parts"] == {"p->q": 1}

    def test_hot_edges_rank(self):
        ranked = hot_edges({"a->b": 1, "c->d": 9}, top=1)
        assert ranked == [{"edge": "c->d", "count": 9}]


class TestObservabilityReport:
    @pytest.fixture(scope="class")
    def result(self, spec_files):
        return run_campaign(make_spec(spec_files, obs=True))

    def test_from_result_structure(self, result):
        report = ObservabilityReport.from_result(result)
        data = report.to_dict()
        assert data["campaign"] == "sweep"
        assert data["seeds"] == [1, 2, 3]
        assert data["coverage"]["percent"] > 0
        assert data["hot_frames"]
        assert data["causal_hot_edges"]["kinds"]
        assert data["messages"]["delivered"] > 0

    def test_report_is_deterministic(self, result):
        first = ObservabilityReport.from_result(result).to_json()
        second = ObservabilityReport.from_result(result).to_json()
        assert first == second
        payload = json.loads(first)
        assert list(payload) == sorted(payload)

    def test_rows_without_obs_data_degrade_gracefully(self, spec_files):
        result = run_campaign(make_spec(spec_files))  # obs=False
        report = ObservabilityReport.from_result(result)
        assert report.hot_frames == []
        assert report.causal_edges == {"kinds": {}, "parts": {}}
        assert report.to_dict()["coverage"] is None

    def test_html_rendering(self, result):
        html = ObservabilityReport.from_result(result).to_html()
        assert html.startswith("<!DOCTYPE html>")
        assert "Observability report" in html
        assert "Causal hot edges" in html
        assert "Hot paths" in html

    def test_fingerprint_stable_and_spec_sensitive(self, spec_files):
        spec = make_spec(spec_files, obs=True)
        same = make_spec(spec_files, obs=True)
        other = make_spec(spec_files, seeds=(1, 2), obs=True)
        assert campaign_fingerprint(spec) == campaign_fingerprint(same)
        assert campaign_fingerprint(spec) != campaign_fingerprint(other)
        assert len(campaign_fingerprint(spec)) == 32
