"""Durable service queue state (PR 10): journal replay idempotence,
torn-tail tolerance, checksummed snapshots, compaction, the atomic
result-file protocol, and content-addressed job fingerprints."""

import json
import os

import pytest

from repro.perf import PERF
from repro.service import Job, JobStore, job_fingerprint
from repro.service.jobstore import canonical_json


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "state")


def submit(store, job_id, spec=None, budget=3):
    spec = spec or {"name": job_id, "seeds": [1]}
    fingerprint = job_fingerprint(spec)
    store.append({"kind": "submit", "job_id": job_id,
                  "fingerprint": fingerprint, "spec": spec,
                  "budget": budget})
    return fingerprint


class TestFingerprint:
    def test_name_is_presentation_not_work(self):
        spec = {"name": "a", "seeds": [1, 2], "until": 10.0}
        assert job_fingerprint(spec) \
            == job_fingerprint(dict(spec, name="b"))

    def test_work_fields_matter(self):
        spec = {"name": "a", "seeds": [1, 2], "until": 10.0}
        assert job_fingerprint(spec) \
            != job_fingerprint(dict(spec, seeds=[1, 3]))
        assert job_fingerprint(spec) \
            != job_fingerprint(dict(spec, until=20.0))

    def test_model_path_hashed_by_content(self, tmp_path):
        first = tmp_path / "a.xmi"
        second = tmp_path / "renamed.xmi"
        first.write_text("<model A/>")
        second.write_text("<model A/>")
        spec = {"seeds": [1], "model": str(first), "top": "T"}
        renamed = dict(spec, model=str(second))
        # same bytes under a different path: same work
        assert job_fingerprint(spec) == job_fingerprint(renamed)
        second.write_text("<model B/>")
        assert job_fingerprint(spec) != job_fingerprint(renamed)

    def test_missing_file_falls_back_to_the_path(self, tmp_path):
        spec = {"seeds": [1], "model": str(tmp_path / "gone.xmi"),
                "top": "T"}
        assert job_fingerprint(spec) == job_fingerprint(dict(spec))


class TestJournalReplay:
    def test_empty_state_dir(self, store):
        assert store.replay() == {}

    def test_submit_then_events(self, store):
        fingerprint = submit(store, "job-1")
        store.append({"kind": "event", "job_id": "job-1",
                      "event": "lease"})
        store.append({"kind": "event", "job_id": "job-1",
                      "event": "start"})
        jobs = JobStore(store.root).replay()
        job = jobs["job-1"]
        assert job.state == "running"
        assert job.attempts == 1
        assert job.fingerprint == fingerprint

    def test_replay_is_idempotent(self, store):
        submit(store, "job-1")
        for event in ("lease", "start", "complete", "publish"):
            store.append({"kind": "event", "job_id": "job-1",
                          "event": event})
        once = JobStore(store.root).replay()
        twice = JobStore(store.root).replay()
        assert once["job-1"].to_snapshot() == twice["job-1"].to_snapshot()

    def test_duplicate_submit_is_a_noop(self, store):
        submit(store, "job-1")
        store.append({"kind": "event", "job_id": "job-1",
                      "event": "lease"})
        submit(store, "job-1")  # replayed later, must not reset state
        jobs = JobStore(store.root).replay()
        assert jobs["job-1"].state == "leased"

    def test_orphan_events_are_counted_not_fatal(self, store):
        orphans = PERF.counter("service.replay_orphans")
        store.append({"kind": "event", "job_id": "ghost",
                      "event": "lease"})
        jobs = JobStore(store.root).replay()
        assert jobs == {}
        assert PERF.counter("service.replay_orphans") == orphans + 1

    def test_stale_events_are_skipped(self, store):
        skipped = PERF.counter("service.replay_skipped")
        submit(store, "job-1")
        store.append({"kind": "event", "job_id": "job-1",
                      "event": "publish"})  # illegal from queued
        jobs = JobStore(store.root).replay()
        assert jobs["job-1"].state == "queued"
        assert PERF.counter("service.replay_skipped") == skipped + 1

    def test_failed_job_keeps_its_error(self, store):
        submit(store, "job-1")
        store.append({"kind": "event", "job_id": "job-1",
                      "event": "lease"})
        store.append({"kind": "event", "job_id": "job-1",
                      "event": "fail", "error": "bad model"})
        jobs = JobStore(store.root).replay()
        assert jobs["job-1"].state == "failed"
        assert jobs["job-1"].error == "bad model"

    def test_seq_resumes_past_everything_seen(self, store):
        submit(store, "job-1")
        store.append({"kind": "event", "job_id": "job-1",
                      "event": "lease"})
        reopened = JobStore(store.root)
        reopened.replay()
        assert reopened.append({"kind": "event", "job_id": "job-1",
                                "event": "start"}) == 3


class TestTornTail:
    def test_half_written_last_line_is_dropped(self, store):
        torn = PERF.counter("journal.torn_records")
        submit(store, "job-1")
        store.append({"kind": "event", "job_id": "job-1",
                      "event": "lease"})
        store.close()
        with open(store.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "kind": "event", "job_')
        jobs = JobStore(store.root).replay()
        assert jobs["job-1"].state == "leased"
        assert PERF.counter("journal.torn_records") == torn + 1

    def test_blank_lines_are_not_torn(self, store):
        torn = PERF.counter("journal.torn_records")
        submit(store, "job-1")
        store.close()
        with open(store.journal_path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        jobs = JobStore(store.root).replay()
        assert jobs["job-1"].state == "queued"
        assert PERF.counter("journal.torn_records") == torn


class TestSnapshots:
    def test_round_trip(self, store):
        submit(store, "job-1")
        store.append({"kind": "event", "job_id": "job-1",
                      "event": "lease"})
        jobs = JobStore(store.root).replay()
        store.snapshot(jobs)
        restored = JobStore(store.root).replay()
        assert restored["job-1"].to_snapshot() \
            == jobs["job-1"].to_snapshot()

    def test_journal_suffix_applies_on_top(self, store):
        submit(store, "job-1")
        jobs = JobStore(store.root).replay()
        store._seq = 1  # snapshot covers only the submit
        store.snapshot(jobs)
        store._seq = 1
        store.append({"kind": "event", "job_id": "job-1",
                      "event": "lease"})  # seq 2 > snapshot seq 1
        restored = JobStore(store.root).replay()
        assert restored["job-1"].state == "leased"

    def test_corrupt_snapshot_falls_back_to_journal(self, store):
        rejected = PERF.counter("service.snapshot_rejected")
        submit(store, "job-1")
        jobs = JobStore(store.root).replay()
        store.snapshot(jobs)
        payload = json.loads(store.snapshot_path.read_text())
        payload["jobs"] = []  # tamper without fixing the checksum
        store.snapshot_path.write_text(canonical_json(payload))
        restored = JobStore(store.root).replay()
        assert "job-1" in restored  # journal replay covered for it
        assert PERF.counter("service.snapshot_rejected") == rejected + 1

    def test_compact_truncates_covered_journal(self, store):
        submit(store, "job-1")
        store.append({"kind": "event", "job_id": "job-1",
                      "event": "lease"})
        jobs = JobStore(store.root).replay()
        store.compact(jobs)
        assert os.path.getsize(store.journal_path) == 0
        restored = JobStore(store.root).replay()
        assert restored["job-1"].state == "leased"
        assert restored["job-1"].attempts == 1


class TestResultFiles:
    def test_write_is_canonical_and_atomic(self, store):
        payload = {"b": 2, "a": [1, {"z": True}]}
        path = store.write_result("job-1", payload)
        text = path.read_text()
        assert text == canonical_json(payload) + "\n"
        assert store.read_result("job-1") == payload

    def test_rewrite_same_payload_is_byte_identical(self, store):
        payload = {"ok": True, "result": {"seeds": [3, 1, 2]}}
        first = store.write_result("job-1", payload).read_bytes()
        second = store.write_result("job-1", payload).read_bytes()
        assert first == second

    def test_missing_or_torn_result_reads_none(self, store):
        assert store.read_result("nope") is None
        store.result_path("torn").write_text('{"ok": tru')
        assert store.read_result("torn") is None

    def test_scratch_paths_are_per_attempt(self, store):
        first = store.result_scratch("job-1", 1)
        second = store.result_scratch("job-1", 2)
        assert first != second
        assert first.parent == second.parent
        assert first.parent.name == "tmp"


class TestJobRow:
    def test_status_row_shape(self):
        job = Job("job-1", "fp", {"name": "sweep", "seeds": [1, 2]}, 1)
        row = job.status()
        assert row == {"job_id": "job-1", "fingerprint": "fp",
                       "state": "queued", "attempts": 0, "budget": 3,
                       "cached": False, "error": "", "name": "sweep",
                       "seeds": 2}

    def test_snapshot_round_trip(self):
        job = Job("job-1", "fp", {"name": "sweep", "seeds": [1]}, 7,
                  budget=2)
        job.lifecycle.signal("lease")
        job.attempts = 1
        restored = Job.from_snapshot(job.to_snapshot())
        assert restored.to_snapshot() == job.to_snapshot()
        assert restored.state == "leased"
        assert restored.seq == 7
