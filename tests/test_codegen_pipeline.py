"""Parallel codegen: byte-identical to sequential, deterministic order."""

import pytest

import repro.metamodel as mm
from repro.codegen import (
    BACKENDS,
    choose_executor,
    generate_all,
    generate_all_parallel,
)
from repro.codegen.pipeline import PROCESS_POOL_THRESHOLD
from repro.errors import CodegenError
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.metamodel import Model


def soc_model():
    model = Model("pipeline_test")
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x400)
    ram = make_memory("Ram", size_bytes=0x400)
    make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x400)],
             package=model)
    return model


class TestDeterminism:
    @pytest.mark.parametrize("executor",
                             ("thread", "process", "sequential", "auto"))
    def test_byte_identical_to_sequential(self, executor):
        model = soc_model()
        sequential = generate_all(model)
        parallel = generate_all_parallel(model, executor=executor)
        assert parallel == sequential
        assert list(parallel) == list(BACKENDS)

    def test_repeated_runs_identical(self):
        model = soc_model()
        first = generate_all_parallel(model, executor="thread")
        second = generate_all_parallel(model, executor="thread")
        assert first == second

    def test_backend_subset_keeps_canonical_order(self):
        model = soc_model()
        result = generate_all_parallel(
            model, backends=("python", "vhdl"), executor="thread")
        assert list(result) == ["vhdl", "python"]


class TestHeuristic:
    def test_small_model_uses_threads(self):
        assert choose_executor(soc_model()) == "thread"

    def test_large_model_uses_processes(self):
        assert choose_executor(soc_model(), size_threshold=1) == "process"

    def test_unpicklable_scope_falls_back_to_threads(self):
        model = soc_model()
        cls = model.add(mm.UmlClass("Hook"))
        cls.hook = lambda: None  # lambdas cannot pickle
        assert choose_executor(model, size_threshold=1) == "thread"


class TestErrors:
    def test_unknown_backend_rejected(self):
        with pytest.raises(CodegenError):
            generate_all_parallel(soc_model(), backends=("fortran",))

    def test_unknown_executor_rejected(self):
        with pytest.raises(CodegenError):
            generate_all_parallel(soc_model(), executor="fibers")


class TestPerfCounters:
    def test_per_backend_wall_time_recorded(self):
        from repro.perf import PERF

        PERF.reset()
        generate_all_parallel(soc_model(), executor="thread")
        for backend in BACKENDS:
            stats = PERF.stats(f"codegen.{backend}.wall_s")
            assert stats is not None and stats["count"] == 1
        assert PERF.counter("codegen.runs.thread") == 1
