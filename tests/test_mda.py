"""Tests for the MDA engine and the built-in mappings."""

import pytest

import repro.metamodel as mm
from repro.errors import TransformError
from repro.mda import (
    HARDWARE_PLATFORM,
    ModelRule,
    Platform,
    PlatformKind,
    SOFTWARE_PLATFORM,
    Transformation,
    TransformationRule,
    clone_model,
    hardware_transformation,
    software_transformation,
)
from repro.profiles import (
    create_soc_profile,
    has_stereotype,
    tagged_value,
)


@pytest.fixture
def pim():
    model = mm.Model("counter_soc")
    pkg = model.create_package("design")
    counter = pkg.add(mm.Component("Counter"))
    counter.add_attribute("count", mm.INTEGER, default=0)
    counter.add_attribute("limit", mm.INTEGER, default=255)
    increment = counter.add_operation("increment", mm.INTEGER)
    increment.set_body("count = count + 1; return count;")
    counter.add_port("bus", direction=mm.PortDirection.INOUT)
    uart = pkg.add(mm.Component("Uart"))
    uart.add_attribute("baud", mm.INTEGER, default=115200)
    uart.add_port("tx", direction=mm.PortDirection.OUT)
    return model


class TestEngine:
    def test_clone_preserves_structure_and_ids(self, pim):
        clone = clone_model(pim)
        assert clone is not pim
        assert clone.summary() == pim.summary()
        assert {e.xmi_id for e in clone.all_owned()} == \
            {e.xmi_id for e in pim.all_owned()}

    def test_pim_never_mutated(self, pim):
        before = pim.summary()
        software_transformation().transform(pim)
        assert pim.summary() == before

    def test_rules_sorted_by_priority(self):
        transformation = Transformation("t", SOFTWARE_PLATFORM)
        low = TransformationRule("low", lambda e: False,
                                 lambda e, c: None, priority=200)
        high = TransformationRule("high", lambda e: False,
                                  lambda e, c: None, priority=1)
        transformation.add_rule(low)
        transformation.add_rule(high)
        assert [r.name for r in transformation.rules] == ["high", "low"]

    def test_duplicate_rule_name_rejected(self):
        transformation = Transformation("t", SOFTWARE_PLATFORM)
        rule = TransformationRule("r", lambda e: False, lambda e, c: None)
        transformation.add_rule(rule)
        with pytest.raises(TransformError):
            transformation.add_rule(
                TransformationRule("r", lambda e: False,
                                   lambda e, c: None))

    def test_custom_rule_and_trace(self, pim):
        def tag_components(element, context):
            element.add_comment("touched")
            context.record("tagger", context.source_of(element), element)

        transformation = Transformation("t", SOFTWARE_PLATFORM)
        transformation.add_rule(TransformationRule(
            "tagger", lambda e: isinstance(e, mm.Component),
            tag_components))
        result = transformation.transform(pim)
        assert result.applications["tagger"] == 2
        counter = result.psm.resolve("design::Counter", mm.Component)
        assert counter.comments[0].body == "touched"
        assert len(result.trace) == 2

    def test_model_rule_runs_once(self, pim):
        calls = []
        transformation = Transformation("t", SOFTWARE_PLATFORM)
        transformation.add_rule(ModelRule(
            "once", lambda model, ctx: calls.append(model)))
        transformation.transform(pim)
        assert len(calls) == 1


class TestSoftwareMapping:
    def test_tasks_synthesized(self, pim):
        result = software_transformation().transform(pim)
        counter = result.psm.resolve("design::Counter", mm.Component)
        assert counter.find_member("mailbox") is not None
        run = counter.find_operation("run")
        assert run is not None and "mailbox" in run.body

    def test_ports_become_queues(self, pim):
        result = software_transformation().transform(pim)
        counter = result.psm.resolve("design::Counter", mm.Component)
        assert counter.find_member("bus_queue") is not None

    def test_runtime_package_synthesized(self, pim):
        result = software_transformation().transform(pim)
        runtime = result.psm.member("runtime", mm.Package)
        scheduler = runtime.member("Scheduler", mm.UmlClass)
        assert scheduler.is_active
        queue_cls = runtime.member("MessageQueue", mm.UmlClass)
        assert queue_cls.find_operation("push").body

    def test_psm_named_after_platform(self, pim):
        result = software_transformation().transform(pim)
        assert result.psm.name == "counter_soc_sw-runtime"
        assert result.platform is SOFTWARE_PLATFORM

    def test_completeness_100_percent(self, pim):
        result = software_transformation().transform(pim)
        assert result.completeness() == 1.0

    def test_idempotent_on_retransform(self, pim):
        first = software_transformation().transform(pim)
        again = software_transformation().transform(first.psm)
        counter = again.psm.resolve("design::Counter", mm.Component)
        mailboxes = [m for m in counter.members if m.name == "mailbox"]
        assert len(mailboxes) == 1


class TestHardwareMapping:
    def test_clock_and_reset_added(self, pim):
        prof = create_soc_profile()
        result = hardware_transformation().transform(pim, profiles=[prof])
        counter = result.psm.resolve("design::Counter", mm.Component)
        port_names = {p.name for p in counter.ports}
        assert {"clk", "rst_n"} <= port_names
        clk = counter.port("clk")
        assert has_stereotype(clk, "ClockInput")

    def test_hw_module_stereotype_applied(self, pim):
        prof = create_soc_profile()
        result = hardware_transformation().transform(pim, profiles=[prof])
        counter = result.psm.resolve("design::Counter", mm.Component)
        assert has_stereotype(counter, "HwModule")

    def test_registers_allocated_aligned(self, pim):
        prof = create_soc_profile()
        result = hardware_transformation().transform(pim, profiles=[prof])
        counter = result.psm.resolve("design::Counter", mm.Component)
        assert tagged_value(counter.member("count"), "Register",
                            "address") == 0
        assert tagged_value(counter.member("limit"), "Register",
                            "address") == 4
        assert tagged_value(counter.member("count"), "Register",
                            "reset_value") == 0

    def test_types_narrowed_to_word(self, pim):
        prof = create_soc_profile()
        result = hardware_transformation().transform(pim, profiles=[prof])
        counter = result.psm.resolve("design::Counter", mm.Component)
        assert counter.member("count").type_name == "Word"

    def test_base_addresses_allocated(self, pim):
        prof = create_soc_profile()
        result = hardware_transformation().transform(pim, profiles=[prof])
        counter = result.psm.resolve("design::Counter", mm.Component)
        uart = result.psm.resolve("design::Uart", mm.Component)
        bases = [c.body for comp in (counter, uart)
                 for c in comp.comments if "base_address" in c.body]
        assert len(bases) == 2
        assert len(set(bases)) == 2  # distinct addresses

    def test_deployment_synthesized(self, pim):
        prof = create_soc_profile()
        result = hardware_transformation().transform(pim, profiles=[prof])
        deployment = result.psm.member("deployment", mm.Package)
        die = deployment.member("die0", mm.Device)
        assert len(die.deployed_artifacts) == 2
        artifact = deployment.member("Counter_bit", mm.Artifact)
        manifested = artifact.manifestations[0].utilized
        assert manifested.name == "Counter"

    def test_completeness_and_validation(self, pim):
        from repro.validation import validate_model

        prof = create_soc_profile()
        result = hardware_transformation().transform(pim, profiles=[prof])
        assert result.completeness() == 1.0
        report = validate_model(result.psm)
        assert report.ok, [str(f) for f in report.errors]

    def test_without_profile_still_structural(self, pim):
        result = hardware_transformation().transform(pim)
        counter = result.psm.resolve("design::Counter", mm.Component)
        assert {"clk", "rst_n"} <= {p.name for p in counter.ports}
        assert not has_stereotype(counter, "HwModule")


class TestPlatforms:
    def test_platform_properties(self):
        assert SOFTWARE_PLATFORM.kind is PlatformKind.SOFTWARE
        assert HARDWARE_PLATFORM.property("register_width") == 32
        assert HARDWARE_PLATFORM.property("missing", "dflt") == "dflt"

    def test_custom_platform(self):
        platform = Platform("fpga", PlatformKind.HARDWARE,
                            properties={"luts": 10000})
        assert platform.property("luts") == 10000
        assert "fpga" in str(platform)
