"""Unit tests for associations and the associate() factory."""

import pytest

import repro.metamodel as mm
from repro.errors import ModelError


class TestAssociate:
    def test_binary_defaults(self):
        cpu, mem = mm.UmlClass("Cpu"), mm.UmlClass("Mem")
        assoc = mm.associate(cpu, mem)
        assert assoc.is_binary
        assert assoc.end_types == (mem, cpu)

    def test_navigable_end_is_attribute_of_source(self):
        cpu, mem = mm.UmlClass("Cpu"), mm.UmlClass("Mem")
        mm.associate(cpu, mem, target_end="memory")
        prop = cpu.member("memory", mm.Property)
        assert prop.type is mem
        assert prop.is_navigable

    def test_non_navigable_end_owned_by_association(self):
        cpu, mem = mm.UmlClass("Cpu"), mm.UmlClass("Mem")
        assoc = mm.associate(cpu, mem)
        owned = assoc.owned_ends
        assert len(owned) == 1
        assert owned[0].type is cpu
        assert not owned[0].is_navigable

    def test_navigable_both(self):
        a, b = mm.UmlClass("A"), mm.UmlClass("B")
        assoc = mm.associate(a, b, navigable_both=True)
        assert assoc.owned_ends == ()
        assert b.find_member("a") is not None
        assert a.find_member("b") is not None

    def test_opposite(self):
        a, b = mm.UmlClass("A"), mm.UmlClass("B")
        assoc = mm.associate(a, b)
        end_b, end_a = assoc.member_ends
        assert end_b.opposite is end_a
        assert end_a.opposite is end_b

    def test_default_end_names_decapitalized(self):
        cpu, mem = mm.UmlClass("Cpu"), mm.UmlClass("MemBank")
        assoc = mm.associate(cpu, mem)
        assert assoc.member_ends[0].name == "memBank"

    def test_multiplicities_applied(self):
        a, b = mm.UmlClass("A"), mm.UmlClass("B")
        assoc = mm.associate(a, b, target_multiplicity=mm.MANY,
                             source_multiplicity=mm.ONE)
        assert assoc.member_ends[0].multiplicity == mm.MANY
        assert assoc.member_ends[1].multiplicity == mm.ONE

    def test_composite_aggregation(self):
        whole, part = mm.UmlClass("Whole"), mm.UmlClass("Part")
        assoc = mm.associate(whole, part,
                             aggregation=mm.AggregationKind.COMPOSITE)
        assert assoc.member_ends[0].is_composite


class TestAssociationInvariants:
    def test_end_needs_classifier_type(self):
        assoc = mm.Association("a")
        untyped = mm.Property("x")
        with pytest.raises(ModelError):
            assoc.add_end(untyped)

    def test_end_joins_one_association_only(self):
        a, b = mm.UmlClass("A"), mm.UmlClass("B")
        assoc = mm.associate(a, b)
        end = assoc.member_ends[0]
        other = mm.Association("other")
        with pytest.raises(ModelError):
            other.add_end(end, owned_here=False)

    def test_arity_validation(self):
        assoc = mm.Association("a")
        with pytest.raises(ModelError):
            assoc.validate_arity()

    def test_nary_association(self):
        a, b, c = (mm.UmlClass(n) for n in "ABC")
        assoc = mm.Association("tri")
        for classifier in (a, b, c):
            assoc.add_end(mm.Property(classifier.name.lower(), classifier))
        assoc.validate_arity()
        assert not assoc.is_binary
        assert len(assoc.member_ends) == 3
