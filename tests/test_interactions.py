"""Tests for sequence diagram structure and trace semantics."""

import pytest

from repro.errors import InteractionError
from repro.interactions import (
    CombinedFragment,
    Interaction,
    InteractionOperator,
    Message,
    MessageSort,
    conforms,
    interleaving_count,
    trace_count,
    traces,
)


@pytest.fixture
def bus_read():
    """req; alt(cached: hit | else: fetch,data,resp)."""
    interaction = Interaction("bus_read")
    cpu = interaction.add_lifeline("cpu")
    bus = interaction.add_lifeline("bus")
    mem = interaction.add_lifeline("mem")
    interaction.message("req", cpu, bus)
    alt = interaction.alt()
    hit = alt.add_operand("cached")
    hit.add(Message("hit", bus, cpu))
    miss = alt.add_operand("else")
    miss.add(Message("fetch", bus, mem))
    miss.add(Message("data", mem, bus))
    miss.add(Message("resp", bus, cpu))
    return interaction


class TestStructure:
    def test_lifeline_uniqueness(self):
        interaction = Interaction("i")
        interaction.add_lifeline("a")
        with pytest.raises(InteractionError):
            interaction.add_lifeline("a")

    def test_lifeline_lookup(self):
        interaction = Interaction("i")
        a = interaction.add_lifeline("a")
        assert interaction.lifeline("a") is a
        with pytest.raises(InteractionError):
            interaction.lifeline("ghost")

    def test_message_by_lifeline_names(self):
        interaction = Interaction("i")
        interaction.add_lifeline("a")
        interaction.add_lifeline("b")
        message = interaction.message("ping", "a", "b")
        assert message.label == "a->b:ping"

    def test_self_message(self):
        interaction = Interaction("i")
        a = interaction.add_lifeline("a")
        message = interaction.message("tick", a, a)
        assert message.is_self_message

    def test_single_operand_fragments(self):
        interaction = Interaction("i")
        opt = interaction.opt()
        opt.add_operand()
        with pytest.raises(InteractionError):
            opt.add_operand()

    def test_loop_bounds_validated(self):
        interaction = Interaction("i")
        with pytest.raises(InteractionError):
            interaction.loop(3, 1)

    def test_validate_rejects_foreign_lifeline(self):
        first = Interaction("a")
        second = Interaction("b")
        mine = first.add_lifeline("x")
        theirs = second.add_lifeline("y")
        message = Message("m", mine, theirs)
        first._own(message)
        with pytest.raises(InteractionError):
            first.validate()

    def test_empty_fragment_rejected(self):
        interaction = Interaction("i")
        interaction.alt()  # no operands
        with pytest.raises(InteractionError):
            interaction.validate()


class TestTraces:
    def test_alt_union(self, bus_read):
        trace_set = traces(bus_read)
        assert len(trace_set) == 2
        assert ("cpu->bus:req", "bus->cpu:hit") in trace_set

    def test_guard_narrowing_with_env(self, bus_read):
        hit_traces = traces(bus_read, env={"cached": True})
        assert hit_traces == [("cpu->bus:req", "bus->cpu:hit")]
        miss_traces = traces(bus_read, env={"cached": False})
        assert len(miss_traces) == 1
        assert miss_traces[0][-1] == "bus->cpu:resp"

    def test_opt_adds_empty_trace(self):
        interaction = Interaction("i")
        a = interaction.add_lifeline("a")
        b = interaction.add_lifeline("b")
        opt = interaction.opt()
        body = opt.add_operand()
        body.add(Message("maybe", a, b))
        assert set(traces(interaction)) == {(), ("a->b:maybe",)}

    def test_loop_repetition(self):
        interaction = Interaction("i")
        a = interaction.add_lifeline("a")
        b = interaction.add_lifeline("b")
        loop = interaction.loop(1, 3)
        body = loop.add_operand()
        body.add(Message("beat", a, b))
        lengths = sorted(len(t) for t in traces(interaction))
        assert lengths == [1, 2, 3]

    def test_par_interleavings(self):
        interaction = Interaction("i")
        a = interaction.add_lifeline("a")
        b = interaction.add_lifeline("b")
        par = interaction.par()
        one = par.add_operand()
        one.add(Message("x1", a, b))
        one.add(Message("x2", a, b))
        two = par.add_operand()
        two.add(Message("y1", b, a))
        trace_set = traces(interaction)
        assert len(trace_set) == 3  # C(3,1) positions for y1
        for trace in trace_set:
            assert trace.index("a->b:x1") < trace.index("a->b:x2")

    def test_strict_concatenates(self):
        interaction = Interaction("i")
        a = interaction.add_lifeline("a")
        b = interaction.add_lifeline("b")
        strict = interaction.strict()
        for name in ("first", "second"):
            operand = strict.add_operand()
            operand.add(Message(name, a, b))
        assert traces(interaction) == [("a->b:first", "a->b:second")]

    def test_nested_fragments(self):
        interaction = Interaction("i")
        a = interaction.add_lifeline("a")
        b = interaction.add_lifeline("b")
        outer = interaction.alt()
        branch = outer.add_operand()
        inner = CombinedFragment(InteractionOperator.OPT)
        branch.add(inner)
        inner_body = inner.add_operand()
        inner_body.add(Message("deep", a, b))
        other = outer.add_operand()
        other.add(Message("flat", a, b))
        assert set(traces(interaction)) == {(), ("a->b:deep",),
                                            ("a->b:flat",)}

    def test_enumeration_limit(self):
        interaction = Interaction("i")
        a = interaction.add_lifeline("a")
        b = interaction.add_lifeline("b")
        par = interaction.par()
        for operand_index in range(3):
            operand = par.add_operand()
            for message_index in range(4):
                operand.add(Message(f"m{operand_index}_{message_index}",
                                    a, b))
        with pytest.raises(InteractionError):
            traces(interaction, limit=100)


class TestCounting:
    def test_closed_form_matches_enumeration(self, bus_read):
        assert trace_count(bus_read) == len(traces(bus_read))

    def test_par_multinomial(self):
        interaction = Interaction("i")
        a = interaction.add_lifeline("a")
        b = interaction.add_lifeline("b")
        par = interaction.par()
        for operand_index in range(2):
            operand = par.add_operand()
            for message_index in range(3):
                operand.add(Message(f"m{operand_index}_{message_index}",
                                    a, b))
        assert trace_count(interaction) == interleaving_count([3, 3]) == 20
        assert len(traces(interaction)) == 20

    def test_interleaving_count(self):
        assert interleaving_count([2, 2]) == 6
        assert interleaving_count([1, 1, 1]) == 6
        assert interleaving_count([0, 5]) == 1

    def test_loop_count(self):
        interaction = Interaction("i")
        a = interaction.add_lifeline("a")
        b = interaction.add_lifeline("b")
        loop = interaction.loop(0, 4)
        body = loop.add_operand()
        body.add(Message("beat", a, b))
        assert trace_count(interaction) == 5


class TestConformance:
    def test_positive_and_negative(self, bus_read):
        assert conforms(bus_read, ("cpu->bus:req", "bus->cpu:hit"))
        assert conforms(bus_read, ("cpu->bus:req", "bus->mem:fetch",
                                   "mem->bus:data", "bus->cpu:resp"))
        assert not conforms(bus_read, ("cpu->bus:req",))
        assert not conforms(bus_read, ("bus->cpu:hit", "cpu->bus:req"))

    def test_par_conformance_without_enumeration_order(self):
        interaction = Interaction("i")
        a = interaction.add_lifeline("a")
        b = interaction.add_lifeline("b")
        par = interaction.par()
        one = par.add_operand()
        one.add(Message("x1", a, b))
        one.add(Message("x2", a, b))
        two = par.add_operand()
        two.add(Message("y1", b, a))
        two.add(Message("y2", b, a))
        assert conforms(interaction,
                        ("a->b:x1", "b->a:y1", "b->a:y2", "a->b:x2"))
        assert not conforms(interaction,
                            ("a->b:x2", "a->b:x1", "b->a:y1", "b->a:y2"))

    def test_loop_conformance(self):
        interaction = Interaction("i")
        a = interaction.add_lifeline("a")
        b = interaction.add_lifeline("b")
        loop = interaction.loop(1, 3)
        body = loop.add_operand()
        body.add(Message("beat", a, b))
        assert conforms(interaction, ("a->b:beat",) * 2)
        assert not conforms(interaction, ())
        assert not conforms(interaction, ("a->b:beat",) * 4)

    def test_every_enumerated_trace_conforms(self, bus_read):
        for trace in traces(bus_read):
            assert conforms(bus_read, trace)

    def test_guarded_conformance(self, bus_read):
        hit = ("cpu->bus:req", "bus->cpu:hit")
        assert conforms(bus_read, hit, env={"cached": True})
        assert not conforms(bus_read, hit, env={"cached": False})
