"""Checkpoint/restore round-trips *with observability attached* (PR 5
satellite): rolling a simulation back must also rewind functional
coverage, profiler attribution, the flight-recorder ring and the trace
ordinal, so a replayed segment is byte-identical to the first pass —
subscribers included."""

import repro.metamodel as mm
from repro.engine import TraceBus, TraceRecorder
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.observability import CoverageCollector, CoverageModel, SimProfiler
from repro.simulation import SystemSimulation


def soc_top():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    return make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)])


def observed_simulation():
    bus = TraceBus()
    recorder = TraceRecorder(bus)
    sim = SystemSimulation(soc_top(), bus=bus, coverage=True,
                           profile=True, flight_recorder=64)
    return sim, recorder


class TestObservedRoundTrip:
    def test_replayed_segment_is_byte_identical(self):
        sim, recorder = observed_simulation()
        with sim:
            sim.run(until=30.0)
            snap = sim.checkpoint()
            cut = len(recorder.events)
            sim.run(until=60.0)
            first = [event.to_json()
                     for event in recorder.events[cut:]]
            first_coverage = sim.observability.coverage_report().to_json()
            sim.restore(snap)
            sim.run(until=60.0)
            second = [event.to_json()
                      for event in recorder.events[cut + len(first):]]
            second_coverage = \
                sim.observability.coverage_report().to_json()
        assert first, "the replayed segment must not be empty"
        assert first == second  # ordinals, times, payloads — everything
        assert first_coverage == second_coverage

    def test_bus_ordinals_stay_gapless_after_restore(self):
        sim, recorder = observed_simulation()
        with sim:
            sim.run(until=30.0)
            snap = sim.checkpoint()
            ordinal_at_snap = recorder.events[-1].ordinal
            sim.run(until=50.0)
            sim.restore(snap)
            sim.run(until=50.0)
        ordinals = [event.ordinal for event in recorder.events]
        # the recorder saw the aborted segment too, so its raw list
        # rewinds once — but every emission is gapless from its
        # predecessor on the bus, and the replay resumes exactly at the
        # snapshot ordinal + 1
        rewinds = [index for index in range(1, len(ordinals))
                   if ordinals[index] != ordinals[index - 1] + 1]
        assert len(rewinds) == 1
        assert ordinals[rewinds[0]] == ordinal_at_snap + 1

    def test_coverage_counts_rewind(self):
        sim, _ = observed_simulation()
        with sim:
            sim.run(until=30.0)
            before = sim.observability.coverage_report()
            snap = sim.checkpoint()
            sim.run(until=80.0)
            after = sim.observability.coverage_report()
            assert after.to_json() != before.to_json()
            sim.restore(snap)
            restored = sim.observability.coverage_report()
        assert restored.to_json() == before.to_json()

    def test_profiler_attribution_rewinds_in_place(self):
        # the profiler's ingest closure binds its dicts as cells, so
        # restore must mutate them in place — this also proves the
        # subscriber keeps working (same objects) after a restore
        sim, _ = observed_simulation()
        with sim:
            profiler = sim.observability.profiler
            sim.run(until=30.0)
            snap = sim.checkpoint()
            residence_id = id(profiler.residence)
            seen = profiler.events_seen
            lines_before = list(profiler.finalize(30.0).collapsed_time())
            sim.run(until=80.0)
            assert profiler.events_seen > seen
            sim.restore(snap)
            assert id(profiler.residence) == residence_id
            assert profiler.events_seen == seen
            assert list(profiler.finalize(30.0).collapsed_time()) \
                == lines_before
            sim.run(until=80.0)
            assert profiler.events_seen > seen  # still ingesting

    def test_flight_ring_rewinds(self):
        sim, _ = observed_simulation()
        with sim:
            recorder = sim.observability.recorder
            sim.run(until=30.0)
            snap = sim.checkpoint()
            ring_before = [event.to_json() for event in recorder.events]
            sim.run(until=80.0)
            assert [event.to_json() for event in recorder.events] \
                != ring_before
            sim.restore(snap)
            ring_after = [event.to_json() for event in recorder.events]
        assert ring_after == ring_before

    def test_suite_checkpoint_shape(self):
        sim, _ = observed_simulation()
        with sim:
            sim.run(until=10.0)
            snap = sim.observability.checkpoint()
        assert set(snap) == {"coverage", "profiler", "recorder",
                             "causality"}
        assert all(value is not None for key, value in snap.items()
                   if key != "causality")


class TestStandaloneCollectors:
    def test_coverage_collector_round_trip(self):
        bus = TraceBus()
        top = soc_top()
        collector = CoverageCollector(CoverageModel.for_component(top),
                                      bus=bus)
        with SystemSimulation(top, bus=bus) as sim:
            sim.run(until=20.0)
            snap = collector.checkpoint()
            report = collector.report().to_json()
            sim.run(until=60.0)
            assert collector.report().to_json() != report
            collector.restore(snap)
            assert collector.report().to_json() == report

    def test_profiler_restore_tolerates_unknown_future_parts(self):
        # stale cache entries for parts first seen after the snapshot
        # must not corrupt a restored profiler
        profiler = SimProfiler()
        bus = TraceBus()
        bus.subscribe(profiler, kinds=SimProfiler.KINDS)
        bus.emit("state_enter", 0.0, "a", {"state": "S"})
        snap = profiler.checkpoint()
        bus.emit("state_enter", 1.0, "b", {"state": "T"})
        bus.emit("event", 2.0, "b", {"event": "E"})
        profiler.restore(snap)
        assert "b" not in profiler._stacks
        bus.emit("event", 3.0, "a", {"event": "E"})
        lines = profiler.collapsed_steps()
        assert lines == ["a;S;event:E 1"]
