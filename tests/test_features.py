"""Unit tests for properties, operations, parameters and receptions."""

import pytest

import repro.metamodel as mm
from repro.errors import ModelError


class TestProperties:
    def test_default_value_wrapping(self):
        cls = mm.UmlClass("C")
        prop = cls.add_attribute("count", mm.INTEGER, default=5)
        assert prop.default_value == 5
        assert isinstance(prop.default, mm.LiteralInteger)
        assert prop.default.owner is prop

    def test_set_default_replaces(self):
        prop = mm.Property("x", mm.INTEGER, default=1)
        prop.set_default(9)
        assert prop.default_value == 9
        assert len(prop.owned_of_type(mm.ValueSpecification)) == 1

    def test_type_name(self):
        assert mm.Property("x", mm.INTEGER).type_name == "Integer"
        assert mm.Property("y").type_name == ""

    def test_composite_flag(self):
        prop = mm.Property("p", aggregation=mm.AggregationKind.COMPOSITE)
        assert prop.is_composite

    def test_featuring_classifier(self):
        cls = mm.UmlClass("C")
        prop = cls.add_attribute("a")
        assert prop.featuring_classifier is cls


class TestOperations:
    def test_signature(self):
        op = mm.Operation("read", mm.INTEGER)
        op.add_parameter("addr", mm.INTEGER)
        op.add_parameter("burst", mm.BOOLEAN)
        assert op.signature == "read(addr: Integer, burst: Boolean): Integer"

    def test_void_signature(self):
        assert mm.Operation("reset").signature == "reset()"

    def test_parameter_directions(self):
        op = mm.Operation("f")
        op.add_parameter("a", mm.INTEGER)
        op.add_parameter("b", mm.INTEGER,
                         direction=mm.ParameterDirection.OUT)
        op.add_parameter("c", mm.INTEGER,
                         direction=mm.ParameterDirection.INOUT)
        assert [p.name for p in op.in_parameters] == ["a", "c"]
        assert [p.name for p in op.out_parameters] == ["b", "c"]

    def test_single_return_parameter(self):
        op = mm.Operation("f", mm.INTEGER)
        with pytest.raises(ModelError):
            op.add_parameter("r", mm.INTEGER,
                             direction=mm.ParameterDirection.RETURN)

    def test_set_return_type_replaces_in_place(self):
        op = mm.Operation("f", mm.INTEGER)
        op.set_return_type(mm.BOOLEAN)
        assert op.return_type is mm.BOOLEAN
        assert len([p for p in op.parameters
                    if p.direction is mm.ParameterDirection.RETURN]) == 1

    def test_duplicate_parameter_name_rejected(self):
        op = mm.Operation("f")
        op.add_parameter("x")
        with pytest.raises(ModelError):
            op.add_parameter("x")

    def test_body_attach_and_replace(self):
        op = mm.Operation("f")
        op.set_body("return 1;")
        assert op.body == "return 1;"
        op.set_body("return 2;")
        assert op.body == "return 2;"
        assert len(op.owned_of_type(mm.OpaqueExpression)) == 1

    def test_parameter_default(self):
        op = mm.Operation("f")
        param = op.add_parameter("x", mm.INTEGER, default=4)
        assert param.default_value == 4


class TestReceptions:
    def test_reception_declared_once(self):
        cls = mm.UmlClass("C")
        signal = mm.Signal("Irq")
        cls.add_reception(signal)
        assert cls.receptions[0].signal is signal
        with pytest.raises(ModelError):
            cls.add_reception(signal)
