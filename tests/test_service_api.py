"""The JSONL-over-Unix-socket service API (PR 10): request dispatch,
error envelopes, the blocking client, and a live socket round-trip
through a real daemon."""

import json
import threading

import pytest

import repro.metamodel as mm
from repro import xmi
from repro.errors import ServiceError
from repro.faults import FaultCampaign, FaultSpec
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.service import ServiceClient, ServiceServer, SimulationService


@pytest.fixture(scope="module")
def model_file(tmp_path_factory):
    model = mm.Model("design")
    package = model.create_package("design")
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)],
             package=package)
    path = tmp_path_factory.mktemp("api") / "soc.xmi"
    xmi.write_file(str(path), model)
    return str(path)


@pytest.fixture(scope="module")
def campaign_file(tmp_path_factory):
    campaign = FaultCampaign(
        [FaultSpec("drop", signal="Read", probability=0.3)],
        name="sweep", seed=0)
    path = tmp_path_factory.mktemp("api") / "campaign.json"
    path.write_text(campaign.to_json())
    return str(path)


def make_spec(model_file, campaign_file, name="job", seeds=(1,)):
    return dict(name=name, model=model_file, top="design::Soc",
                campaign=campaign_file, until=10.0, seeds=list(seeds))


@pytest.fixture
def server(tmp_path):
    service = SimulationService(tmp_path / "state", workers=1,
                                lease_duration=30.0)
    server = ServiceServer(service, str(tmp_path / "svc.sock"))
    yield server
    service.jobstore.close()


class TestDispatch:
    def test_ping(self, server):
        assert server.handle({"op": "ping"}) \
            == {"ok": True, "pong": True, "draining": False}

    def test_unknown_op_is_an_error_envelope(self, server):
        response = server.handle_line(b'{"op": "frobnicate"}')
        assert response["ok"] is False
        assert "frobnicate" in response["error"]

    def test_not_json_is_an_error_envelope(self, server):
        response = server.handle_line(b"GET / HTTP/1.1")
        assert response["ok"] is False
        assert "JSON" in response["error"]

    def test_non_object_request(self, server):
        response = server.handle_line(b"[1, 2]")
        assert response["ok"] is False

    def test_submit_needs_a_spec(self, server):
        response = server.handle_line(b'{"op": "submit"}')
        assert response["ok"] is False
        assert "spec" in response["error"]

    def test_refusals_are_envelopes_not_crashes(self, server):
        response = server.handle_line(
            b'{"op": "result", "job_id": "job-999999"}')
        assert response["ok"] is False
        assert "job-999999" in response["error"]

    def test_submit_and_status(self, server, model_file, campaign_file):
        spec = make_spec(model_file, campaign_file)
        response = server.handle({"op": "submit", "spec": spec})
        assert response["ok"] is True
        job_id = response["job"]["job_id"]
        row = server.handle({"op": "status", "job_id": job_id})["job"]
        assert row["state"] == "queued"
        overview = server.handle({"op": "status"})["status"]
        assert overview["queue_depth"] == 1
        cancelled = server.handle({"op": "cancel",
                                   "job_id": job_id})["job"]
        assert cancelled["state"] == "cancelled"

    def test_stats_and_metrics(self, server):
        stats = server.handle({"op": "stats"})["stats"]
        assert stats["service"]["workers"] == 1
        assert "perf" in stats
        text = server.handle({"op": "metrics"})["text"]
        assert text.startswith("# ")  # Prometheus exposition format

    def test_drain_op_stops_admission(self, server, model_file,
                                      campaign_file):
        assert server.handle({"op": "drain"})["draining"] is True
        response = server.handle_line(json.dumps(
            {"op": "submit",
             "spec": make_spec(model_file, campaign_file)}
        ).encode("utf-8"))
        assert response["ok"] is False
        assert "draining" in response["error"]


class TestSocketRoundTrip:
    def test_live_daemon_over_the_socket(self, tmp_path, model_file,
                                         campaign_file):
        service = SimulationService(tmp_path / "state", workers=1,
                                    lease_duration=30.0)
        socket_path = str(tmp_path / "svc.sock")
        server = ServiceServer(service, socket_path)
        server.bind()
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll": 0.02}, daemon=True)
        thread.start()
        try:
            client = ServiceClient(socket_path, timeout=60.0)
            assert client.ping() is True
            row = client.submit(make_spec(model_file, campaign_file,
                                          seeds=[31]))
            final = client.wait(row["job_id"], timeout=120)
            assert final["state"] == "done"
            payload = client.result(row["job_id"])
            assert payload["ok"] is True
            assert len(client.status()["jobs"]) == 1
            assert "repro_service_published" in client.metrics()
            with pytest.raises(ServiceError):
                client.result("job-424242")
        finally:
            client.drain()
            thread.join(timeout=30)
        assert not thread.is_alive()
        # the daemon unlinked its socket on the way out
        import os
        assert not os.path.exists(socket_path)

    def test_client_reports_unreachable_daemon(self, tmp_path):
        client = ServiceClient(str(tmp_path / "nobody.sock"),
                               timeout=1.0)
        with pytest.raises(ServiceError):
            client.ping()
