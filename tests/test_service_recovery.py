"""Daemon crash recovery (PR 10, the crash-matrix test): SIGKILL the
*daemon* mid-campaign, restart it on the same state directory, and
prove that journal replay resumes exactly the unfinished jobs and that
the final results are byte-identical (``cmp``-equal) to an
uninterrupted reference run."""

import filecmp
import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro.metamodel as mm
from repro import xmi
from repro.faults import FaultCampaign, FaultSpec
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.service import ServiceClient, SimulationService

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


@pytest.fixture(scope="module")
def fixtures(tmp_path_factory):
    base = tmp_path_factory.mktemp("recovery")
    model = mm.Model("design")
    package = model.create_package("design")
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)],
             package=package)
    model_path = base / "soc.xmi"
    xmi.write_file(str(model_path), model)
    campaign = FaultCampaign(
        [FaultSpec("drop", signal="Read", probability=0.3)],
        name="sweep", seed=0)
    campaign_path = base / "campaign.json"
    campaign_path.write_text(campaign.to_json())
    return str(model_path), str(campaign_path)


def job_specs(fixtures, count=3):
    model_path, campaign_path = fixtures
    return [dict(name=f"recovery-{index}", model=model_path,
                 top="design::Soc", campaign=campaign_path,
                 until=30.0, seeds=[100 + index, 200 + index])
            for index in range(count)]


def spawn_daemon(state_dir, socket_path, log_path):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = SRC + os.pathsep \
        + environment.get("PYTHONPATH", "")
    log = open(log_path, "a", encoding="utf-8")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(state_dir),
         "--socket", str(socket_path), "--workers", "1",
         "--lease", "30", "--retry-backoff", "0.01"],
        stdout=log, stderr=subprocess.STDOUT, env=environment)
    client = ServiceClient(str(socket_path), timeout=30.0)
    deadline = time.monotonic() + 30.0
    while True:
        try:
            client.ping()
            return process, client
        except Exception:
            if process.poll() is not None:
                log.close()
                raise AssertionError(
                    f"daemon died on startup: "
                    f"{open(log_path).read()}")
            if time.monotonic() > deadline:
                process.kill()
                raise AssertionError("daemon never answered ping")
            time.sleep(0.05)


def wait_for_a_lease(client, timeout=60.0):
    """Block until some job holds a lease (leased/running/merging)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.status()
        if any(row["state"] in ("leased", "running", "merging")
               for row in status["jobs"]):
            return status
        if all(row["state"] == "done" for row in status["jobs"]):
            raise AssertionError(
                "all jobs finished before the kill window")
        time.sleep(0.02)
    raise AssertionError("no job ever took a lease")


def test_daemon_sigkill_recovery_matches_uninterrupted_run(
        tmp_path, fixtures):
    specs = job_specs(fixtures)

    # --- reference: the same jobs, uninterrupted, in-process ----------
    reference = SimulationService(tmp_path / "reference", workers=1,
                                  lease_duration=60.0)
    reference_rows = [reference.submit(spec) for spec in specs]
    reference.run_until_idle(timeout=600)
    reference_files = {}
    for spec, row in zip(specs, reference_rows):
        assert reference.status(row["job_id"])["state"] == "done"
        reference_files[row["fingerprint"]] = \
            reference.jobstore.result_path(row["job_id"])
    reference.shutdown()

    # --- interrupted: a real daemon, SIGKILLed mid-campaign -----------
    state_dir = tmp_path / "state"
    socket_path = tmp_path / "svc.sock"
    log_path = tmp_path / "serve.log"
    process, client = spawn_daemon(state_dir, socket_path, log_path)
    victim_rows = [client.submit(spec) for spec in specs]
    assert len({row["job_id"] for row in victim_rows}) == len(specs)
    wait_for_a_lease(client)
    os.kill(process.pid, signal.SIGKILL)  # no drain, no snapshot
    process.wait(timeout=30)

    before_restart = {}
    for line in open(state_dir / "journal.jsonl", encoding="utf-8"):
        record = json.loads(line)
        if record["kind"] == "submit":
            before_restart[record["job_id"]] = "queued"
        elif record["kind"] == "event":
            before_restart[record["job_id"]] = record["event"]
    # the journal saw every accepted job, none were lost by the kill
    assert set(before_restart) == {row["job_id"]
                                   for row in victim_rows}

    # --- restart on the same state dir: replay resumes the queue ------
    process, client = spawn_daemon(state_dir, socket_path, log_path)
    try:
        for row in victim_rows:
            final = client.wait(row["job_id"], timeout=600)
            assert final["state"] == "done", final
    finally:
        client.drain()
        process.wait(timeout=60)
    assert process.returncode == 0  # graceful drain exits 0

    # --- the crash changed nothing observable -------------------------
    for row in victim_rows:
        result_file = state_dir / "results" / f"{row['job_id']}.json"
        assert filecmp.cmp(result_file,
                           reference_files[row["fingerprint"]],
                           shallow=False), \
            f"{row['job_id']} diverged from the uninterrupted run"

    # finished jobs were not re-run after the restart: at most the one
    # holding the lease at kill time needed a second attempt
    lease_events = sum(
        1 for line in open(state_dir / "journal.jsonl",
                           encoding="utf-8")
        if json.loads(line).get("event") == "lease")
    assert lease_events <= len(specs) + 1


def test_recovery_is_idempotent_without_a_crash(tmp_path, fixtures):
    """Booting twice on an already-clean state dir changes nothing."""
    spec = job_specs(fixtures, count=1)[0]
    service = SimulationService(tmp_path / "state", workers=1)
    row = service.submit(spec)
    service.run_until_idle(timeout=300)
    payload = service.result(row["job_id"])
    service.shutdown()
    for _ in range(2):
        reborn = SimulationService(tmp_path / "state", workers=1)
        assert reborn.last_recovery == {"requeued": 0,
                                        "republished": 0,
                                        "quarantined": 0}
        assert reborn.result(row["job_id"]) == payload
        reborn.shutdown()
