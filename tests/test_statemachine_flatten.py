"""Tests for semantic flattening of state machines."""

import pytest

from repro.errors import StateMachineError
from repro.statemachines import (
    FlatStateMachine,
    PseudostateKind,
    StateMachine,
    StateMachineRuntime,
    default_alphabet,
    flatten,
)


def build_hierarchical():
    """Off / On(Red->Green->Yellow) with power + tick events."""
    machine = StateMachine("traffic")
    region = machine.region
    init = region.add_initial()
    off = region.add_state("Off")
    on = region.add_state("On")
    region.add_transition(init, off)
    region.add_transition(off, on, trigger="power")
    region.add_transition(on, off, trigger="power")
    inner = on.add_region()
    i2 = inner.add_initial()
    names = ["Red", "Green", "Yellow"]
    states = [inner.add_state(n) for n in names]
    inner.add_transition(i2, states[0])
    for a, b in zip(states, states[1:] + states[:1]):
        inner.add_transition(a, b, trigger="tick")
    return machine


class TestFlatten:
    def test_default_alphabet(self):
        machine = build_hierarchical()
        assert default_alphabet(machine) == ("power", "tick")

    def test_flat_machine_structure(self):
        flat = flatten(build_hierarchical())
        assert flat.initial == "Off"
        assert set(flat.states) == {"Off", "Red", "Green", "Yellow"}

    def test_flat_matches_interpreter_on_random_walk(self):
        import random

        machine = build_hierarchical()
        flat = flatten(machine)
        runtime = StateMachineRuntime(machine).start()
        rng = random.Random(7)
        for _ in range(200):
            event = rng.choice(["power", "tick"])
            flat.step(event)
            runtime.send(event)
            assert flat.leaf_names() == runtime.active_leaf_names()

    def test_unknown_event_is_identity(self):
        flat = flatten(build_hierarchical())
        before = flat.current
        flat.step("bogus")
        assert flat.current == before

    def test_run_sequence(self):
        flat = flatten(build_hierarchical())
        final = flat.run(["power", "tick", "tick"])
        assert final == "Yellow"
        flat.reset()
        assert flat.current == "Off"

    def test_orthogonal_configurations(self):
        machine = StateMachine("par")
        region = machine.region
        init = region.add_initial()
        par = region.add_state("Par")
        region.add_transition(init, par)
        for label in ("x", "y"):
            sub = par.add_region(label)
            i = sub.add_initial()
            one = sub.add_state(f"{label}1")
            two = sub.add_state(f"{label}2")
            sub.add_transition(i, one)
            sub.add_transition(one, two, trigger=label)
        flat = flatten(machine)
        assert set(flat.states) == {"x1+y1", "x1+y2", "x2+y1", "x2+y2"}
        flat.step("x")
        flat.step("y")
        assert flat.current == "x2+y2"

    def test_time_triggers_rejected(self):
        machine = StateMachine("t")
        region = machine.region
        init = region.add_initial()
        a, b = region.add_state("A"), region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b, after=1.0)
        with pytest.raises(StateMachineError):
            flatten(machine)

    def test_guards_respect_fixed_context(self):
        machine = StateMachine("g")
        region = machine.region
        init = region.add_initial()
        a, b = region.add_state("A"), region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b, trigger="go", guard="enabled")
        blocked = flatten(machine, context={"enabled": False})
        blocked.step("go")
        assert blocked.current == "A"
        allowed = flatten(machine, context={"enabled": True})
        allowed.step("go")
        assert allowed.current == "B"


class TestSnapshotRestore:
    def test_round_trip_restores_configuration(self):
        machine = build_hierarchical()
        runtime = StateMachineRuntime(machine).start()
        runtime.send("power")
        runtime.send("tick")
        checkpoint = runtime.snapshot()
        runtime.send("power")  # move away
        assert runtime.active_leaf_names() == ("Off",)
        runtime.restore(checkpoint)
        assert runtime.active_leaf_names() == ("Green",)
        # execution continues correctly from the restored point
        runtime.send("tick")
        assert runtime.active_leaf_names() == ("Yellow",)

    def test_context_and_time_restored(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        a = region.add_state("A")
        b = region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b, after=10.0,
                              effect="fired = fired + 1;")
        runtime = StateMachineRuntime(machine,
                                      context={"fired": 0}).start()
        checkpoint = runtime.snapshot()
        runtime.advance_time(15.0)
        assert runtime.context["fired"] == 1
        runtime.restore(checkpoint)
        assert runtime.time == 0.0
        assert runtime.context["fired"] == 0
        runtime.advance_time(15.0)  # the timer fires again post-restore
        assert runtime.context["fired"] == 1

    def test_history_restored(self):
        machine = build_hierarchical()
        # add history so exits are remembered
        on = machine.find_state("On")
        on.regions[0].add_pseudostate(
            PseudostateKind.SHALLOW_HISTORY, "hist")
        runtime = StateMachineRuntime(machine).start()
        runtime.send("power")
        runtime.send("tick")       # Green
        runtime.send("power")      # Off (history records Green)
        checkpoint = runtime.snapshot()
        runtime.send("power")      # back On -> default Red (no hist entry)
        runtime.restore(checkpoint)
        assert runtime.active_leaf_names() == ("Off",)
