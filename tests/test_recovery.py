"""Supervised rollback recovery (PR 5): periodic part checkpoints, the
``on_part_error="restore"`` policy, and the Supervisor escalation chain
(restore -> restart -> quarantine, per-part budgets) — including the
lockstep guarantee that both engines walk the identical recovery path.
"""

import json

import pytest

import repro.metamodel as mm
from repro.engine import (
    CHECKPOINT,
    PART_RESTORED,
    SUPERVISOR_DECISION,
    TraceBus,
    TraceRecorder,
)
from repro.errors import SimulationError
from repro.simulation import SUPERVISOR_ACTIONS, Supervisor, SystemSimulation
from repro.statemachines import StateMachine, TransitionKind


def make_fragile_top(fail_on="Poke"):
    """A counter part whose ``fail_on`` signal raises inside its effect."""
    part = mm.Component("Fragile")
    part.add_attribute("pings", mm.INTEGER, default=0)
    part.add_port("in", direction=mm.PortDirection.IN)
    machine = StateMachine("FragileBehavior")
    region = machine.region
    init = region.add_initial()
    idle = region.add_state("Idle")
    region.add_transition(init, idle)
    region.add_transition(idle, idle, trigger="Ping",
                          effect="pings = pings + 1;",
                          kind=TransitionKind.INTERNAL)
    region.add_transition(idle, idle, trigger=fail_on,
                          effect="x = undefined_name + 1;",
                          kind=TransitionKind.INTERNAL)
    part.add_behavior(machine, as_classifier_behavior=True)
    top = mm.Component("Top")
    top.add_part("frag", part)
    return top


class TestSupervisorUnit:
    def test_action_vocabulary(self):
        assert SUPERVISOR_ACTIONS == ("restore", "restart", "quarantine")

    def test_quarantine_policy_passthrough(self):
        supervisor = Supervisor("quarantine")
        assert supervisor.decide("p") == ("quarantine", "quarantine")

    def test_restore_escalation_chain(self):
        supervisor = Supervisor("restore", max_restores=2, max_restarts=1)
        assert supervisor.decide("p") == ("restore", "restore")
        assert supervisor.decide("p") == ("restore", "restore")
        assert supervisor.decide("p") == \
            ("restart", "restart (restore budget exhausted)")
        assert supervisor.decide("p") == \
            ("quarantine", "quarantine (recovery budgets exhausted)")
        # budgets are per part: a fresh part starts the chain over
        assert supervisor.decide("q") == ("restore", "restore")

    def test_restore_without_snapshot_restarts(self):
        supervisor = Supervisor("restore", max_restores=3)
        action, label = supervisor.decide("p", has_snapshot=False)
        assert action == "restart"
        assert label == "restart (no snapshot)"
        # the failed restore attempt did not burn the restore budget
        assert supervisor.budgets("p")["restores_left"] == 3

    def test_budgets_and_state_round_trip(self):
        supervisor = Supervisor("restore", max_restores=2, max_restarts=5)
        supervisor.decide("p")
        snap = supervisor.snapshot()
        supervisor.decide("p")
        assert supervisor.budgets("p")["restores_left"] == 0
        supervisor.restore_state(snap)
        assert supervisor.budgets("p") == \
            {"restores_left": 1, "restarts_left": 5}


class TestRestorePolicy:
    def scenario(self, **kwargs):
        sim = SystemSimulation(make_fragile_top(), **kwargs)
        sim.send("frag", "Ping", delay=1.0)
        sim.send("frag", "Ping", delay=2.0)
        sim.send("frag", "Poke", delay=7.0)
        sim.send("frag", "Ping", delay=9.0)
        sim.run(until=20.0)
        return sim

    def test_restore_rolls_back_to_last_checkpoint(self):
        # checkpoint at t=5 holds pings=2; the t=7 failure rolls back to
        # it, so the t=9 ping lands on the *preserved* counter
        with self.scenario(on_part_error="restore",
                           checkpoint_interval=5.0) as sim:
            assert sim.context_of("frag")["pings"] == 3
            assert sim.resilience.restores == {"frag": 1}
            assert sim.resilience.restarts == {}
            assert sim.quarantined_parts == ()
            assert sim.stats()["restores"] == 1

    def test_restart_loses_what_restore_keeps(self):
        # the identical scenario under the PR 2 restart policy rebuilds
        # the part cold: the two pre-failure pings are gone
        with self.scenario(on_part_error="restart") as sim:
            assert sim.context_of("frag")["pings"] == 1
            assert sim.resilience.restarts == {"frag": 1}

    def test_baseline_snapshot_without_interval(self):
        # restore policy alone arms a construction-time baseline: a
        # failure before any periodic checkpoint still rolls back
        with self.scenario(on_part_error="restore") as sim:
            assert sim.resilience.restores == {"frag": 1}
            assert sim.quarantined_parts == ()

    def test_escalation_exhausts_to_quarantine(self):
        sim = SystemSimulation(make_fragile_top(),
                               on_part_error="restore",
                               checkpoint_interval=4.0,
                               max_restores=1, max_restarts=1)
        for delay in (5.0, 6.0, 7.0, 8.0):
            sim.send("frag", "Poke", delay=delay)
        sim.run(until=20.0)
        actions = [failure["action"]
                   for failure in sim.resilience.part_failures]
        assert actions == [
            "restore",
            "restart (restore budget exhausted)",
            "quarantine (recovery budgets exhausted)",
        ]
        assert sim.quarantined_parts == ("frag",)
        # the 4th poke hit a quarantined part: no further failure rows
        assert len(sim.resilience.part_failures) == 3
        sim.close()

    def test_periodic_checkpoints_advance(self):
        with SystemSimulation(make_fragile_top(),
                              checkpoint_interval=5.0) as sim:
            assert sim.part_snapshot_times == {"frag": 0.0}
            sim.run(until=12.0)
            assert sim.part_snapshot_times == {"frag": 10.0}
            assert sim.take_part_checkpoints() == 1
            assert sim.part_snapshot_times == {"frag": 12.0}

    def test_checkpoint_interval_validation(self):
        with pytest.raises(SimulationError):
            SystemSimulation(make_fragile_top(), checkpoint_interval=0.0)

    def test_full_checkpoint_carries_recovery_state(self):
        sim = SystemSimulation(make_fragile_top(),
                               on_part_error="restore",
                               checkpoint_interval=5.0, max_restores=1)
        sim.send("frag", "Poke", delay=3.0)
        sim.run(until=10.0)
        assert sim.resilience.restores == {"frag": 1}
        snap = sim.checkpoint()
        sim.send("frag", "Poke", delay=2.0)
        sim.run(until=15.0)
        # second failure escalated past the exhausted restore budget
        assert sim.resilience.restarts == {"frag": 1}
        sim.restore(snap)
        assert sim.resilience.restarts == {}
        assert sim.supervisor.budgets("frag")["restores_left"] == 0
        assert sim.part_snapshot_times == {"frag": 10.0}
        sim.close()


class TestRecoveryTraceEvents:
    def recovery_trace(self, compiled):
        bus = TraceBus()
        recorder = TraceRecorder(bus)
        with SystemSimulation(make_fragile_top(), compile=compiled,
                              on_part_error="restore",
                              checkpoint_interval=5.0, bus=bus) as sim:
            sim.send("frag", "Ping", delay=1.0)
            sim.send("frag", "Poke", delay=7.0)
            sim.send("frag", "Ping", delay=9.0)
            sim.run(until=20.0)
        return recorder

    def test_supervisor_decision_is_traced(self):
        recorder = self.recovery_trace(compiled=False)
        decisions = [event for event in recorder.events
                     if event.kind == SUPERVISOR_DECISION]
        assert len(decisions) == 1
        decision = decisions[0]
        assert decision.part == "frag"
        assert decision.data["action"] == "restore"
        assert decision.data["label"] == "restore"
        assert "AslRuntimeError" in decision.data["reason"]
        assert decision.data["restores_left"] == 2
        assert decision.data["restarts_left"] == 3

    def test_restore_and_checkpoint_are_traced(self):
        recorder = self.recovery_trace(compiled=False)
        restored = [event for event in recorder.events
                    if event.kind == PART_RESTORED]
        assert [event.part for event in restored] == ["frag"]
        assert restored[0].data["snapshot_t"] == 5.0
        checkpoints = [event for event in recorder.events
                       if event.kind == CHECKPOINT]
        assert checkpoints, "periodic checkpoints must be traced"
        assert all(event.data["parts"] == 1 for event in checkpoints)
        # the decision precedes the rollback it chose
        ordinals = [event.ordinal for event in recorder.events
                    if event.kind in (SUPERVISOR_DECISION, PART_RESTORED)]
        assert ordinals == sorted(ordinals)

    def test_recovery_is_lockstep_across_engines(self):
        # the engines word their action errors differently, so the
        # lockstep contract covers everything *except* the free-text
        # reason: same ordinals, times, kinds, actions, budgets.
        def normalized(recorder):
            lines = []
            for event in recorder.events:
                data = {key: value for key, value in event.data.items()
                        if key not in ("reason", "error")}
                lines.append(json.dumps(
                    [event.ordinal, event.t, event.kind, event.part,
                     data], sort_keys=True))
            return lines

        interpreted = self.recovery_trace(compiled=False)
        compiled = self.recovery_trace(compiled=True)
        assert normalized(interpreted) == normalized(compiled)
        kinds = {event.kind for event in interpreted.events}
        assert {SUPERVISOR_DECISION, PART_RESTORED, CHECKPOINT} <= kinds

    def test_lockstep_final_state_after_rollback(self):
        results = []
        for compiled in (False, True):
            with SystemSimulation(make_fragile_top(), compile=compiled,
                                  on_part_error="restore",
                                  checkpoint_interval=5.0) as sim:
                sim.send("frag", "Ping", delay=1.0)
                sim.send("frag", "Ping", delay=2.0)
                sim.send("frag", "Poke", delay=7.0)
                sim.send("frag", "Ping", delay=9.0)
                sim.run(until=20.0)
                results.append({
                    "pings": sim.context_of("frag")["pings"],
                    "states": sim.state_snapshot(),
                    "restores": dict(sim.resilience.restores),
                    "snapshots": sim.part_snapshot_times,
                })
        assert results[0] == results[1]
        assert results[0]["pings"] == 3
