"""The online PropertyChecker (PR 7): monitor-automaton semantics for
every property kind, nested ``property_violation`` emission, checkpoint
/restore transparency, the three escalation policies, and the CLI
exit-code vocabulary the verdicts map onto."""

import pytest

from repro.engine import (
    MESSAGE_DELIVERED,
    PROPERTY_VIOLATION,
    TraceBus,
    TraceRecorder,
)
from repro.errors import PropertyError
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.perf import PERF
from repro.properties import (
    PropertyChecker,
    PropertySuite,
    VIOLATION_POLICIES,
    absence,
    bounded_liveness,
    interaction_conformance,
    precedence,
    response,
)
from repro.simulation import SystemSimulation


def checker_for(prop_or_suite, bus=None, **kwargs):
    bus = bus if bus is not None else TraceBus()
    suite = prop_or_suite if isinstance(prop_or_suite, PropertySuite) \
        else PropertySuite([prop_or_suite])
    return PropertyChecker(suite, bus, **kwargs), bus


def deliver(bus, t, part, signal, sender="peer"):
    return bus.emit(MESSAGE_DELIVERED, t, part,
                    {"signal": signal, "sender": sender})


class TestResponseMonitor:
    def prop(self, within=4.0):
        return response("r", trigger={"signal": "Req", "part": "srv"},
                        reaction={"signal": "Ack", "part": "cli"},
                        within=within)

    def test_discharged_in_time_passes(self):
        checker, bus = checker_for(self.prop())
        deliver(bus, 1.0, "srv", "Req")
        deliver(bus, 5.0, "cli", "Ack")  # exactly at the deadline
        checker.finalize(10.0)
        assert checker.verdicts() == {"r": "pass"}
        assert checker.stats()["r"]["discharged"] == 1

    def test_expiry_detected_by_later_event(self):
        checker, bus = checker_for(self.prop())
        deliver(bus, 1.0, "srv", "Req")
        deliver(bus, 6.0, "srv", "Req")  # time passed 5.0: expiry
        violations = checker.violations("r")
        assert len(violations) == 1
        assert violations[0]["t"] == 6.0
        assert "deadline 5.0" in violations[0]["reason"]

    def test_open_obligation_expires_at_finalize(self):
        checker, bus = checker_for(self.prop())
        deliver(bus, 1.0, "srv", "Req")
        assert checker.total_violations == 0
        checker.finalize(5.0)  # inclusive at the boundary
        assert checker.verdicts() == {"r": "violated"}
        # finalize records no witness event
        assert checker.violations("r")[0]["at"] is None

    def test_obligations_discharge_fifo(self):
        checker, bus = checker_for(self.prop(within=10.0))
        deliver(bus, 1.0, "srv", "Req")
        deliver(bus, 2.0, "srv", "Req")
        deliver(bus, 3.0, "cli", "Ack")  # answers the t=1.0 trigger
        checker.finalize(12.5)  # only the t=2.0 obligation expires
        violations = checker.violations("r")
        assert len(violations) == 1
        assert "t=2.0" in violations[0]["reason"]

    def test_unmatched_reactions_counted_not_violating(self):
        checker, bus = checker_for(self.prop())
        deliver(bus, 1.0, "cli", "Ack")
        checker.finalize(10.0)
        assert checker.verdicts() == {"r": "pass"}
        assert checker.stats()["r"]["unmatched_reactions"] == 1


class TestPrecedenceMonitor:
    def prop(self):
        return precedence("p", first={"signal": "Init"},
                          then={"signal": "Data"})

    def test_then_before_first_violates(self):
        checker, bus = checker_for(self.prop())
        deliver(bus, 1.0, "srv", "Data")
        deliver(bus, 2.0, "srv", "Init")
        deliver(bus, 3.0, "srv", "Data")
        assert len(checker.violations("p")) == 1
        assert checker.violations("p")[0]["t"] == 1.0

    def test_armed_forever_after_first(self):
        checker, bus = checker_for(self.prop())
        deliver(bus, 1.0, "srv", "Init")
        deliver(bus, 2.0, "srv", "Data")
        checker.finalize(10.0)
        assert checker.verdicts() == {"p": "pass"}


class TestAbsenceMonitor:
    def test_every_occurrence_reported(self):
        checker, bus = checker_for(absence("a", never="Nak"))
        deliver(bus, 1.0, "srv", "Nak")
        deliver(bus, 2.0, "srv", "Nak")
        assert len(checker.violations("a")) == 2

    def test_window_is_inclusive(self):
        checker, bus = checker_for(
            absence("a", never="Nak", window=(2.0, 4.0)))
        deliver(bus, 1.9, "srv", "Nak")
        deliver(bus, 2.0, "srv", "Nak")
        deliver(bus, 4.0, "srv", "Nak")
        deliver(bus, 4.1, "srv", "Nak")
        assert [v["t"] for v in checker.violations("a")] == [2.0, 4.0]


class TestLivenessMonitor:
    def prop(self):
        return bounded_liveness("l", match={"signal": "Tick"},
                                at_least=2, by=10.0)

    def test_enough_matches_pass(self):
        checker, bus = checker_for(self.prop())
        deliver(bus, 1.0, "srv", "Tick")
        deliver(bus, 10.0, "srv", "Tick")  # deadline inclusive
        checker.finalize(20.0)
        assert checker.verdicts() == {"l": "pass"}

    def test_late_matches_do_not_count(self):
        checker, bus = checker_for(self.prop())
        deliver(bus, 1.0, "srv", "Tick")
        deliver(bus, 10.5, "srv", "Tick")
        assert len(checker.violations("l")) == 1
        checker.finalize(20.0)
        assert len(checker.violations("l")) == 1  # reported only once

    def test_shortfall_found_at_finalize(self):
        checker, bus = checker_for(self.prop())
        deliver(bus, 1.0, "srv", "Tick")
        checker.finalize(10.0)
        assert checker.verdicts() == {"l": "violated"}
        assert "1/2" in checker.violations("l")[0]["reason"]


class TestConformanceMonitor:
    def prop(self, **kwargs):
        return interaction_conformance(
            "hs", messages=[("cpu", "ram", "Read"),
                            ("ram", "cpu", "ReadResp")],
            loop=(0, 4), **kwargs)

    def test_conforming_trace_passes(self):
        checker, bus = checker_for(self.prop(complete=True))
        deliver(bus, 1.0, "ram", "Read", sender="cpu")
        deliver(bus, 2.0, "cpu", "ReadResp", sender="ram")
        deliver(bus, 3.0, "ram", "Read", sender="cpu")
        deliver(bus, 4.0, "cpu", "ReadResp", sender="ram")
        checker.finalize(5.0)
        assert checker.verdicts() == {"hs": "pass"}
        assert checker.stats()["hs"]["consumed"] == 4

    def test_divergence_reported_once_then_dead(self):
        checker, bus = checker_for(self.prop())
        deliver(bus, 1.0, "ram", "Read", sender="cpu")
        deliver(bus, 2.0, "ram", "Read", sender="cpu")  # expected ReadResp
        deliver(bus, 3.0, "ram", "Read", sender="cpu")
        violations = checker.violations("hs")
        assert len(violations) == 1
        assert "message 2" in violations[0]["reason"]
        assert checker.stats()["hs"]["diverged"]

    def test_out_of_alphabet_messages_ignored(self):
        checker, bus = checker_for(self.prop())
        deliver(bus, 1.0, "ram", "Read", sender="cpu")
        deliver(bus, 1.5, "ram", "Write", sender="cpu")  # unrelated
        deliver(bus, 2.0, "cpu", "ReadResp", sender="ram")
        checker.finalize(5.0)
        assert checker.verdicts() == {"hs": "pass"}
        assert checker.stats()["hs"]["consumed"] == 2

    def test_env_messages_skipped_unless_included(self):
        checker, bus = checker_for(self.prop())
        bus.emit(MESSAGE_DELIVERED, 1.0, "ram", {"signal": "Read"})
        assert checker.stats()["hs"]["consumed"] == 0

    def test_incomplete_prefix_violates_with_complete(self):
        checker, bus = checker_for(self.prop(complete=True))
        deliver(bus, 1.0, "ram", "Read", sender="cpu")  # unanswered
        checker.finalize(5.0)
        assert checker.verdicts() == {"hs": "violated"}
        assert "incomplete prefix" in checker.violations("hs")[0]["reason"]

    def test_viable_prefix_passes_without_complete(self):
        checker, bus = checker_for(self.prop())
        deliver(bus, 1.0, "ram", "Read", sender="cpu")
        checker.finalize(5.0)
        assert checker.verdicts() == {"hs": "pass"}


class TestCheckerMechanics:
    def suite(self):
        return PropertySuite([
            absence("no-nak", never="Nak"),
            response("answered", trigger={"signal": "Req"},
                     reaction={"signal": "Ack"}, within=2.0),
        ], name="mech")

    def test_violation_events_nest_after_their_witness(self):
        bus = TraceBus()
        recorder = TraceRecorder(
            bus, kinds=(MESSAGE_DELIVERED, PROPERTY_VIOLATION))
        checker, _ = checker_for(self.suite(), bus=bus)
        witness = deliver(bus, 1.0, "srv", "Nak")
        emitted = [event for event in recorder.events
                   if event.kind == PROPERTY_VIOLATION]
        assert len(emitted) == 1
        assert emitted[0].ordinal == witness.ordinal + 1
        assert emitted[0].part == "srv"
        assert emitted[0].data["property"] == "no-nak"
        assert emitted[0].data["sequence"] == 1
        # the record stores the witness ordinal, not the emission's
        assert checker.violations("no-nak")[0]["at"] == witness.ordinal

    def test_unobserved_violation_kind_costs_no_ordinal(self):
        bus = TraceBus()
        recorder = TraceRecorder(bus, kinds=(MESSAGE_DELIVERED,))
        checker_for(self.suite(), bus=bus)
        deliver(bus, 1.0, "srv", "Nak")
        deliver(bus, 2.0, "srv", "Ping")
        assert [event.ordinal for event in recorder.events] == [1, 2]

    def test_finalize_is_idempotent(self):
        checker, bus = checker_for(self.suite())
        deliver(bus, 1.0, "srv", "Req")
        checker.finalize(10.0)
        first = checker.report().to_json()
        checker.finalize(50.0)
        assert checker.report().to_json() == first

    def test_checkpoint_restore_round_trip(self):
        checker, bus = checker_for(self.suite())
        deliver(bus, 1.0, "srv", "Req")
        deliver(bus, 2.0, "srv", "Ack")
        snap = checker.checkpoint()
        bus_snap = bus.checkpoint()
        deliver(bus, 3.0, "srv", "Nak")
        deliver(bus, 4.0, "srv", "Req")
        assert checker.total_violations == 1
        checker.restore(snap)
        bus.restore(bus_snap)
        assert checker.total_violations == 0
        # replaying the same tail reproduces the same report bytes
        deliver(bus, 3.0, "srv", "Nak")
        deliver(bus, 4.0, "srv", "Req")
        checker.finalize(10.0)
        reference, reference_bus = checker_for(self.suite())
        deliver(reference_bus, 1.0, "srv", "Req")
        deliver(reference_bus, 2.0, "srv", "Ack")
        deliver(reference_bus, 3.0, "srv", "Nak")
        deliver(reference_bus, 4.0, "srv", "Req")
        reference.finalize(10.0)
        assert checker.report().to_json() == reference.report().to_json()

    def test_detach_stops_observation(self):
        checker, bus = checker_for(self.suite())
        deliver(bus, 1.0, "srv", "Nak")
        checker.detach()
        deliver(bus, 2.0, "srv", "Nak")
        assert checker.total_violations == 1

    def test_perf_counters(self):
        PERF.reset()
        checker, bus = checker_for(self.suite())
        deliver(bus, 1.0, "srv", "Nak")
        deliver(bus, 2.0, "srv", "Ping")
        assert PERF.counter("properties.events") == 2
        assert PERF.counter("properties.violations") == 1
        PERF.reset()

    def test_unknown_policy_rejected(self):
        with pytest.raises(PropertyError):
            checker_for(self.suite(), on_violation="panic")
        assert VIOLATION_POLICIES == ("record", "incident", "supervise")

    def test_unknown_property_name_rejected(self):
        checker, _ = checker_for(self.suite())
        with pytest.raises(PropertyError):
            checker.violations("bogus")


def soc_top():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    return make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)])


def nak_suite():
    # ReadResp always flows in a healthy run: a guaranteed violation
    return PropertySuite([absence("no-resp", never="ReadResp")],
                         name="policies")


class TestEscalationPolicies:
    def test_record_only_records(self):
        fired = []
        with SystemSimulation(soc_top(), properties=nak_suite(),
                              on_violation="record") as sim:
            sim.incident_hooks.append(
                lambda reason, detail: fired.append(reason))
            sim.run(until=20.0)
            report = sim.property_report()
        assert report.verdict == "violated"
        assert "property_violation" not in fired
        assert sim.resilience.counts["property_violations"] \
            == report.total_violations
        assert sim.resilience.counts["property_violated.no-resp"] \
            == report.total_violations

    def test_incident_fires_hooks(self):
        fired = []
        with SystemSimulation(soc_top(), properties=nak_suite()) as sim:
            sim.incident_hooks.append(
                lambda reason, detail: fired.append((reason, detail)))
            sim.run(until=20.0)
        assert fired
        assert all(reason == "property_violation" for reason, _ in fired)
        assert "no-resp" in fired[0][1]

    def test_supervise_escalates_the_witnessing_part(self):
        with SystemSimulation(soc_top(), properties=nak_suite(),
                              on_violation="supervise",
                              on_part_error="restart") as sim:
            sim.run(until=20.0)
        assert sim.resilience.part_failures
        assert any("no-resp" in failure["error"]
                   for failure in sim.resilience.part_failures)

    def test_supervise_with_raise_policy_stays_incident_only(self):
        # raising out of a bus callback would detach the checker; with
        # on_part_error="raise" the policy degrades to incident
        with SystemSimulation(soc_top(), properties=nak_suite(),
                              on_violation="supervise") as sim:
            sim.run(until=20.0)
            report = sim.property_report()
        assert report.verdict == "violated"
        assert not sim.resilience.part_failures

    def test_properties_require_the_bus(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            SystemSimulation(soc_top(), bus=False,
                             properties=nak_suite())


class TestExitCodeVocabulary:
    def test_exit_codes_are_disjoint_and_pinned(self):
        from repro.cli import (
            EXIT_ERROR,
            EXIT_INCIDENT,
            EXIT_OK,
            EXIT_PROPERTY_VIOLATED,
            EXIT_QUARANTINED,
        )

        codes = {EXIT_OK, EXIT_ERROR, EXIT_QUARANTINED, EXIT_INCIDENT,
                 EXIT_PROPERTY_VIOLATED}
        assert len(codes) == 5  # pairwise distinct
        assert EXIT_OK == 0
        assert EXIT_ERROR == 2
        assert EXIT_QUARANTINED == 3
        assert EXIT_INCIDENT == 4
        assert EXIT_PROPERTY_VIOLATED == 5
        assert 1 not in codes  # reserved for campaign infra failures
