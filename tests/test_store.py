"""The content-addressed artifact store (PR 8): envelope round-trips,
integrity fall-through on corruption, atomic same-key writer races,
gc/ls/info, the active-store switch, the model registry, cross-process
fingerprint stability, and the configurable transform LRU."""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
import repro.metamodel as mm
import repro.store as store_mod
from repro import xmi
from repro.errors import StoreError, TransformError
from repro.metamodel import element_fingerprint, model_fingerprint
from repro.perf import PERF
from repro.profiles import create_soc_profile
from repro.profiles.core import apply_stereotype
from repro.statemachines import StateMachine
from repro.store import (
    ENVELOPE_VERSION,
    STORE_ENV,
    ArtifactStore,
    ModelRegistry,
    canonical_json,
    get_active_store,
    set_active_store,
    using_store,
)


@pytest.fixture(autouse=True)
def _isolated_store_state():
    """No test inherits (or leaks) an active store or $REPRO_STORE."""
    os.environ.pop(STORE_ENV, None)
    store_mod._ACTIVE = None
    yield
    os.environ.pop(STORE_ENV, None)
    store_mod._ACTIVE = False  # back to "unresolved" for other suites


def _envelope_path(store, kind, key):
    return store._path(kind, key)


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        payload = {"b": [1, 2], "a": {"nested": True}}
        store.save("compile", "deadbeef", payload,
                   inputs=("fp1", "fp0"), meta={"machine": "m"})
        assert store.load("compile", "deadbeef") == payload

    def test_envelope_is_versioned_sorted_json(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("compile", "cafe", {"x": 1}, inputs=("b", "a"))
        text = _envelope_path(store, "compile", "cafe").read_text()
        envelope = json.loads(text)
        assert envelope["version"] == ENVELOPE_VERSION
        assert envelope["kind"] == "compile"
        assert envelope["key"] == "cafe"
        assert envelope["inputs"] == ["a", "b"]  # sorted on write
        assert list(envelope) == sorted(envelope)  # sorted keys on disk
        # checksum covers the canonical payload encoding
        import hashlib
        digest = hashlib.blake2b(digest_size=16)
        digest.update(canonical_json({"x": 1}).encode("utf-8"))
        assert envelope["checksum"] == digest.hexdigest()

    def test_make_key_deterministic_and_distinct(self):
        assert ArtifactStore.make_key("compile", "fp") \
            == ArtifactStore.make_key("compile", "fp")
        assert ArtifactStore.make_key("compile", "fp") \
            != ArtifactStore.make_key("compile", "fq")
        # the joiner byte keeps ("ab","c") and ("a","bc") apart
        assert ArtifactStore.make_key("ab", "c") \
            != ArtifactStore.make_key("a", "bc")

    def test_invalid_kind_and_key_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for bad in ("", "a/b", "a\\b", "a.b"):
            with pytest.raises(StoreError):
                store.load(bad, "key")
            with pytest.raises(StoreError):
                store.load("kind", bad)

    def test_miss_counts_and_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        before = PERF.counter("store.miss")
        assert store.load("compile", "absent") is None
        assert PERF.counter("store.miss") == before + 1
        assert store.graph.nodes == []  # misses are not graph nodes


class TestCorruption:
    """Damage costs a rebuild, never correctness (satellite 3)."""

    def _saved(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("compile", "feed", {"plan": "data"})
        return store, _envelope_path(store, "compile", "feed")

    def test_truncated_envelope_falls_through(self, tmp_path):
        store, path = self._saved(tmp_path)
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        corrupt = PERF.counter("store.corrupt")
        assert store.load("compile", "feed") is None
        assert PERF.counter("store.corrupt") == corrupt + 1
        assert not path.exists()  # evicted so the rebuild replaces it
        store.save("compile", "feed", {"plan": "rebuilt"})
        assert store.load("compile", "feed") == {"plan": "rebuilt"}

    def test_garbled_payload_fails_checksum(self, tmp_path):
        store, path = self._saved(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["payload"] = {"plan": "tampered"}
        path.write_text(json.dumps(envelope))
        corrupt = PERF.counter("store.corrupt")
        assert store.load("compile", "feed") is None
        assert PERF.counter("store.corrupt") == corrupt + 1

    def test_future_version_is_a_clean_miss(self, tmp_path):
        store, path = self._saved(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["version"] = ENVELOPE_VERSION + 1
        path.write_text(json.dumps(envelope))
        assert store.load("compile", "feed") is None

    def test_key_mismatch_detected(self, tmp_path):
        store, path = self._saved(tmp_path)
        other = path.with_name("0feed.json")
        other.write_text(path.read_text())  # file moved to a wrong key
        assert store.load("compile", "0feed") is None
        assert not other.exists()

    def test_not_even_json(self, tmp_path):
        store, path = self._saved(tmp_path)
        path.write_bytes(b"\x00\xffgarbage")
        assert store.load("compile", "feed") is None


class TestConcurrency:
    def test_racing_same_key_writers_leave_a_valid_artifact(self,
                                                            tmp_path):
        store = ArtifactStore(tmp_path)
        payloads = [{"writer": index, "data": list(range(50))}
                    for index in range(8)]
        barrier = threading.Barrier(len(payloads))

        def write(payload):
            barrier.wait()
            for _ in range(20):
                store.save("compile", "contended", payload)

        threads = [threading.Thread(target=write, args=(payload,))
                   for payload in payloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # last writer wins; whoever won, the envelope is whole
        loaded = store.load("compile", "contended")
        assert loaded in payloads
        assert not list(store._tmp.glob("*.tmp"))  # no leaked temps


class TestMaintenance:
    def test_ls_and_info(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("compile", "aa", {"n": 1}, meta={"machine": "m1"})
        store.save("compile", "bb", {"n": 2})
        store.save("codegen", "cc", {"f.vhd": "text"})
        entries = store.ls()
        assert [(e["kind"], e["key"]) for e in entries] \
            == [("codegen", "cc"), ("compile", "aa"), ("compile", "bb")]
        assert entries[1]["meta"] == {"machine": "m1"}
        info = store.info()
        assert info["artifacts"] == 3
        assert info["kinds"]["compile"]["artifacts"] == 2
        assert info["bytes"] > 0

    def test_ls_flags_corruption_instead_of_hiding_it(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("compile", "aa", {"n": 1})
        _envelope_path(store, "compile", "aa").write_text("{broken")
        entries = store.ls("compile")
        assert entries[0].get("corrupt") is True

    def test_gc_everything_and_dry_run(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("compile", "aa", {"n": 1})
        store.save("codegen", "bb", {"n": 2})
        assert sorted(store.gc(dry_run=True)) \
            == [("codegen", "bb"), ("compile", "aa")]
        assert store.info()["artifacts"] == 2  # dry run removed nothing
        removed = store.gc()
        assert len(removed) == 2
        assert store.info()["artifacts"] == 0

    def test_gc_is_lru_because_loads_refresh_mtime(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("compile", "old", {"n": 1})
        store.save("compile", "hot", {"n": 2})
        stale = 1.0  # pretend both were written long ago
        for key in ("old", "hot"):
            os.utime(_envelope_path(store, "compile", key),
                     (stale, stale))
        store.load("compile", "hot")  # a warm hit refreshes its mtime
        removed = store.gc(max_age_s=3600)
        assert removed == [("compile", "old")]
        assert store.load("compile", "hot") == {"n": 2}


class TestActiveStore:
    def test_set_and_restore(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert get_active_store() is None
        previous = set_active_store(store)
        assert previous is None
        assert get_active_store() is store
        set_active_store(None)
        assert get_active_store() is None

    def test_using_store_scopes_activation(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with using_store(store):
            assert get_active_store() is store
        assert get_active_store() is None

    def test_env_auto_activation(self, tmp_path):
        store_mod._ACTIVE = False  # unresolved: the env probe may run
        os.environ[STORE_ENV] = str(tmp_path / "envstore")
        store = get_active_store()
        assert store is not None
        assert store.root == tmp_path / "envstore"
        assert get_active_store() is store  # resolved once, then cached


def registry_model():
    profile = create_soc_profile()
    model = mm.Model("TopSoc")
    cpu = model.add(mm.Component("Cpu"))
    apply_stereotype(cpu, profile.stereotype("IpCore"), vendor="t")
    machine = StateMachine("boot")
    region = machine.region
    region.add_transition(region.add_initial(), region.add_state("Run"))
    cpu.add_behavior(machine, as_classifier_behavior=True)
    return model, profile


class TestModelRegistry:
    def test_register_and_search(self, tmp_path):
        model, profile = registry_model()
        registry = ModelRegistry(ArtifactStore(tmp_path))
        record = registry.register(model, [profile])
        assert record["name"] == "TopSoc"
        assert record["fingerprint"] == model_fingerprint(model)
        machine = model.descendants_of_type(StateMachine)[0]
        assert record["machines"] == {
            "Cpu::boot": element_fingerprint(machine)}
        assert "IpCore" in record["stereotypes"]
        assert registry.search(name="topsoc") == [record]
        assert registry.search(stereotype="ipcore") == [record]
        assert registry.search(profile="SoC") == [record]
        assert registry.search(name="topsoc", stereotype="nosuch") == []

    def test_register_is_idempotent_until_the_model_changes(self,
                                                            tmp_path):
        model, profile = registry_model()
        store = ArtifactStore(tmp_path)
        registry = ModelRegistry(store)
        registry.register(model, [profile])
        registry.register(model, [profile])
        assert len(store.ls("model")) == 1
        model.add(mm.Component("Dsp"))
        registry.register(model, [profile])
        assert len(store.ls("model")) == 2  # edited model, new record


class TestFingerprintCrossProcess:
    """Satellite 2: fingerprints must not embed process-local state."""

    CHILD = (
        "import sys\n"
        "from repro import xmi\n"
        "from repro.metamodel import element_fingerprint, "
        "model_fingerprint\n"
        "from repro.statemachines import StateMachine\n"
        "document = xmi.read_file(sys.argv[1])\n"
        "model = document.model\n"
        "lines = [model_fingerprint(model)]\n"
        "for element in model.all_owned():\n"
        "    if isinstance(element, StateMachine):\n"
        "        lines.append(element_fingerprint(element))\n"
        "print('\\n'.join(lines))\n"
    )

    def test_subprocess_identity(self, tmp_path):
        model, profile = registry_model()
        model_file = tmp_path / "m.xmi"
        xmi.write_file(str(model_file), model, [profile])
        src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH")
            else "")
        outputs = [
            subprocess.run(
                [sys.executable, "-c", self.CHILD, str(model_file)],
                capture_output=True, text=True, env=env, check=True
            ).stdout
            for _ in range(2)]
        assert outputs[0] == outputs[1]
        # and both match this process's view of the same document
        document = xmi.read_file(str(model_file))
        assert outputs[0].splitlines()[0] \
            == model_fingerprint(document.model)

    def test_object_addresses_do_not_leak_into_fingerprints(self):
        class Probe:
            pass  # default repr embeds "at 0x..."

        def build():
            repro.reset_ids()
            model = mm.Model("probe")
            cpu = model.add(mm.Component("Cpu"))
            cpu.hook = Probe()
            return model

        assert model_fingerprint(build()) == model_fingerprint(build())

    def test_set_values_hash_order_free(self):
        def build(tags):
            repro.reset_ids()
            model = mm.Model("probe")
            model.add(mm.Component("Cpu")).tags = tags
            return model

        assert model_fingerprint(build({"a", "b", "c"})) \
            == model_fingerprint(build({"c", "b", "a"}))


class TestStoreCli:
    def _model_file(self, tmp_path):
        from repro.hw import make_memory, make_soc, \
            make_traffic_generator
        model = mm.Model("design")
        package = model.create_package("design")
        cpu = make_traffic_generator("Cpu", period=2.0,
                                     address_range=0x1000)
        ram = make_memory("Ram", size_bytes=0x800)
        make_soc("Soc", masters=[cpu],
                 slaves=[(ram, "bus", 0, 0x800)], package=package)
        path = tmp_path / "soc.xmi"
        xmi.write_file(str(path), model)
        return str(path)

    def test_simulate_store_ls_info_gc(self, tmp_path, capsys):
        from repro.cli import main
        model_file = self._model_file(tmp_path)
        store_dir = str(tmp_path / "store")
        assert main(["simulate", model_file, "--top", "design::Soc",
                     "--until", "20", "--engine", "compiled",
                     "--store", store_dir]) == 0
        capsys.readouterr()

        # simulate --store registered the model + persisted compiles
        assert main(["store", "ls", "--store", store_dir]) == 0
        listing = capsys.readouterr().out
        assert "compile" in listing and "model" in listing

        assert main(["store", "info", "--store", store_dir]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["artifacts"] >= 2
        assert "compile" in info["kinds"]

        # registry query by model name
        assert main(["store", "ls", "--store", store_dir,
                     "--name", "design"]) == 0
        assert "1 model(s) matched" in capsys.readouterr().out

        # dry-run gc removes nothing; real gc empties the store
        assert main(["store", "gc", "--store", store_dir,
                     "--dry-run"]) == 0
        assert "would remove" in capsys.readouterr().out
        assert main(["store", "info", "--store", store_dir]) == 0
        assert json.loads(capsys.readouterr().out)["artifacts"] \
            == info["artifacts"]
        assert main(["store", "gc", "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(["store", "info", "--store", store_dir]) == 0
        assert json.loads(capsys.readouterr().out)["artifacts"] == 0


class TestTransformCacheConfig:
    """Satellite 1: the PR 1 transform LRU is sized and observable."""

    def test_resize_shrink_evicts_lru(self):
        from repro.mda import TransformCache
        cache = TransformCache(max_entries=4)
        for index in range(4):
            cache.store((index,), object())
        evict_before = PERF.counter("transform.cache.evict")
        cache.resize(2)
        assert len(cache) == 2
        assert cache.evictions == 2
        assert PERF.counter("transform.cache.evict") == evict_before + 2
        assert cache.lookup((3,)) is not None  # most recent survived
        assert cache.lookup((0,)) is None

    def test_resize_rejects_nonpositive(self):
        from repro.mda import TransformCache
        with pytest.raises(TransformError):
            TransformCache(4).resize(0)

    def test_hit_miss_counters(self):
        from repro.mda import TransformCache
        cache = TransformCache()
        hits = PERF.counter("transform.cache.hit")
        misses = PERF.counter("transform.cache.miss")
        cache.lookup(("k",))
        cache.store(("k",), object())
        cache.lookup(("k",))
        assert PERF.counter("transform.cache.hit") == hits + 1
        assert PERF.counter("transform.cache.miss") == misses + 1

    def test_env_sizes_the_default_cache(self, monkeypatch):
        from repro.mda.engine import _default_cache_size
        monkeypatch.setenv("REPRO_TRANSFORM_CACHE_SIZE", "7")
        assert _default_cache_size() == 7
        monkeypatch.setenv("REPRO_TRANSFORM_CACHE_SIZE", "not-a-number")
        assert _default_cache_size() == 32
        monkeypatch.setenv("REPRO_TRANSFORM_CACHE_SIZE", "-3")
        assert _default_cache_size() == 32

    def test_configure_default_cache(self):
        from repro.mda import configure_default_cache
        from repro.mda.engine import DEFAULT_TRANSFORM_CACHE
        original = DEFAULT_TRANSFORM_CACHE.max_entries
        try:
            assert configure_default_cache(64) \
                is DEFAULT_TRANSFORM_CACHE
            assert DEFAULT_TRANSFORM_CACHE.max_entries == 64
        finally:
            configure_default_cache(original)
