"""Unit tests for value specifications, data types and enumerations."""

import pytest

import repro.metamodel as mm
from repro.errors import ModelError


class TestLiterals:
    @pytest.mark.parametrize("raw,expected_cls,value", [
        (3, mm.LiteralInteger, 3),
        (2.5, mm.LiteralReal, 2.5),
        (True, mm.LiteralBoolean, True),
        ("hi", mm.LiteralString, "hi"),
        (None, mm.LiteralNull, None),
    ])
    def test_literal_factory(self, raw, expected_cls, value):
        spec = mm.literal(raw)
        assert isinstance(spec, expected_cls)
        assert spec.value() == value

    def test_bool_not_confused_with_int(self):
        assert isinstance(mm.literal(True), mm.LiteralBoolean)
        assert isinstance(mm.literal(1), mm.LiteralInteger)

    def test_existing_spec_passes_through(self):
        spec = mm.LiteralInteger(7)
        assert mm.literal(spec) is spec

    def test_element_becomes_instance_value(self):
        instance = mm.InstanceSpecification("i")
        spec = mm.literal(instance)
        assert isinstance(spec, mm.InstanceValue)
        assert spec.value() is instance

    def test_unsupported_raw_rejected(self):
        with pytest.raises(ModelError):
            mm.literal(object())

    def test_unlimited_natural(self):
        star = mm.LiteralUnlimitedNatural(None)
        assert star.value() is None
        assert "*" in repr(star)
        with pytest.raises(ModelError):
            mm.LiteralUnlimitedNatural(-1)

    def test_opaque_expression(self):
        expr = mm.OpaqueExpression("x + 1", "asl")
        assert expr.value() == "x + 1"
        assert expr.language == "asl"


class TestEnumerations:
    def test_literals_in_order(self):
        enum = mm.Enumeration("Color", ("RED", "GREEN", "BLUE"))
        assert [l.name for l in enum.literals] == ["RED", "GREEN", "BLUE"]

    def test_literal_lookup(self):
        enum = mm.Enumeration("Color", ("RED",))
        assert enum.literal("RED").enumeration is enum

    def test_duplicate_literal_rejected(self):
        enum = mm.Enumeration("Color", ("RED",))
        with pytest.raises(ModelError):
            enum.add_literal("RED")


class TestPrimitives:
    def test_standard_five(self):
        fresh = mm.standard_primitives()
        assert set(fresh) == {"Integer", "Boolean", "String", "Real",
                              "UnlimitedNatural"}

    def test_shared_primitives_are_ownerless(self):
        assert mm.INTEGER.owner is None
        assert mm.INTEGER.name == "Integer"

    def test_conformance_is_identity_for_datatypes(self):
        assert mm.INTEGER.conforms_to(mm.INTEGER)
        assert not mm.INTEGER.conforms_to(mm.REAL)
