"""Deeper semantic coverage: local transitions, completion-style joins,
re-entrant dispatch, run-to-completion chain limits, and cross-cutting
behavior interactions."""

import pytest

import repro.metamodel as mm
from repro.errors import StateMachineError
from repro.statemachines import (
    EventOccurrence,
    PseudostateKind,
    StateMachine,
    StateMachineRuntime,
    TransitionKind,
)


class TestLocalTransitions:
    def _machine(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        comp = region.add_state("Comp", entry="comp_entries = comp_entries + 1;")
        region.add_transition(init, comp)
        inner = comp.add_region()
        i2 = inner.add_initial()
        a = inner.add_state("A")
        b = inner.add_state("B")
        inner.add_transition(i2, a)
        # local self-transition on the composite: restart inner region
        # without exiting/re-entering Comp itself
        region.add_transition(comp, a, trigger="restart",
                              kind=TransitionKind.LOCAL)
        inner.add_transition(a, b, trigger="go")
        return machine

    def test_local_transition_keeps_composite_active(self):
        runtime = StateMachineRuntime(
            self._machine(), context={"comp_entries": 0}).start()
        assert runtime.context["comp_entries"] == 1
        runtime.send("go")
        assert runtime.active_leaf_names() == ("B",)
        runtime.send("restart")
        assert runtime.active_leaf_names() == ("A",)
        # LOCAL: the composite's entry action did NOT run again
        assert runtime.context["comp_entries"] == 1

    def test_external_equivalent_reenters(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        comp = region.add_state("Comp",
                                entry="entries = entries + 1;")
        region.add_transition(init, comp)
        inner = comp.add_region()
        i2 = inner.add_initial()
        a = inner.add_state("A")
        inner.add_transition(i2, a)
        region.add_transition(comp, a, trigger="restart")  # EXTERNAL
        runtime = StateMachineRuntime(machine,
                                      context={"entries": 0}).start()
        runtime.send("restart")
        assert runtime.context["entries"] == 2


class TestCompletionJoin:
    def test_join_with_completion_outgoing(self):
        """A triggerless join fires as soon as all branches arrive."""
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        par = region.add_state("Par")
        done = region.add_state("Done")
        join = region.add_pseudostate(PseudostateKind.JOIN, "join")
        region.add_transition(init, par)
        left_region = par.add_region("l")
        right_region = par.add_region("r")
        li, ri = left_region.add_initial(), right_region.add_initial()
        l1 = left_region.add_state("L1")
        r1 = right_region.add_state("R1")
        l2 = left_region.add_state("L2")
        r2 = right_region.add_state("R2")
        left_region.add_transition(li, l1)
        right_region.add_transition(ri, r1)
        left_region.add_transition(l1, l2, trigger="lgo")
        right_region.add_transition(r1, r2, trigger="rgo")
        region.add_transition(l2, join)
        region.add_transition(r2, join)
        region.add_transition(join, done)  # completion-style outgoing
        runtime = StateMachineRuntime(machine).start()
        runtime.send("lgo")
        assert runtime.in_state("Par")  # join not ready
        runtime.send("rgo")
        # both sides complete; completion event fires the join
        assert runtime.active_leaf_names() == ("Done",)


class TestReentrantDispatch:
    def test_action_sending_to_self_queues(self):
        """send without target during an effect queues a new RTC step."""
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        a = region.add_state("A")
        b = region.add_state("B")
        c = region.add_state("C")
        region.add_transition(init, a)
        region.add_transition(a, b, trigger="kick",
                              effect="send Chain();")
        region.add_transition(b, c, trigger="Chain")
        sink = []

        def route_self(sent):
            runtime.dispatch(EventOccurrence.signal(sent.signal))
        runtime = StateMachineRuntime(machine, signal_sink=route_self)
        runtime.start()
        runtime.send("kick")
        # the Chain send was re-dispatched during the drain and queued
        assert runtime.active_leaf_names() == ("C",)

    def test_livelock_guard_trips(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        a = region.add_state("A")
        b = region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b)   # completion
        region.add_transition(b, a)   # completion: ping-pong forever
        with pytest.raises(StateMachineError):
            StateMachineRuntime(machine, max_chain=100).start()


class TestGuardEvaluationOrder:
    def test_effect_visible_to_downstream_choice(self):
        """Choice guards see variables written by the incoming effect."""
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        idle = region.add_state("Idle")
        pick = region.add_pseudostate(PseudostateKind.CHOICE, "pick")
        even = region.add_state("Even")
        odd = region.add_state("Odd")
        region.add_transition(init, idle)
        region.add_transition(idle, pick, trigger="classify",
                              effect="parity = event.n % 2;")
        region.add_transition(pick, even, guard="parity == 0")
        region.add_transition(pick, odd, guard="else")
        runtime = StateMachineRuntime(machine,
                                      context={"parity": -1}).start()
        runtime.send("classify", n=4)
        assert runtime.in_state("Even")

    def test_guard_exception_propagates(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        a = region.add_state("A")
        b = region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b, trigger="go", guard="missing > 1")
        runtime = StateMachineRuntime(machine).start()
        from repro.errors import AslRuntimeError

        with pytest.raises(AslRuntimeError):
            runtime.send("go")


class TestBehaviorInteroperability:
    def test_machine_and_activity_share_class_context_via_xuml(self):
        """An operation body and a transition effect mutate one state."""
        from repro.xuml import XObject

        cls = mm.UmlClass("Dual", is_active=True)
        cls.add_attribute("total", mm.INTEGER, default=0)
        bump = cls.add_operation("bump", mm.INTEGER)
        bump.add_parameter("by", mm.INTEGER)
        bump.set_body("total = total + by; return total;")
        machine = StateMachine("fsm")
        region = machine.region
        init = region.add_initial()
        s = region.add_state("S")
        region.add_transition(init, s)
        region.add_transition(s, s, trigger="inc",
                              effect="total = total + 1;",
                              kind=TransitionKind.INTERNAL)
        cls.add_behavior(machine, as_classifier_behavior=True)
        obj = XObject(cls)
        obj.call("bump", 10)
        obj.send("inc")
        obj.call("bump", 5)
        assert obj.attributes["total"] == 16
        assert obj.machine_runtime.context["total"] == 16
