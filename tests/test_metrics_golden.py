"""Golden-file pin of the metrics exports (PR 9 satellite).

The Prometheus and JSON renderings are scraped by external pipelines,
so their exact bytes — including the ``# HELP`` headers added in PR 9 —
are a compatibility surface.  These tests compare a fixed registry
snapshot (plus a small coverage report) against checked-in golden
files; a deliberate format change must update ``tests/golden/``.

Regenerate with::

    PYTHONPATH=src python tests/test_metrics_golden.py --regenerate
"""

import json
import pathlib

from repro.engine import STATE_ENTER, TraceBus
from repro.observability import (
    CoverageCollector,
    CoverageModel,
    to_json,
    to_prometheus,
)
from repro.perf import PerfRegistry
from repro.statemachines import StateMachine

GOLDEN = pathlib.Path(__file__).parent / "golden"


def toggle_machine():
    machine = StateMachine("Toggle")
    region = machine.region
    init = region.add_initial()
    off = region.add_state("Off")
    on = region.add_state("On")
    region.add_transition(init, off)
    region.add_transition(off, on, trigger="Go")
    region.add_transition(on, off, trigger="Stop")
    return machine


def fixed_snapshot():
    registry = PerfRegistry()
    registry.incr("alpha.count", 3)
    registry.incr("sim.events", 120)
    registry.observe("beta.wall_s", 0.5)
    registry.observe("beta.wall_s", 1.5)
    registry.hist("gamma.hist", 0.002)
    registry.hist("gamma.hist", 0.004)
    return registry.snapshot()


def fixed_coverage():
    model = CoverageModel(
        [CoverageModel.from_machine("dut", toggle_machine())])
    bus = TraceBus()
    collector = CoverageCollector(model, bus=bus)
    bus.emit(STATE_ENTER, 0.0, "dut", {"state": "Off"})
    return collector.report()


def render_prometheus():
    return to_prometheus(fixed_snapshot(), coverage=fixed_coverage())


def render_json():
    return to_json(fixed_snapshot(), coverage=fixed_coverage())


class TestGoldenMetrics:
    def test_prometheus_matches_golden(self):
        assert render_prometheus() == \
            (GOLDEN / "metrics.prom").read_text()

    def test_json_matches_golden(self):
        assert render_json() == (GOLDEN / "metrics.json").read_text()

    def test_every_family_has_a_help_header(self):
        text = render_prometheus()
        lines = text.splitlines()
        typed = {line.split()[2] for line in lines
                 if line.startswith("# TYPE")}
        helped = {line.split()[2] for line in lines
                  if line.startswith("# HELP")}
        assert typed, "the golden snapshot must produce families"
        assert typed == helped  # one # HELP per # TYPE, no orphans

    def test_help_precedes_type_for_each_family(self):
        lines = render_prometheus().splitlines()
        for index, line in enumerate(lines):
            if line.startswith("# TYPE"):
                family = line.split()[2]
                assert lines[index - 1] == \
                    f"# HELP {family} " + \
                    lines[index - 1].split(" ", 3)[3]
                assert lines[index - 1].startswith(f"# HELP {family} ")

    def test_json_golden_is_valid_and_sorted(self):
        payload = json.loads((GOLDEN / "metrics.json").read_text())
        assert list(payload) == sorted(payload)
        assert payload["perf"]["counters"]["alpha.count"] == 3
        assert payload["coverage"]["total_percent"] > 0


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN.mkdir(exist_ok=True)
        (GOLDEN / "metrics.prom").write_text(render_prometheus())
        (GOLDEN / "metrics.json").write_text(render_json())
        print(f"regenerated golden files under {GOLDEN}")
