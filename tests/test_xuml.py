"""Tests for the xUML object runtime (XObject / XUniverse)."""

import pytest

import repro.metamodel as mm
from repro.errors import ModelError
from repro.statemachines import StateMachine, TransitionKind
from repro.xuml import XObject, XUniverse, XumlError


def build_account_class():
    cls = mm.UmlClass("Account")
    cls.add_attribute("balance", mm.INTEGER, default=0)
    deposit = cls.add_operation("deposit", mm.INTEGER)
    deposit.add_parameter("amount", mm.INTEGER)
    deposit.set_body("balance = balance + amount; return balance;")
    withdraw = cls.add_operation("withdraw", mm.INTEGER)
    withdraw.add_parameter("amount", mm.INTEGER)
    withdraw.set_body("""
        if (amount > balance) { return -1; }
        balance = balance - amount;
        return balance;
    """)
    transfer_in = cls.add_operation("double_deposit", mm.INTEGER)
    transfer_in.add_parameter("amount", mm.INTEGER)
    transfer_in.set_body("deposit(amount); return deposit(amount);")
    return cls


def build_pinger():
    cls = mm.UmlClass("Pinger", is_active=True)
    cls.add_attribute("pings", mm.INTEGER, default=0)
    machine = StateMachine("fsm")
    region = machine.region
    init = region.add_initial()
    alive = region.add_state("Alive")
    region.add_transition(init, alive)
    region.add_transition(
        alive, alive, trigger="Ping",
        effect='pings = pings + 1; send Pong(n=pings) to "peer";',
        kind=TransitionKind.INTERNAL)
    cls.add_behavior(machine, as_classifier_behavior=True)
    return cls


def build_ponger():
    cls = mm.UmlClass("Ponger", is_active=True)
    cls.add_attribute("pongs", mm.INTEGER, default=0)
    cls.add_attribute("max_pongs", mm.INTEGER, default=3)
    machine = StateMachine("fsm")
    region = machine.region
    init = region.add_initial()
    alive = region.add_state("Alive")
    region.add_transition(init, alive)
    region.add_transition(
        alive, alive, trigger="Pong",
        guard="pongs < max_pongs",
        effect='pongs = pongs + 1; send Ping() to "peer";',
        kind=TransitionKind.INTERNAL)
    cls.add_behavior(machine, as_classifier_behavior=True)
    return cls


class TestXObject:
    def test_attributes_from_defaults_and_overrides(self):
        obj = XObject(build_account_class(), balance=100)
        assert obj.attributes == {"balance": 100}

    def test_unknown_initial_attribute_rejected(self):
        with pytest.raises(ModelError):
            XObject(build_account_class(), ghost=1)

    def test_operation_call_mutates_state(self):
        obj = XObject(build_account_class())
        assert obj.call("deposit", 50) == 50
        assert obj.call("deposit", amount=25) == 75
        assert obj.attributes["balance"] == 75

    def test_operation_early_return(self):
        obj = XObject(build_account_class())
        assert obj.call("withdraw", 10) == -1
        assert obj.attributes["balance"] == 0

    def test_operation_calls_operation(self):
        obj = XObject(build_account_class())
        assert obj.call("double_deposit", 10) == 20

    def test_parameters_stay_local(self):
        obj = XObject(build_account_class())
        obj.call("deposit", 5)
        assert "amount" not in obj.attributes

    def test_missing_argument_rejected(self):
        obj = XObject(build_account_class())
        with pytest.raises(XumlError):
            obj.call("deposit")

    def test_duplicate_argument_rejected(self):
        obj = XObject(build_account_class())
        with pytest.raises(XumlError):
            obj.call("deposit", 1, amount=2)

    def test_unknown_operation_rejected(self):
        obj = XObject(build_account_class())
        with pytest.raises(XumlError):
            obj.call("explode")

    def test_inherited_operation_callable(self):
        base = build_account_class()
        derived = mm.UmlClass("Savings")
        derived.add_generalization(base)
        obj = XObject(derived)
        assert obj.call("deposit", 7) == 7

    def test_state_machine_shares_attribute_dict(self):
        obj = XObject(build_pinger())
        obj.send("Ping")
        assert obj.attributes["pings"] == 1
        assert obj.state == ("Alive",)
        assert obj.sent[0].signal == "Pong"

    def test_send_without_machine_rejected(self):
        obj = XObject(build_account_class())
        with pytest.raises(XumlError):
            obj.send("Anything")

    def test_from_instance_specification(self):
        cls = build_account_class()
        instance = mm.InstanceSpecification("acct1", cls)
        instance.set_slot("balance", 500)
        obj = XObject.from_instance(instance)
        assert obj.name == "acct1"
        assert obj.attributes["balance"] == 500


class TestXUniverse:
    def test_ping_pong_converges(self):
        universe = XUniverse()
        pinger = universe.create(build_pinger(), "peer_a")
        ponger = universe.create(build_ponger(), "peer_b")
        # route names: both send to "peer"; register aliases
        universe.objects["peer"] = ponger  # pinger's target
        universe.send("peer_a", "Ping")
        # pinger sends Pong to "peer" -> ponger replies Ping to "peer"
        # which is ponger itself... rebuild with symmetric names instead
        assert universe.delivered >= 1

    def test_symmetric_conversation(self):
        """Two objects ping-pong until the guard stops the loop."""
        pinger_cls = build_pinger()
        ponger_cls = build_ponger()
        universe = XUniverse()
        # name each one "peer" from the other's perspective by making
        # both send to "peer" and registering them under that name:
        # instead, patch effects to explicit names
        a = universe.create(pinger_cls, "a")
        b = universe.create(ponger_cls, "b")
        # rewrite transitions' targets for this test universe
        for obj, target in ((a, "b"), (b, "a")):
            machine = obj.classifier.classifier_behavior
            for transition in machine.all_transitions():
                if isinstance(transition.effect, str):
                    transition.effect = transition.effect.replace(
                        '"peer"', f'"{target}"')
        universe.send("a", "Ping")
        assert a.attributes["pings"] == 4   # initial + 3 replies
        assert b.attributes["pongs"] == 3   # capped by max_pongs guard
        assert universe.delivered == 8

    def test_duplicate_name_rejected(self):
        universe = XUniverse()
        universe.create(build_account_class(), "x")
        with pytest.raises(XumlError):
            universe.create(build_account_class(), "x")

    def test_unknown_target_rejected(self):
        universe = XUniverse()
        universe.create(build_pinger(), "lonely")
        with pytest.raises(XumlError):
            universe.send("lonely", "Ping")  # sends Pong to "peer"

    def test_unknown_external_target(self):
        universe = XUniverse()
        with pytest.raises(XumlError):
            universe.send("ghost", "Ping")

    def test_populate_from_object_diagram(self):
        cls = build_account_class()
        model = mm.Model("m")
        model.add(cls)
        for name, balance in (("a1", 10), ("a2", 20)):
            instance = model.add(mm.InstanceSpecification(name, cls))
            instance.set_slot("balance", balance)
        universe = XUniverse()
        created = universe.populate(model)
        assert len(created) == 2
        assert universe.object("a2").attributes["balance"] == 20

    def test_snapshot(self):
        universe = XUniverse()
        universe.create(build_pinger(), "p")
        assert universe.snapshot() == {"p": ("Alive",)}


class TestInvariantsOnLiveObjects:
    def test_check_object_integration(self):
        from repro.validation import add_invariant, check_object

        cls = build_account_class()
        add_invariant(cls, "balance >= 0", name="non-negative")
        obj = XObject(cls)
        obj.call("deposit", 10)
        assert check_object(obj) == []
        obj.attributes["balance"] = -5
        violations = check_object(obj)
        assert violations and "non-negative" in violations[0]

    def test_inherited_invariants_apply(self):
        from repro.validation import add_invariant, check_object

        base = build_account_class()
        add_invariant(base, "balance >= 0")
        derived = mm.UmlClass("Checking")
        derived.add_generalization(base)
        obj = XObject(derived)
        obj.attributes["balance"] = -1
        assert check_object(obj)
