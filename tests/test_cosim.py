"""Tests for the cosimulation harness executing UML component models."""

import pytest

import repro.metamodel as mm
from repro.errors import SimulationError
from repro.simulation import SystemSimulation
from repro.statemachines import StateMachine, TransitionKind


def make_echo(name="Echo"):
    """A component that replies Pong(n) on port 'out' to Ping(n)."""
    comp = mm.Component(name)
    comp.add_port("in", direction=mm.PortDirection.IN)
    comp.add_port("out", direction=mm.PortDirection.OUT)
    comp.add_attribute("count", mm.INTEGER, default=0)
    machine = StateMachine(f"{name}Fsm")
    region = machine.region
    init = region.add_initial()
    ready = region.add_state("Ready")
    region.add_transition(init, ready)
    region.add_transition(
        ready, ready, trigger="Ping",
        effect='count = count + 1; send Pong(n=event.n) to "out";',
        kind=TransitionKind.INTERNAL)
    comp.add_behavior(machine, as_classifier_behavior=True)
    return comp


def make_collector(name="Collector"):
    comp = mm.Component(name)
    comp.add_port("rx", direction=mm.PortDirection.IN)
    machine = StateMachine(f"{name}Fsm")
    region = machine.region
    init = region.add_initial()
    listen = region.add_state("Listen")
    region.add_transition(init, listen)
    region.add_transition(listen, listen, trigger="Pong",
                          effect="got = got + [event.n];",
                          kind=TransitionKind.INTERNAL)
    comp.add_behavior(machine, as_classifier_behavior=True)
    return comp


def build_pair():
    top = mm.Component("Top")
    echo = make_echo()
    collector = make_collector()
    p_echo = top.add_part("echo", echo)
    p_col = top.add_part("col", collector)
    top.connect(echo.port("out"), collector.port("rx"),
                p_echo, p_col, check=False)
    return top


class TestBasics:
    def test_parts_instantiated_and_started(self):
        sim = SystemSimulation(build_pair())
        assert set(sim.parts) == {"echo", "col"}
        assert sim.state_snapshot() == {"col": ("Listen",),
                                        "echo": ("Ready",)}

    def test_empty_top_rejected(self):
        with pytest.raises(SimulationError):
            SystemSimulation(mm.Component("Empty"))

    def test_attribute_defaults_seed_context(self):
        sim = SystemSimulation(build_pair())
        assert sim.context_of("echo")["count"] == 0

    def test_explicit_context_overrides(self):
        sim = SystemSimulation(build_pair(),
                               context={"echo": {"count": 100}})
        assert sim.context_of("echo")["count"] == 100

    def test_unknown_part_send_rejected(self):
        sim = SystemSimulation(build_pair())
        with pytest.raises(SimulationError):
            sim.send("ghost", "Ping")


class TestMessageFlow:
    def test_signal_routes_through_connector(self):
        sim = SystemSimulation(build_pair(),
                               context={"col": {"got": []}})
        sim.send("echo", "Ping", n=1)
        sim.send("echo", "Ping", n=2, delay=1.0)
        sim.run(until=10.0)
        assert sim.context_of("echo")["count"] == 2
        assert sim.context_of("col")["got"] == [1, 2]

    def test_latency_applied(self):
        sim = SystemSimulation(build_pair(), default_latency=5.0,
                               context={"col": {"got": []}}, trace=True)
        sim.send("echo", "Ping", n=9)
        sim.run(until=20.0)
        delivery_times = [t for t, label in sim.trace
                          if label.startswith("Pong")]
        assert delivery_times == [5.0]  # injected at 0, one 5.0 hop

    def test_unconnected_port_send_drops_by_default(self):
        top = mm.Component("Top")
        lonely = make_echo("Lonely")
        top.add_part("lonely", lonely)
        sim = SystemSimulation(top)
        sim.send("lonely", "Ping", n=1)
        sim.run(until=5.0)
        assert sim.messages_dropped == 1

    def test_unconnected_port_send_raises_in_strict_mode(self):
        top = mm.Component("Top")
        lonely = make_echo("Lonely")
        top.add_part("lonely", lonely)
        sim = SystemSimulation(top, strict_routing=True)
        sim.send("lonely", "Ping", n=1)
        with pytest.raises(SimulationError):
            sim.run(until=5.0)

    def test_self_send_without_target(self):
        comp = mm.Component("Selfish")
        comp.add_attribute("n", mm.INTEGER, default=0)
        machine = StateMachine("fsm")
        region = machine.region
        init = region.add_initial()
        a = region.add_state("A")
        b = region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b, trigger="kick",
                              effect="send Internal();")
        region.add_transition(b, b, trigger="Internal",
                              effect="n = n + 1;",
                              kind=TransitionKind.INTERNAL)
        comp.add_behavior(machine, as_classifier_behavior=True)
        top = mm.Component("Top")
        top.add_part("s", comp)
        sim = SystemSimulation(top)
        sim.send("s", "kick")
        sim.run(until=5.0)
        assert sim.context_of("s")["n"] == 1

    def test_messages_counted(self):
        sim = SystemSimulation(build_pair(),
                               context={"col": {"got": []}})
        sim.send("echo", "Ping", n=1)
        sim.run(until=10.0)
        assert sim.messages_delivered == 2  # Ping in + Pong across


class TestTimeIntegration:
    def test_state_machine_timers_advance_with_simulation(self):
        comp = mm.Component("Beeper")
        comp.add_attribute("beeps", mm.INTEGER, default=0)
        machine = StateMachine("fsm")
        region = machine.region
        init = region.add_initial()
        beat = region.add_state("Beat")
        region.add_transition(init, beat)
        region.add_transition(beat, beat, after=10.0,
                              effect="beeps = beeps + 1;")
        comp.add_behavior(machine, as_classifier_behavior=True)
        top = mm.Component("Top")
        top.add_part("beeper", comp)
        sim = SystemSimulation(top, quantum=1.0)
        sim.run(until=35.0)
        assert sim.context_of("beeper")["beeps"] == 3

    def test_delegated_port_input(self):
        top = mm.Component("Top")
        echo = make_echo()
        part = top.add_part("echo", echo)
        outer = top.add_port("ext", direction=mm.PortDirection.IN)
        top.delegate(outer, echo.port("in"), part)
        collector = make_collector()
        p_col = top.add_part("col", collector)
        top.connect(echo.port("out"), collector.port("rx"),
                    part, p_col, check=False)
        sim = SystemSimulation(top, context={"col": {"got": []}})
        sim.send_to_port("ext", "Ping", n=5)
        sim.run(until=10.0)
        assert sim.context_of("col")["got"] == [5]
        with pytest.raises(SimulationError):
            sim.send_to_port("ghost", "Ping")
