"""Tests for the ASL parser and unparser."""

import pytest

from repro import asl
from repro.errors import AslSyntaxError


def first(source):
    return asl.parse(source).body[0]


class TestExpressions:
    def test_precedence(self):
        expr = asl.parse_expression("1 + 2 * 3")
        assert isinstance(expr, asl.Binary)
        assert expr.op == "+"
        assert isinstance(expr.right, asl.Binary)
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = asl.parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_left_associativity(self):
        expr = asl.parse_expression("10 - 4 - 3")
        assert expr.op == "-"
        assert isinstance(expr.left, asl.Binary)
        assert expr.left.op == "-"

    def test_logic_precedence(self):
        expr = asl.parse_expression("a or b and c")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_unary(self):
        expr = asl.parse_expression("not -x")
        assert expr.op == "not"
        assert expr.operand.op == "-"

    def test_postfix_chain(self):
        expr = asl.parse_expression("obj.items[0].name")
        assert isinstance(expr, asl.Attribute)
        assert expr.name == "name"
        assert isinstance(expr.target, asl.Index)

    def test_call_with_args(self):
        expr = asl.parse_expression("min(a, b + 1)")
        assert isinstance(expr, asl.Call)
        assert len(expr.arguments) == 2

    def test_list_and_dict_literals(self):
        assert asl.parse_expression("[1, 2]") == asl.ListLiteral(
            (asl.Literal(1), asl.Literal(2)))
        expr = asl.parse_expression("{1: 2}")
        assert isinstance(expr, asl.DictLiteral)

    def test_expression_must_consume_input(self):
        with pytest.raises(AslSyntaxError):
            asl.parse_expression("a b")


class TestStatements:
    def test_assignment_targets(self):
        assert isinstance(first("x = 1;").target, asl.Name)
        assert isinstance(first("a.b = 1;").target, asl.Attribute)
        assert isinstance(first("a[0] = 1;").target, asl.Index)

    def test_invalid_assignment_target(self):
        with pytest.raises(AslSyntaxError):
            asl.parse("f() = 1;")

    def test_if_elif_else_desugars(self):
        stmt = first("if (a) { x = 1; } elif (b) { x = 2; } else { x = 3; }")
        assert isinstance(stmt, asl.If)
        nested = stmt.else_body[0]
        assert isinstance(nested, asl.If)
        assert nested.else_body  # the final else

    def test_while_and_for(self):
        loop = first("while (x < 3) { x = x + 1; }")
        assert isinstance(loop, asl.While)
        iteration = first("for i in range(3) { s = s + i; }")
        assert isinstance(iteration, asl.For)
        assert iteration.variable == "i"

    def test_send_forms(self):
        plain = first("send Reset();")
        assert plain.signal == "Reset"
        assert plain.target is None
        targeted = first('send Data(v=1, k=2) to "port";')
        assert [k for k, _ in targeted.arguments] == ["v", "k"]
        assert targeted.target == asl.Literal("port")

    def test_return_break_continue(self):
        assert first("return;").value is None
        assert first("return 4;").value == asl.Literal(4)
        assert isinstance(first("break;"), asl.Break)
        assert isinstance(first("continue;"), asl.Continue)

    def test_var_keyword_accepted(self):
        stmt = first("var x = 3;")
        assert isinstance(stmt, asl.Assign)

    def test_missing_semicolon(self):
        with pytest.raises(AslSyntaxError):
            asl.parse("x = 1")

    def test_unterminated_block(self):
        with pytest.raises(AslSyntaxError):
            asl.parse("if (a) { x = 1;")


class TestUnparseRoundTrip:
    SNIPPETS = [
        "x = 1;",
        "x = a + b * c - d / e % f;",
        "y = not (a and b) or c;",
        "z = obj.field[2](1, 2);",
        "l = [1, 2, [3]];",
        "d = {1: 2, k: v};",
        'if (x > 0) { y = 1; } else { y = 2; }',
        "while (x < 10) { x = x + 1; if (x == 5) { break; } }",
        "for item in things { total = total + item; continue; }",
        'send Sig(a=1) to "p";',
        "return a >= b;",
        'if (a) { b = 1; } elif (c) { b = 2; } else { b = 3; }',
        's = "quoted \\"text\\"";',
    ]

    @pytest.mark.parametrize("snippet", SNIPPETS)
    def test_round_trip(self, snippet):
        tree = asl.parse(snippet)
        assert asl.parse(asl.unparse(tree)) == tree

    def test_unparse_expression_minimal_parens(self):
        expr = asl.parse_expression("a + b * c")
        assert asl.unparse_expression(expr) == "a + b * c"
        expr2 = asl.parse_expression("(a + b) * c")
        assert asl.unparse_expression(expr2) == "(a + b) * c"
