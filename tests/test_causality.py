"""Causal span tracing (PR 9): provenance trees over the TraceBus.

A three-part relay (an external ``Go`` into part *a* triggers a ``Hop``
into *b*, which triggers a ``Land`` into *c*) exercises the whole
causal chain: delivery -> event dispatch -> transition -> routed send
-> next delivery, across three parts.  :meth:`CausalIndex.why` must
return that chain root-first; :meth:`CausalIndex.slice` must compute
the backward/forward causal cones of one part; and the span/Perfetto
exporters must be pure functions of the stream.
"""

import json

import pytest

import repro.metamodel as mm
from repro.engine import TraceBus, TraceEvent
from repro.errors import SimulationError
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.observability import (
    CausalIndex,
    event_label,
    perfetto_json,
    span_lines,
    spans_from_jsonl,
)
from repro.simulation import SystemSimulation
from repro.statemachines import StateMachine, TransitionKind


def relay_component(name, trigger, emit=None):
    """A part that counts ``trigger`` and optionally forwards ``emit``."""
    part = mm.Component(name)
    part.add_attribute("hops", mm.INTEGER, default=0)
    part.add_port("in", direction=mm.PortDirection.IN)
    if emit:
        part.add_port("out", direction=mm.PortDirection.OUT)
    machine = StateMachine(f"{name}Behavior")
    region = machine.region
    init = region.add_initial()
    idle = region.add_state("Idle")
    region.add_transition(init, idle)
    effect = "hops = hops + 1;"
    if emit:
        effect += f' send {emit}() to "out";'
    region.add_transition(idle, idle, trigger=trigger, effect=effect,
                          kind=TransitionKind.INTERNAL)
    part.add_behavior(machine, as_classifier_behavior=True)
    return part


def relay_top():
    a = relay_component("A", "Go", emit="Hop")
    b = relay_component("B", "Hop", emit="Land")
    c = relay_component("C", "Land")
    top = mm.Component("Relay")
    pa = top.add_part("a", a)
    pb = top.add_part("b", b)
    pc = top.add_part("c", c)
    top.connect(a.port("out"), b.port("in"), pa, pb, check=False)
    top.connect(b.port("out"), c.port("in"), pb, pc, check=False)
    return top


def run_relay():
    sim = SystemSimulation(relay_top(), causality=True)
    with sim:
        sim.send("a", "Go", delay=1.0)
        sim.run(until=20.0)
        return sim.observability.causal


def soc_top():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    return make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)])


class TestWhyChain:
    @pytest.fixture(scope="class")
    def causal(self):
        return run_relay()

    def landing(self, causal):
        delivered = [event for event in causal.events
                     if event.kind == "message_delivered"
                     and event.part == "c"]
        assert len(delivered) == 1
        return delivered[0]

    def test_full_chain_spans_three_parts(self, causal):
        chain = causal.why(self.landing(causal).ordinal)
        assert [event.kind for event in chain] == [
            "message_delivered", "event", "transition",  # a: Go
            "message_routed",                            # a -> b: Hop
            "message_delivered", "event", "transition",  # b: Hop
            "message_routed",                            # b -> c: Land
            "message_delivered",                         # c: Land
        ]
        assert [event.part for event in chain] == \
            ["a", "a", "a", "a", "b", "b", "b", "b", "c"]

    def test_root_is_the_causeless_external_stimulus(self, causal):
        chain = causal.why(self.landing(causal).ordinal)
        root = chain[0]
        assert "cause" not in root.data  # external sends root the tree
        assert root.data["signal"] == "Go"
        assert root.ordinal in causal.roots()

    def test_chain_links_are_exact(self, causal):
        chain = causal.why(self.landing(causal).ordinal)
        assert chain[-1] is self.landing(causal)
        for parent, child in zip(chain, chain[1:]):
            assert child.data["cause"] == parent.ordinal

    def test_descendants_of_the_root_cover_the_chain(self, causal):
        chain = causal.why(self.landing(causal).ordinal)
        downstream = causal.descendants(chain[0].ordinal)
        assert set(e.ordinal for e in chain[1:]) <= set(downstream)

    def test_slice_cones_of_the_middle_part(self, causal):
        cones = causal.slice("b")
        # own: Idle entry + delivered/event/transition/routed for Hop
        assert len(cones["events"]) == 5
        # backward: the whole a-side chain that led into b
        assert len(cones["backward"]) == 4
        # forward: delivered/event/transition for Land at c
        assert len(cones["forward"]) == 3
        assert not set(cones["events"]) & set(cones["backward"])
        assert not set(cones["events"]) & set(cones["forward"])
        assert all(causal.event(o).part == "a"
                   for o in cones["backward"])
        assert all(causal.event(o).part == "c"
                   for o in cones["forward"])

    def test_edge_counts_expose_cross_part_hops(self, causal):
        edges = causal.edge_counts()
        assert edges["parts"]["a->b"] == 1
        assert edges["parts"]["b->c"] == 1
        assert edges["kinds"]["message_delivered->event"] >= 3
        assert list(edges["kinds"]) == sorted(edges["kinds"])


class TestIndexMechanics:
    def test_attach_flips_causal_and_close_restores(self):
        bus = TraceBus()
        assert bus.causal is False
        index = CausalIndex(bus)
        assert bus.causal is True
        assert bus.subscriber_count == 1
        index.close()
        assert bus.causal is False
        assert bus.subscriber_count == 0

    def test_emits_are_stamped_while_attached(self):
        bus = TraceBus()
        index = CausalIndex(bus)
        root = bus.emit("event", 1.0, "p", {"event": "E"})
        bus.cause = root.ordinal
        child = bus.emit("transition", 1.0, "p", {"event": "E"})
        assert child.data["cause"] == root.ordinal
        assert index.counts() == (2, 1)  # folds the lazy maps
        assert index.parent[child.ordinal] == root.ordinal
        assert index.children[root.ordinal] == [child.ordinal]

    def test_keep_events_false_keeps_edges_only(self):
        bus = TraceBus()
        index = CausalIndex(bus, keep_events=False)
        root = bus.emit("event", 1.0, "p", {"event": "E"})
        bus.cause = root.ordinal
        bus.emit("transition", 1.0, "q", {"event": "E"})
        assert index.events == []
        assert index.edge_counts()["parts"] == {"p->q": 1}
        with pytest.raises(SimulationError):
            index.event(root.ordinal)

    def test_unknown_ordinal_rejected(self):
        bus = TraceBus()
        index = CausalIndex(bus)
        bus.emit("event", 1.0, "p", {"event": "E"})
        with pytest.raises(SimulationError):
            index.event(999)

    def test_cycle_guard_terminates_why(self):
        bus = TraceBus()
        index = CausalIndex(bus)
        first = bus.emit("event", 1.0, "p", {"event": "E"})
        bus.cause = first.ordinal
        second = bus.emit("event", 2.0, "p", {"event": "F"})
        # forge a cycle (cannot happen from the engines; the walk must
        # still terminate)
        index.parent[first.ordinal] = second.ordinal
        chain = index.why(second.ordinal)
        assert len(chain) == 2


class TestCheckpointRestore:
    def test_replayed_spans_are_byte_identical(self):
        with SystemSimulation(soc_top(), causality=True) as sim:
            causal = sim.observability.causal
            sim.run(until=30.0)
            snap = sim.checkpoint()
            cut = len(causal.events)
            sim.run(until=60.0)
            first = causal.span_lines()[cut:]
            first_edges = causal.edge_counts()
            sim.restore(snap)
            assert len(causal.events) == cut
            sim.run(until=60.0)
            second = causal.span_lines()[cut:]
        assert first, "the replayed segment must not be empty"
        assert first == second
        assert causal.edge_counts() == first_edges

    def test_restore_drops_edges_past_the_boundary(self):
        bus = TraceBus()
        index = CausalIndex(bus)
        root = bus.emit("event", 1.0, "p", {"event": "E"})
        snap = index.checkpoint()
        bus_snap = bus.checkpoint()
        bus.cause = root.ordinal
        bus.emit("transition", 1.0, "q", {"event": "E"})
        assert index.counts() == (2, 1)
        index.restore(snap)
        bus.restore(bus_snap)
        assert index.counts() == (1, 0)  # refolded from the survivors
        assert index.parent == {}
        assert index.children == {}
        assert index.part_edges == {}
        assert len(index.events) == 1

    def test_suite_summary_reports_causal_numbers(self):
        with SystemSimulation(relay_top(), causality=True) as sim:
            sim.send("a", "Go", delay=1.0)
            sim.run(until=20.0)
            summary = sim.observability.summary()
        assert summary["causal_records"] > 0
        assert summary["causal_edges"] > 0


class TestExporters:
    def events(self):
        bus = TraceBus()
        index = CausalIndex(bus)
        bus.emit("message_delivered", 1.0, "a", {"signal": "Go"})
        bus.cause = 1
        bus.emit("event", 1.0, "a", {"event": "Go"})
        bus.cause = 2
        bus.emit("message_routed", 1.0, "a",
                 {"signal": "Hop", "to": "b"})
        bus.cause = 3
        bus.emit("message_delivered", 2.0, "b", {"signal": "Hop"})
        return index.events

    def test_span_lines_schema(self):
        lines = span_lines(self.events())
        spans = spans_from_jsonl(lines)
        assert [span["ordinal"] for span in spans] == [1, 2, 3, 4]
        assert spans[0]["cause"] is None
        assert spans[0]["children"] == [2]
        assert spans[1]["cause"] == 1
        assert spans[3]["label"] == "message_delivered:Hop"
        for line in lines:
            assert list(json.loads(line)) == \
                sorted(json.loads(line))  # sorted keys, stable bytes

    def test_span_lines_is_a_pure_function(self):
        events = self.events()
        assert span_lines(events) == span_lines(events)
        assert span_lines(events) == span_lines(list(events))

    def test_perfetto_structure(self):
        text = perfetto_json(self.events())
        payload = json.loads(text)
        assert payload["displayTimeUnit"] == "ms"
        records = payload["traceEvents"]
        names = [(r["ph"], r.get("name")) for r in records]
        assert ("M", "process_name") in names
        threads = [r for r in records if r.get("name") == "thread_name"]
        assert [t["args"]["name"] for t in threads] == ["a", "b"]
        instants = [r for r in records if r["ph"] == "i"]
        assert len(instants) == 4
        assert instants[0]["ts"] == 1000.0  # 1 unit -> 1 ms
        # exactly one cross-part causal edge -> one s/f flow pair
        flows = [r for r in records if r["ph"] in ("s", "f")]
        assert [f["ph"] for f in flows] == ["s", "f"]
        assert flows[0]["id"] == flows[1]["id"] == 4

    def test_perfetto_excludes_volatile_text(self):
        bus = TraceBus()
        index = CausalIndex(bus)
        bus.emit("part_restored", 3.0, "p",
                 {"reason": "engine-worded detail", "snapshot_t": 1.0})
        payload = json.loads(perfetto_json(index.events))
        instant = [r for r in payload["traceEvents"]
                   if r["ph"] == "i"][0]
        assert "reason" not in instant["args"]
        assert instant["args"]["snapshot_t"] == 1.0

    def test_event_label_prefers_payload_detail(self):
        event = TraceEvent(1, 0.0, "message_routed", "a",
                           {"signal": "Hop"})
        assert event_label(event) == "message_routed:Hop"
        bare = TraceEvent(2, 0.0, "checkpoint", "", {})
        assert event_label(bare) == "checkpoint"
        # free-text error wording never reaches a label
        noisy = TraceEvent(3, 0.0, "part_restored", "p",
                           {"reason": "worded differently per engine"})
        assert event_label(noisy) == "part_restored"
