"""The dogfooded job lifecycle (PR 10): the service's job protocol is
one of our own state machines — validated, flattened, compiled, and
guarded — so illegal transitions are structurally impossible."""

import pytest

from repro.errors import ServiceError
from repro.service import (
    DEFAULT_LEASE_BUDGET,
    JOB_EVENTS,
    JOB_STATES,
    TERMINAL_STATES,
    JobLifecycle,
    build_job_lifecycle,
)
from repro.service.lifecycle import LEASED_STATES, RECOVERABLE_STATES


class TestMachineStructure:
    def test_validates(self):
        build_job_lifecycle().validate()

    def test_flattens(self):
        from repro.statemachines.flatten import flatten

        # budget 0 routes expire to quarantined, making every state
        # reachable within one flattening pass
        table = flatten(build_job_lifecycle(), context={"budget": 0})
        leaves = {leaf for label in table.state_labels.values()
                  for leaf in label}
        assert set(JOB_STATES) <= leaves

    def test_compiles(self):
        from repro.statemachines.flatten import compile_fallback_reason

        assert compile_fallback_reason(build_job_lifecycle()) is None

    def test_every_event_has_an_edge(self):
        machine = build_job_lifecycle()
        triggers = {event.name for t in machine.region.transitions
                    for event in t.triggers}
        assert triggers == set(JOB_EVENTS)

    def test_terminal_states_have_no_exits(self):
        machine = build_job_lifecycle()
        for transition in machine.region.transitions:
            source = getattr(transition.source, "name", "")
            assert source not in TERMINAL_STATES


class TestHappyPath:
    def test_cold_run(self):
        lifecycle = JobLifecycle()
        assert lifecycle.state == "queued"
        for event, state in (("lease", "leased"), ("start", "running"),
                             ("complete", "merging"),
                             ("publish", "done")):
            assert lifecycle.signal(event) == state
        assert lifecycle.terminal

    def test_cache_hit_goes_straight_to_done(self):
        lifecycle = JobLifecycle()
        assert lifecycle.signal("hit") == "done"
        assert lifecycle.budget == DEFAULT_LEASE_BUDGET

    def test_attempt_counting_is_the_daemons_job(self):
        # the machine carries only the budget; leases are counted by
        # the Job row, so replay can't double-count
        lifecycle = JobLifecycle(budget=2)
        lifecycle.signal("lease")
        assert lifecycle.budget == 2  # lease itself never spends budget


class TestIllegalTransitions:
    @pytest.mark.parametrize("event", ["publish", "complete", "start",
                                       "expire", "fail"])
    def test_not_enabled_from_queued(self, event):
        lifecycle = JobLifecycle()
        with pytest.raises(ServiceError):
            lifecycle.signal(event)
        assert lifecycle.state == "queued"  # refusal left it untouched

    def test_terminal_jobs_are_frozen(self):
        lifecycle = JobLifecycle()
        lifecycle.signal("hit")
        for event in JOB_EVENTS:
            with pytest.raises(ServiceError):
                lifecycle.signal(event)

    def test_unknown_event(self):
        with pytest.raises(ServiceError):
            JobLifecycle().signal("teleport")

    def test_can_mirrors_signal(self):
        lifecycle = JobLifecycle()
        lifecycle.signal("lease")
        for event in JOB_EVENTS:
            if lifecycle.can(event):
                probe = JobLifecycle()
                probe.signal("lease")
                probe.signal(event)  # must not raise
            else:
                with pytest.raises(ServiceError):
                    probe = JobLifecycle()
                    probe.signal("lease")
                    probe.signal(event)


class TestRetryBudget:
    @pytest.mark.parametrize("origin_events", [("lease",),
                                               ("lease", "start"),
                                               ("lease", "start",
                                                "complete")])
    def test_expire_requeues_while_budget_lasts(self, origin_events):
        lifecycle = JobLifecycle(budget=2)
        for event in origin_events:
            lifecycle.signal(event)
        assert lifecycle.signal("expire") == "queued"
        assert lifecycle.budget == 1

    def test_exhausted_budget_quarantines(self):
        lifecycle = JobLifecycle(budget=1)
        lifecycle.signal("lease")
        assert lifecycle.signal("expire") == "queued"
        lifecycle.signal("lease")
        assert lifecycle.signal("expire") == "quarantined"
        assert lifecycle.terminal

    def test_zero_budget_quarantines_immediately(self):
        lifecycle = JobLifecycle(budget=0)
        lifecycle.signal("lease")
        assert lifecycle.signal("expire") == "quarantined"

    def test_negative_budget_rejected(self):
        with pytest.raises(ServiceError):
            JobLifecycle(budget=-1)

    def test_fail_is_never_retried(self):
        lifecycle = JobLifecycle(budget=3)
        lifecycle.signal("lease")
        assert lifecycle.signal("fail") == "failed"
        assert lifecycle.budget == 3  # deterministic error: no spend


class TestCancel:
    @pytest.mark.parametrize("path", [(), ("lease",), ("lease", "start"),
                                      ("lease", "start", "complete")])
    def test_cancellable_from_every_live_state(self, path):
        lifecycle = JobLifecycle()
        for event in path:
            lifecycle.signal(event)
        assert lifecycle.signal("cancel") == "cancelled"


class TestReplayTolerance:
    def test_replay_applies_enabled_events(self):
        lifecycle = JobLifecycle()
        assert lifecycle.replay("lease") is True
        assert lifecycle.state == "leased"

    def test_replay_skips_stale_events(self):
        lifecycle = JobLifecycle()
        lifecycle.signal("hit")
        # the shadow a torn tail casts: events for a state we never
        # reconstructed must be skipped, not raised
        assert lifecycle.replay("publish") is False
        assert lifecycle.replay("lease") is False
        assert lifecycle.state == "done"

    def test_replay_is_idempotent(self):
        events = ["lease", "start", "complete", "publish"]
        once = JobLifecycle()
        for event in events:
            once.replay(event)
        twice = JobLifecycle()
        for event in events + events:
            twice.replay(event)
        assert once.snapshot() == twice.snapshot()


class TestSnapshots:
    @pytest.mark.parametrize("state", JOB_STATES)
    def test_round_trip_every_state(self, state):
        budget = 0 if state == "quarantined" else 2
        restored = JobLifecycle.from_snapshot(
            {"state": state, "budget": budget})
        assert restored.state == state
        assert restored.budget == budget

    def test_unknown_state_rejected(self):
        with pytest.raises(ServiceError):
            JobLifecycle.from_snapshot({"state": "limbo"})

    def test_quarantined_snapshot_pins_budget(self):
        # a hand-edited snapshot claiming budget is left must still
        # land in quarantined, not silently requeue
        restored = JobLifecycle.from_snapshot(
            {"state": "quarantined", "budget": 5})
        assert restored.state == "quarantined"
        assert restored.budget == 0

    def test_state_sets_are_consistent(self):
        assert LEASED_STATES < RECOVERABLE_STATES
        assert not (RECOVERABLE_STATES & TERMINAL_STATES)
        assert set(JOB_STATES) == \
            RECOVERABLE_STATES | TERMINAL_STATES | {"queued"}
