"""Unit tests for the metamodel root: Element, ownership, Multiplicity."""

import pytest

import repro.metamodel as mm
from repro.errors import ModelError
from repro.metamodel.element import Element


class TestOwnership:
    def test_own_sets_owner_and_child_list(self):
        parent, child = Element(), Element()
        parent._own(child)
        assert child.owner is parent
        assert parent.owned_elements == (child,)

    def test_single_owner_enforced(self):
        first, second, child = Element(), Element(), Element()
        first._own(child)
        with pytest.raises(ModelError):
            second._own(child)

    def test_self_ownership_rejected(self):
        element = Element()
        with pytest.raises(ModelError):
            element._own(element)

    def test_ownership_cycle_rejected(self):
        grandparent, parent, child = Element(), Element(), Element()
        grandparent._own(parent)
        parent._own(child)
        with pytest.raises(ModelError):
            child._own(grandparent)

    def test_disown_releases(self):
        parent, child = Element(), Element()
        parent._own(child)
        parent._disown(child)
        assert child.owner is None
        assert parent.owned_elements == ()

    def test_disown_requires_current_owner(self):
        parent, stranger, child = Element(), Element(), Element()
        parent._own(child)
        with pytest.raises(ModelError):
            stranger._disown(child)

    def test_root_walks_to_top(self):
        a, b, c = Element(), Element(), Element()
        a._own(b)
        b._own(c)
        assert c.root() is a
        assert a.root() is a

    def test_owner_chain_order(self):
        a, b, c = Element(), Element(), Element()
        a._own(b)
        b._own(c)
        assert list(c.owner_chain()) == [b, a]

    def test_all_owned_preorder(self):
        a, b, c, d = Element(), Element(), Element(), Element()
        a._own(b)
        b._own(c)
        a._own(d)
        assert list(a.all_owned()) == [b, c, d]

    def test_owned_of_type_filters(self):
        pkg = mm.Package("p")
        cls = pkg.add(mm.UmlClass("C"))
        pkg.add(mm.Interface("I"))
        assert pkg.owned_of_type(mm.UmlClass) == (cls,)

    def test_descendants_of_type_recurses(self):
        model = mm.Model("m")
        inner = model.create_package("inner")
        cls = inner.add(mm.UmlClass("C"))
        assert model.descendants_of_type(mm.UmlClass) == (cls,)


class TestComments:
    def test_add_comment(self):
        element = Element()
        comment = element.add_comment("a note")
        assert comment.body == "a note"
        assert element.comments == (comment,)
        assert comment.owner is element

    def test_comment_repr_truncates(self):
        comment = mm.Comment("x" * 50)
        assert "..." in repr(comment)


class TestMultiplicity:
    @pytest.mark.parametrize("text,lower,upper", [
        ("1", 1, 1),
        ("0..1", 0, 1),
        ("*", 0, None),
        ("2..*", 2, None),
        ("3..7", 3, 7),
    ])
    def test_parse(self, text, lower, upper):
        multiplicity = mm.Multiplicity.parse(text)
        assert multiplicity.lower == lower
        assert multiplicity.upper == upper

    def test_parse_round_trips_through_str(self):
        for text in ("1", "0..1", "*", "2..*", "3..7", "0..4"):
            assert str(mm.Multiplicity.parse(text)) == text

    def test_accepts_bounds(self):
        multiplicity = mm.Multiplicity.parse("1..3")
        assert not multiplicity.accepts(0)
        assert multiplicity.accepts(1)
        assert multiplicity.accepts(3)
        assert not multiplicity.accepts(4)

    def test_unlimited_accepts_any_above_lower(self):
        multiplicity = mm.Multiplicity.parse("2..*")
        assert not multiplicity.accepts(1)
        assert multiplicity.accepts(2_000_000)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ModelError):
            mm.Multiplicity(3, 1)
        with pytest.raises(ModelError):
            mm.Multiplicity(-1, 1)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            mm.ONE.lower = 5

    def test_equality_and_hash(self):
        assert mm.Multiplicity(0, None) == mm.MANY
        assert hash(mm.Multiplicity(1, 1)) == hash(mm.ONE)
        assert mm.Multiplicity(1, 2) != mm.Multiplicity(1, 3)

    def test_is_collection(self):
        assert mm.MANY.is_collection
        assert mm.Multiplicity(0, 2).is_collection
        assert not mm.ONE.is_collection


class TestIds:
    def test_ids_are_unique_and_tagged(self):
        first, second = mm.UmlClass("A"), mm.UmlClass("B")
        assert first.xmi_id != second.xmi_id
        assert first.xmi_id.startswith("Class_")

    def test_reset_ids_restarts_counter(self):
        import repro

        repro.reset_ids()
        element = mm.Comment("x")
        assert element.xmi_id == "Comment_1"
