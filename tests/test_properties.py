"""Property-based tests (hypothesis) on core invariants.

Each property states an invariant a subsystem must hold for *any*
input: ownership stays a tree, multiplicity strings round-trip, ASL
parse/unparse is a bijection on its image, the token game conserves
tokens at forks/joins, flattened machines replay interpreter traces,
and XMI round-trips preserve structure for generated models.
"""

import string

from hypothesis import given, settings, strategies as st_

import repro.metamodel as mm
from repro import asl, xmi
from repro.activities import Activity, TokenEngine
from repro.statemachines import (
    StateMachine,
    StateMachineRuntime,
    flatten,
)

names = st_.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
identifiers = st_.text(alphabet=string.ascii_lowercase,
                       min_size=1, max_size=6).filter(
    lambda s: s not in asl.KEYWORDS)


# ---------------------------------------------------------------------------
# metamodel invariants
# ---------------------------------------------------------------------------

@given(st_.lists(names, min_size=1, max_size=6, unique=True))
def test_ownership_is_a_tree(class_names):
    model = mm.Model("m")
    pkg = model.create_package("p")
    for name in class_names:
        pkg.add(mm.UmlClass(name))
    seen = set()
    for element in model.all_owned():
        assert id(element) not in seen, "element owned twice"
        seen.add(id(element))
        assert element.root() is model


@given(st_.integers(min_value=0, max_value=50),
       st_.one_of(st_.none(), st_.integers(min_value=0, max_value=80)))
def test_multiplicity_string_round_trip(lower, upper):
    if upper is not None and upper < lower:
        lower, upper = upper, lower
    multiplicity = mm.Multiplicity(lower, upper)
    assert mm.Multiplicity.parse(str(multiplicity)) == multiplicity


@given(st_.integers(min_value=0, max_value=30),
       st_.one_of(st_.none(), st_.integers(min_value=0, max_value=60)),
       st_.integers(min_value=0, max_value=100))
def test_multiplicity_accepts_is_consistent(lower, upper, count):
    if upper is not None and upper < lower:
        lower, upper = upper, lower
    multiplicity = mm.Multiplicity(lower, upper)
    expected = count >= lower and (upper is None or count <= upper)
    assert multiplicity.accepts(count) == expected


@given(st_.lists(names, min_size=1, max_size=5, unique=True))
def test_qualified_names_resolve_back(path_segments):
    model = mm.Model("root")
    namespace = model
    for segment in path_segments:
        namespace = namespace.create_package(segment)
    leaf = namespace.add(mm.UmlClass("Leaf"))
    relative = leaf.qualified_name.split("::", 1)[1]
    assert model.resolve(relative) is leaf


# ---------------------------------------------------------------------------
# ASL: parse/unparse round-trip on generated ASTs
# ---------------------------------------------------------------------------

literals = st_.one_of(
    st_.integers(min_value=0, max_value=10_000),
    st_.booleans(),
    st_.text(alphabet=string.ascii_letters + " ", max_size=10),
)


def expressions(depth=2):
    base = st_.one_of(literals.map(asl.Literal),
                      identifiers.map(asl.Name))
    if depth == 0:
        return base
    sub = expressions(depth - 1)
    return st_.one_of(
        base,
        st_.tuples(st_.sampled_from(["+", "-", "*", "and", "or", "==",
                                     "<", ">="]), sub, sub)
        .map(lambda t: asl.Binary(t[0], t[1], t[2])),
        st_.tuples(st_.sampled_from(["-", "not"]), sub)
        .map(lambda t: asl.Unary(t[0], t[1])),
        st_.lists(sub, max_size=3).map(
            lambda items: asl.ListLiteral(tuple(items))),
    )


@given(expressions())
@settings(max_examples=200)
def test_asl_expression_unparse_parse_identity(expr):
    text = asl.unparse_expression(expr)
    assert asl.parse_expression(text) == expr


def statements(depth=1):
    assign = st_.tuples(identifiers, expressions(1)).map(
        lambda t: asl.Assign(asl.Name(t[0]), t[1]))
    send = st_.tuples(
        identifiers,
        st_.lists(st_.tuples(identifiers, expressions(0)),
                  max_size=2, unique_by=lambda kv: kv[0]),
    ).map(lambda t: asl.Send(t[0].capitalize(), tuple(t[1])))
    base = st_.one_of(assign, send)
    if depth == 0:
        return base
    sub = st_.lists(statements(depth - 1), min_size=1, max_size=3)
    compound = st_.one_of(
        st_.tuples(expressions(1), sub, sub).map(
            lambda t: asl.If(t[0], tuple(t[1]), tuple(t[2]))),
        st_.tuples(identifiers, expressions(0), sub).map(
            lambda t: asl.For(t[0], t[1], tuple(t[2]))),
    )
    return st_.one_of(base, compound)


@given(st_.lists(statements(), min_size=1, max_size=4))
@settings(max_examples=150)
def test_asl_program_unparse_parse_identity(body):
    program = asl.Program(tuple(body))
    assert asl.parse(asl.unparse(program)) == program


@given(st_.integers(min_value=-1000, max_value=1000),
       st_.integers(min_value=1, max_value=100))
def test_asl_integer_division_floors(a, b):
    assert asl.evaluate(f"({a}) / {b}", {}) == a // b


# ---------------------------------------------------------------------------
# token engine: conservation at fork/join
# ---------------------------------------------------------------------------

@given(st_.integers(min_value=2, max_value=6))
@settings(max_examples=20)
def test_fork_join_token_conservation(branches):
    activity = Activity("fj")
    init = activity.add_initial()
    fork = activity.add_fork()
    join = activity.add_join()
    final = activity.add_final()
    activity.chain(init, fork)
    for index in range(branches):
        action = activity.add_action(f"a{index}")
        activity.flow(fork, action)
        activity.flow(action, join)
    activity.flow(join, final)
    engine = TokenEngine(activity)
    max_live = 0
    while True:
        live = sum(count for _loc, count in engine.marking_counts())
        max_live = max(max_live, live)
        if engine.step() is None:
            break
    assert engine.finished
    assert max_live == branches  # fork multiplies to exactly N tokens


@given(st_.integers(min_value=1, max_value=5),
       st_.integers(min_value=0, max_value=20))
@settings(max_examples=30)
def test_linear_chain_always_terminates(length, seed):
    activity = Activity("chain")
    nodes = [activity.add_initial()]
    for index in range(length):
        nodes.append(activity.add_action(f"s{index}"))
    nodes.append(activity.add_final())
    activity.chain(*nodes)
    engine = TokenEngine(activity, seed=seed)
    engine.run()
    assert engine.finished
    assert engine.steps == length + 2


# ---------------------------------------------------------------------------
# flattening equivalence under random event sequences
# ---------------------------------------------------------------------------

@given(st_.lists(st_.sampled_from(["power", "tick"]), max_size=30))
@settings(max_examples=50)
def test_flatten_equals_interpreter(events):
    machine = StateMachine("m")
    region = machine.region
    init = region.add_initial()
    off = region.add_state("Off")
    on = region.add_state("On")
    region.add_transition(init, off)
    region.add_transition(off, on, trigger="power")
    region.add_transition(on, off, trigger="power")
    inner = on.add_region()
    i2 = inner.add_initial()
    red = inner.add_state("Red")
    green = inner.add_state("Green")
    inner.add_transition(i2, red)
    inner.add_transition(red, green, trigger="tick")
    inner.add_transition(green, red, trigger="tick")

    flat = flatten(machine)
    runtime = StateMachineRuntime(machine).start()
    for event in events:
        flat.step(event)
        runtime.send(event)
    assert flat.leaf_names() == runtime.active_leaf_names()


# ---------------------------------------------------------------------------
# XMI round-trip on generated structural models
# ---------------------------------------------------------------------------

@given(st_.lists(st_.tuples(names, st_.integers(0, 5)),
                 min_size=1, max_size=8, unique_by=lambda t: t[0]))
@settings(max_examples=30)
def test_xmi_round_trip_random_models(class_specs):
    model = mm.Model("gen")
    pkg = model.create_package("p")
    classes = []
    for name, attribute_count in class_specs:
        cls = pkg.add(mm.UmlClass(name.capitalize()))
        for index in range(attribute_count):
            cls.add_attribute(f"a{index}", mm.INTEGER, default=index)
        classes.append(cls)
    for first, second in zip(classes, classes[1:]):
        pkg.add(mm.associate(first, second))
    document = xmi.read_model(xmi.write_model(model))
    assert document.model.summary() == model.summary()
    assert {e.xmi_id for e in document.model.all_owned()} == \
        {e.xmi_id for e in model.all_owned()}
