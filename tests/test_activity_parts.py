"""Activities as first-class part behaviors (PR 3).

A part whose classifier behavior is an Activity runs under the same
scheduler, fault injector, degradation policies and checkpoint/restore
as state-machine parts — this module is the executable statement of
that claim, mirroring tests/test_faults_lockstep.py for the mixed
Activity + StateMachine case."""

import pytest

import repro.metamodel as mm
from repro.activities import Activity
from repro.engine import TOKEN, TraceBus, TraceRecorder
from repro.faults import FaultCampaign, FaultSpec
from repro.simulation import SystemSimulation
from repro.statemachines import StateMachine
from repro.statemachines.kernel import TransitionKind


def make_echo(fragile=False):
    """Component whose behavior is a server-loop activity: wait for
    Ping, count it, reply Pong through the 'link' port."""
    echo = mm.Component("Echo")
    echo.add_attribute("count", mm.INTEGER, default=0)
    echo.add_port("link")
    activity = Activity("EchoBehavior")
    init = activity.add_initial()
    merge = activity.add_merge()
    accept = activity.add_accept_event("wait", event="Ping")
    work = activity.add_action("work", "count = count + 1;")
    send = activity.add_send_signal("reply", signal="Pong", target="link")
    activity.chain(init, merge, accept, work, send)
    activity.flow(send, merge)
    if fragile:
        # an independent poll loop whose action raises at ASL runtime
        poll = activity.add_initial("poll")
        loop = activity.add_merge("pollMerge")
        poke = activity.add_accept_event("poked", event="Poke")
        boom = activity.add_action("boom", "x = undefined_name + 1;")
        activity.chain(poll, loop, poke, boom)
        activity.flow(boom, loop)
    echo.add_behavior(activity, as_classifier_behavior=True)
    return echo


def make_driver(pings=4):
    """State-machine component: sends Ping on start, re-pings on each
    Pong until its budget is spent."""
    driver = mm.Component("Driver")
    driver.add_attribute("pongs", mm.INTEGER, default=0)
    driver.add_port("link")
    machine = StateMachine("DriverBehavior")
    region = machine.region
    init = region.add_initial()
    run = region.add_state("Run", entry='send Ping() to "link";')
    region.add_transition(init, run)
    region.add_transition(run, run, trigger="Pong",
                          guard=f"pongs < {pings - 1}",
                          effect='pongs = pongs + 1; '
                                 'send Ping() to "link";',
                          kind=TransitionKind.INTERNAL)
    driver.add_behavior(machine, as_classifier_behavior=True)
    return driver


def mixed_top(pings=4, fragile=False):
    top = mm.Component("Top")
    echo = make_echo(fragile=fragile)
    driver = make_driver(pings)
    p_echo = top.add_part("echo", echo)
    p_driver = top.add_part("driver", driver)
    top.connect(echo.port("link"), driver.port("link"),
                p_echo, p_driver, check=False)
    return top


def fingerprint(sim):
    return {
        "log": list(sim.message_log),
        "states": sim.state_snapshot(),
        "contexts": {name: dict(sim.context_of(name))
                     for name, inst in sim.parts.items()
                     if inst.runtime is not None},
        "report": sim.resilience.to_json(),
        "quarantined": sim.quarantined_parts,
        "delivered": sim.messages_delivered,
        "dropped": sim.messages_dropped,
    }


class TestMixedModelRuns:
    def test_ping_pong_round_trips(self):
        with SystemSimulation(mixed_top(pings=4)) as sim:
            sim.run(until=30.0)
            assert sim.context_of("echo")["count"] == 4
            assert sim.context_of("driver")["pongs"] == 3
            assert sim.compile_report["echo"] == "token-engine"
            assert sim.compile_report["driver"] == "interpreter"

    def test_activity_configuration_is_named(self):
        with SystemSimulation(mixed_top()) as sim:
            sim.run(until=30.0)
            states = sim.state_snapshot()["echo"]
            assert states  # quiesced at the accept node, not terminated
            assert all(":" in label for label in states)

    def test_start_time_send_is_routed(self):
        # the driver's entry action fires during construction; that
        # send must route through the connector like any other
        with SystemSimulation(mixed_top(pings=1)) as sim:
            sim.run(until=10.0)
            assert sim.context_of("echo")["count"] == 1

    def test_token_events_on_the_bus(self):
        bus = TraceBus()
        recorder = TraceRecorder(bus, kinds=(TOKEN,))
        with SystemSimulation(mixed_top(), bus=bus) as sim:
            sim.run(until=30.0)
        fired = [event.data["node"] for event in recorder.events]
        assert "work" in fired and "reply" in fired
        assert all(event.part == "echo" for event in recorder.events)


class TestCheckpointRestore:
    def test_exact_replay_round_trip(self):
        with SystemSimulation(mixed_top(pings=6)) as sim:
            sim.run(until=5.0)
            snap = sim.checkpoint()
            sim.run(until=40.0)
            first = fingerprint(sim)
            sim.restore(snap)
            sim.run(until=40.0)
            second = fingerprint(sim)
        assert first == second
        assert first["contexts"]["echo"]["count"] == 6

    def test_checkpoint_under_faults_replays(self):
        campaign = FaultCampaign(
            [FaultSpec("drop", signal="Pong", probability=0.4)], seed=11)
        with SystemSimulation(mixed_top(pings=8),
                              faults=campaign) as sim:
            sim.run(until=6.0)
            snap = sim.checkpoint()
            sim.run(until=60.0)
            first = fingerprint(sim)
            sim.restore(snap)
            sim.run(until=60.0)
            second = fingerprint(sim)
        assert first == second


class TestLockstepWithActivityPart:
    def test_compiled_and_interpreted_agree(self):
        results = []
        for compiled in (False, True):
            with SystemSimulation(mixed_top(pings=5),
                                  compile=compiled) as sim:
                sim.run(until=40.0)
                results.append(fingerprint(sim))
        assert results[0] == results[1]

    def test_lockstep_under_fault_campaign(self):
        campaign = FaultCampaign(
            [FaultSpec("drop", signal="Pong", probability=0.3),
             FaultSpec("duplicate", signal="Ping", max_count=2),
             FaultSpec("delay", signal="Pong", delay=1.5, jitter=1.0,
                       probability=0.5)],
            name="mixed", seed=42)
        results = []
        for compiled in (False, True):
            with SystemSimulation(mixed_top(pings=8), compile=compiled,
                                  faults=campaign) as sim:
                sim.run(until=80.0)
                results.append(fingerprint(sim))
        assert results[0] == results[1]

    def test_trace_streams_byte_identical(self):
        campaign = FaultCampaign(
            [FaultSpec("drop", signal="Pong", probability=0.3)], seed=7)
        streams = []
        for compiled in (False, True):
            bus = TraceBus()
            recorder = TraceRecorder(bus)
            with SystemSimulation(mixed_top(pings=8), compile=compiled,
                                  faults=campaign, bus=bus) as sim:
                sim.run(until=60.0)
            streams.append(recorder.to_jsonl())
        assert streams[0]
        assert streams[0] == streams[1]


class TestDegradationPolicies:
    def send_pokes(self, sim):
        sim.send("echo", "Poke", delay=2.5)
        sim.send("echo", "Poke", delay=4.5)

    def test_quarantine_isolates_activity_part(self):
        with SystemSimulation(mixed_top(pings=3, fragile=True),
                              on_part_error="quarantine") as sim:
            self.send_pokes(sim)
            sim.run(until=40.0)
            assert sim.quarantined_parts == ("echo",)
            assert sim.resilience.part_failures

    def test_restart_rebuilds_activity_part(self):
        with SystemSimulation(mixed_top(pings=3, fragile=True),
                              on_part_error="restart",
                              max_restarts=5) as sim:
            self.send_pokes(sim)
            sim.run(until=40.0)
            assert sim.quarantined_parts == ()
            assert sim.resilience.restarts.get("echo", 0) >= 1
            # the restarted engine is fresh: its counter restarted at 0
            assert sim.context_of("echo")["count"] >= 0

    @pytest.mark.parametrize("policy", ["quarantine", "restart"])
    def test_policies_lockstep(self, policy):
        results = []
        for compiled in (False, True):
            with SystemSimulation(mixed_top(pings=4, fragile=True),
                                  compile=compiled,
                                  on_part_error=policy,
                                  max_restarts=1) as sim:
                self.send_pokes(sim)
                sim.run(until=40.0)
                results.append(fingerprint(sim))
        assert results[0] == results[1]
