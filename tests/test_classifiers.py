"""Unit tests for classifiers: inheritance, conformance, realization."""

import pytest

import repro.metamodel as mm
from repro.errors import ModelError


class TestGeneralization:
    def test_generals_and_all_generals(self):
        base = mm.UmlClass("Base")
        middle = mm.UmlClass("Middle")
        leaf = mm.UmlClass("Leaf")
        middle.add_generalization(base)
        leaf.add_generalization(middle)
        assert leaf.generals == (middle,)
        assert leaf.all_generals() == (middle, base)

    def test_self_inheritance_rejected(self):
        cls = mm.UmlClass("C")
        with pytest.raises(ModelError):
            cls.add_generalization(cls)

    def test_cycle_rejected(self):
        a, b = mm.UmlClass("A"), mm.UmlClass("B")
        a.add_generalization(b)
        with pytest.raises(ModelError):
            b.add_generalization(a)

    def test_duplicate_generalization_rejected(self):
        a, b = mm.UmlClass("A"), mm.UmlClass("B")
        a.add_generalization(b)
        with pytest.raises(ModelError):
            a.add_generalization(b)

    def test_diamond_deduplicated(self):
        top = mm.UmlClass("Top")
        left, right = mm.UmlClass("L"), mm.UmlClass("R")
        bottom = mm.UmlClass("B")
        left.add_generalization(top)
        right.add_generalization(top)
        bottom.add_generalization(left)
        bottom.add_generalization(right)
        assert bottom.all_generals().count(top) == 1


class TestInheritedFeatures:
    def test_all_attributes_includes_inherited(self):
        base = mm.UmlClass("Base")
        base.add_attribute("id", mm.INTEGER)
        derived = mm.UmlClass("Derived")
        derived.add_attribute("extra", mm.STRING)
        derived.add_generalization(base)
        names = [p.name for p in derived.all_attributes()]
        assert names == ["extra", "id"]

    def test_shadowing_by_name(self):
        base = mm.UmlClass("Base")
        base.add_attribute("x", mm.INTEGER)
        derived = mm.UmlClass("Derived")
        own = derived.add_attribute("x", mm.REAL)
        derived.add_generalization(base)
        attrs = [p for p in derived.all_attributes() if p.name == "x"]
        assert attrs == [own]

    def test_all_operations_with_override(self):
        base = mm.UmlClass("Base")
        base.add_operation("run")
        derived = mm.UmlClass("Derived")
        override = derived.add_operation("run")
        derived.add_generalization(base)
        assert derived.find_operation("run") is override

    def test_find_operation_searches_chain(self):
        base = mm.UmlClass("Base")
        op = base.add_operation("boot")
        derived = mm.UmlClass("Derived")
        derived.add_generalization(base)
        assert derived.find_operation("boot") is op
        assert derived.find_operation("missing") is None


class TestConformance:
    def test_conforms_to_self_and_generals(self):
        base, derived = mm.UmlClass("B"), mm.UmlClass("D")
        derived.add_generalization(base)
        assert derived.conforms_to(derived)
        assert derived.conforms_to(base)
        assert not base.conforms_to(derived)

    def test_conforms_to_realized_interface(self):
        iface = mm.Interface("I")
        cls = mm.UmlClass("C")
        cls.realize(iface)
        assert cls.conforms_to(iface)

    def test_conforms_through_interface_inheritance(self):
        base_iface = mm.Interface("IBase")
        sub_iface = mm.Interface("ISub")
        sub_iface.add_generalization(base_iface)
        cls = mm.UmlClass("C")
        cls.realize(sub_iface)
        assert cls.conforms_to(base_iface)

    def test_conformance_inherited_from_general(self):
        iface = mm.Interface("I")
        base = mm.UmlClass("Base")
        base.realize(iface)
        derived = mm.UmlClass("Derived")
        derived.add_generalization(base)
        assert derived.conforms_to(iface)

    def test_duplicate_realization_rejected(self):
        iface, cls = mm.Interface("I"), mm.UmlClass("C")
        cls.realize(iface)
        with pytest.raises(ModelError):
            cls.realize(iface)


class TestInterfaceQueries:
    def test_implementers(self):
        model = mm.Model("m")
        iface = model.add(mm.Interface("I"))
        a = model.add(mm.UmlClass("A"))
        b = model.add(mm.UmlClass("B"))
        a.realize(iface)
        assert iface.implementers(model) == (a,)


class TestClassBehaviors:
    def test_classifier_behavior_assignment(self):
        from repro.statemachines import StateMachine

        cls = mm.UmlClass("C")
        machine = StateMachine("m")
        other = StateMachine("aux")
        cls.add_behavior(machine, as_classifier_behavior=True)
        cls.add_behavior(other)
        assert cls.classifier_behavior is machine
        assert set(cls.owned_of_type(StateMachine)) == {machine, other}

    def test_dependencies(self):
        a, b = mm.UmlClass("A"), mm.UmlClass("B")
        dep = a.add_dependency(b, kind="use")
        assert a.dependencies == (dep,)
        assert dep.supplier is b
