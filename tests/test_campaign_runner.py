"""The crash-tolerant, resumable campaign runner (PR 5): serial ==
parallel == resumed byte-identity, SIGKILL'd-worker retry, journal
resume, order-independent report merging, and the CLI surface."""

import json
import os

import pytest

import repro.metamodel as mm
from repro import xmi
from repro.cli import main
from repro.errors import FaultError
from repro.faults import (
    CampaignSpec,
    FaultCampaign,
    FaultSpec,
    ResilienceReport,
    read_journal,
    run_campaign,
    run_seed,
)
from repro.faults.runner import TEST_KILL_ENV
from repro.hw import make_memory, make_soc, make_traffic_generator


def soc_top():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    return make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)])


@pytest.fixture(scope="module")
def model_file(tmp_path_factory):
    model = mm.Model("design")
    package = model.create_package("design")
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)],
             package=package)
    path = tmp_path_factory.mktemp("campaign") / "soc.xmi"
    xmi.write_file(str(path), model)
    return str(path)


@pytest.fixture(scope="module")
def campaign_file(tmp_path_factory):
    campaign = FaultCampaign(
        [FaultSpec("drop", signal="Read", probability=0.3),
         FaultSpec("delay", delay=1.5, probability=0.4)],
        name="sweep", seed=0)
    path = tmp_path_factory.mktemp("campaign") / "campaign.json"
    path.write_text(campaign.to_json())
    return str(path)


def make_spec(model_file, campaign_file, seeds=(1, 2, 3, 4), **kwargs):
    options = dict(model=model_file, top="design::Soc",
                   campaign=campaign_file, until=40.0, name="sweep")
    options.update(kwargs)
    return CampaignSpec(seeds=list(seeds), **options)


class TestSpecValidation:
    def test_needs_exactly_one_model_source(self):
        with pytest.raises(FaultError):
            CampaignSpec(seeds=[1])
        with pytest.raises(FaultError):
            CampaignSpec(seeds=[1], model="m.xmi", top="T",
                         builder="mod:f")

    def test_model_needs_top(self):
        with pytest.raises(FaultError):
            CampaignSpec(seeds=[1], model="m.xmi")

    def test_builder_shape(self):
        with pytest.raises(FaultError):
            CampaignSpec(seeds=[1], builder="no_colon")

    def test_seeds_validated(self):
        with pytest.raises(FaultError):
            CampaignSpec(seeds=[], builder="m:f")
        with pytest.raises(FaultError):
            CampaignSpec(seeds=[1, 1], builder="m:f")

    def test_round_trip(self, model_file, campaign_file):
        spec = make_spec(model_file, campaign_file, coverage=True)
        assert CampaignSpec.from_dict(spec.to_dict()).to_dict() \
            == spec.to_dict()


class TestSerialSweep:
    def test_run_seed_is_deterministic(self, model_file, campaign_file):
        spec = make_spec(model_file, campaign_file)
        assert run_seed(spec, 3) == run_seed(spec, 3)

    def test_builder_source(self, campaign_file, monkeypatch):
        import sys
        import types

        module = types.ModuleType("_campaign_builder_fixture")
        module.soc_top = soc_top
        monkeypatch.setitem(sys.modules, "_campaign_builder_fixture",
                            module)
        spec = CampaignSpec(
            seeds=[1], builder="_campaign_builder_fixture:soc_top",
            campaign=campaign_file, until=40.0)
        result = run_campaign(spec, workers=0)
        assert result.completed_seeds == [1]
        assert result.mode == "serial"

    def test_journal_rows_and_result(self, model_file, campaign_file,
                                     tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        spec = make_spec(model_file, campaign_file, seeds=(1, 2))
        result = run_campaign(spec, journal=journal)
        assert result.ok and result.completed_seeds == [1, 2]
        header, completed, failures = read_journal(journal)
        assert header["spec"] == spec.to_dict()
        assert sorted(completed) == [1, 2]
        assert failures == []
        merged = result.resilience()
        assert merged.total_injections > 0


class TestParallelSweep:
    def test_parallel_equals_serial_bytes(self, model_file,
                                          campaign_file):
        spec = make_spec(model_file, campaign_file, coverage=True)
        serial = run_campaign(spec, workers=0)
        parallel = run_campaign(spec, workers=3, run_timeout=120.0)
        assert parallel.mode == "parallel"
        assert parallel.to_json() == serial.to_json()
        assert parallel.coverage().to_json() == \
            serial.coverage().to_json()

    def test_killed_worker_is_retried(self, model_file, campaign_file,
                                      tmp_path, monkeypatch):
        # seed 2's worker SIGKILLs itself on attempt 1; the retry
        # completes and the sweep still matches the serial reference
        monkeypatch.setenv(TEST_KILL_ENV, "2:1")
        journal = str(tmp_path / "killed.jsonl")
        spec = make_spec(model_file, campaign_file)
        result = run_campaign(spec, workers=3, journal=journal,
                              run_timeout=120.0)
        monkeypatch.delenv(TEST_KILL_ENV)
        assert result.ok and result.completed_seeds == [1, 2, 3, 4]
        _, _, failure_rows = read_journal(journal)
        assert [row["seed"] for row in failure_rows] == [2]
        assert "worker died" in failure_rows[0]["error"]
        reference = run_campaign(spec, workers=0)
        assert result.to_json() == reference.to_json()

    def test_permanent_crash_is_isolated(self, model_file,
                                         campaign_file, monkeypatch):
        # seed 3 dies on every attempt: it becomes a failure row while
        # the other seeds complete untouched
        monkeypatch.setenv(TEST_KILL_ENV, "3:99")
        spec = make_spec(model_file, campaign_file)
        result = run_campaign(spec, workers=3, run_timeout=120.0,
                              max_retries=1)
        assert result.failed_seeds == [3]
        assert result.completed_seeds == [1, 2, 4]
        assert result.failures[0]["attempts"] == 2
        assert not result.ok


class TestResume:
    def test_resume_runs_only_missing_seeds(self, model_file,
                                            campaign_file, tmp_path,
                                            monkeypatch):
        journal = str(tmp_path / "resume.jsonl")
        spec = make_spec(model_file, campaign_file)
        # first attempt: seed 3 is unrunnable (killed on every try)
        monkeypatch.setenv(TEST_KILL_ENV, "3:99")
        partial = run_campaign(spec, workers=3, journal=journal,
                               run_timeout=120.0, max_retries=0)
        monkeypatch.delenv(TEST_KILL_ENV)
        assert partial.completed_seeds == [1, 2, 4]
        # resume re-runs exactly the missing seed …
        resumed = run_campaign(spec, workers=3, journal=journal,
                               resume=True, run_timeout=120.0)
        assert resumed.resumed_seeds == [1, 2, 4]
        assert resumed.completed_seeds == [1, 2, 3, 4]
        # … and the journal gained exactly one new ok row
        _, completed, _ = read_journal(journal)
        assert sorted(completed) == [1, 2, 3, 4]
        # byte-identical to the uninterrupted serial reference
        reference = run_campaign(spec, workers=0)
        assert resumed.to_json() == reference.to_json()

    def test_torn_journal_tail_is_tolerated(self, model_file,
                                            campaign_file, tmp_path):
        journal = str(tmp_path / "torn.jsonl")
        spec = make_spec(model_file, campaign_file, seeds=(1, 2, 3))
        run_campaign(spec, journal=journal)
        lines = open(journal, encoding="utf-8").read().splitlines()
        # the writer died mid-append: seed 3's row is half a line
        with open(journal, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")
            handle.write(lines[-1][:20])
        resumed = run_campaign(spec, journal=journal, resume=True)
        assert resumed.resumed_seeds == [1, 2]
        assert resumed.to_json() == run_campaign(spec).to_json()

    def test_resume_rejects_foreign_journal(self, model_file,
                                            campaign_file, tmp_path):
        journal = str(tmp_path / "foreign.jsonl")
        run_campaign(make_spec(model_file, campaign_file, seeds=(1,)),
                     journal=journal)
        other = make_spec(model_file, campaign_file, seeds=(1,),
                          until=60.0)
        with pytest.raises(FaultError):
            run_campaign(other, journal=journal, resume=True)

    def test_bad_knobs_rejected(self, model_file, campaign_file):
        spec = make_spec(model_file, campaign_file)
        with pytest.raises(FaultError):
            run_campaign(spec, run_timeout=0.0)
        with pytest.raises(FaultError):
            run_campaign(spec, max_retries=-1)


class TestMergeGolden:
    def reports(self):
        one = ResilienceReport()
        one.record_injection(3.0, "drop", "drop", "signal=Read", "Read")
        one.record_part_failure(5.0, "cpu", "boom", "restore")
        one.record_restore("cpu")
        one.record_quarantine(9.0, "dma")
        two = ResilienceReport()
        two.record_injection(1.0, "delay", "delay", "*", "WriteAck")
        two.record_part_failure(2.0, "cpu", "boom", "restart")
        two.record_restart("cpu")
        two.record_quarantine(4.0, "dma")
        two.record_kernel_incident(8.0, "WatchdogTimeout", "hung")
        return one, two

    def test_merge_is_order_independent(self):
        one, two = self.reports()
        assert one.merge(two).to_json() == two.merge(one).to_json()

    def test_merge_golden_json(self):
        one, two = self.reports()
        golden = {
            "counts": {"delay": 1, "drop": 1, "kernel_incident": 1,
                       "part_restart": 1, "part_restore": 1},
            "injections": [
                {"t": 1.0, "spec": "delay", "kind": "delay",
                 "site": "*", "signal": "WriteAck"},
                {"t": 3.0, "spec": "drop", "kind": "drop",
                 "site": "signal=Read", "signal": "Read"},
            ],
            "part_failures": [
                {"t": 2.0, "part": "cpu", "error": "boom",
                 "action": "restart"},
                {"t": 5.0, "part": "cpu", "error": "boom",
                 "action": "restore"},
            ],
            "quarantined": {"dma": 4.0},
            "restarts": {"cpu": 1},
            "restores": {"cpu": 1},
            "kernel_incidents": [
                {"t": 8.0, "kind": "WatchdogTimeout", "detail": "hung"}],
        }
        expected = json.dumps(golden, indent=2, sort_keys=True)
        assert one.merge(two).to_json() == expected

    def test_merged_fold_matches_pairwise(self):
        one, two = self.reports()
        three = ResilienceReport()
        three.record_restart("cpu")
        permutations = (
            ResilienceReport.merged([one, two, three]),
            ResilienceReport.merged([three, one, two]),
            one.merge(two).merge(three),
        )
        fingerprints = {report.to_json() for report in permutations}
        assert len(fingerprints) == 1
        assert ResilienceReport.merged([]).to_json() \
            == ResilienceReport().to_json()

    def test_from_dict_round_trip(self):
        one, _ = self.reports()
        assert ResilienceReport.from_dict(one.to_dict()).to_json() \
            == one.to_json()


class TestCliCampaign:
    def test_cli_sweep_and_resume(self, model_file, campaign_file,
                                  tmp_path):
        journal = str(tmp_path / "cli.jsonl")
        report_a = tmp_path / "a.json"
        report_b = tmp_path / "b.json"
        base = ["campaign", model_file, "--top", "design::Soc",
                "--faults", campaign_file, "--seeds", "1,2,3",
                "--until", "40", "--journal", journal]
        assert main(base + ["--parallel", "2", "--run-timeout", "120",
                            "--report", str(report_a)]) == 0
        assert main(base + ["--resume",
                            "--report", str(report_b)]) == 0
        assert report_a.read_text() == report_b.read_text()
        payload = json.loads(report_a.read_text())
        assert [row["seed"] for row in payload["completed"]] == [1, 2, 3]

    def test_cli_runs_counts_from_campaign_seed(self, model_file,
                                                campaign_file, tmp_path,
                                                capsys):
        report = tmp_path / "runs.json"
        assert main(["campaign", model_file, "--top", "design::Soc",
                     "--faults", campaign_file, "--runs", "2",
                     "--until", "20", "--report", str(report)]) == 0
        payload = json.loads(report.read_text())
        assert [row["seed"] for row in payload["completed"]] == [0, 1]
        assert "2/2 seed(s) completed" in capsys.readouterr().out

    def test_cli_permanent_failure_exits_nonzero(self, model_file,
                                                 campaign_file,
                                                 monkeypatch):
        monkeypatch.setenv(TEST_KILL_ENV, "1:99")
        code = main(["campaign", model_file, "--top", "design::Soc",
                     "--faults", campaign_file, "--seeds", "1,2",
                     "--until", "20", "--parallel", "2",
                     "--run-timeout", "120", "--retries", "0"])
        assert code == 1

    def test_cli_bad_seeds_errors(self, model_file, campaign_file):
        assert main(["campaign", model_file, "--top", "design::Soc",
                     "--faults", campaign_file,
                     "--seeds", "one,two"]) == 2


class TestBackoffDelay:
    """Satellite of PR 10: deterministic seeded jitter for retries."""

    def test_deterministic(self):
        from repro.faults import backoff_delay

        assert backoff_delay(0.5, 1, token=7) \
            == backoff_delay(0.5, 1, token=7)

    def test_window_is_exponential_with_bounded_jitter(self):
        from repro.faults import backoff_delay

        for attempt in (1, 2, 3, 4):
            window = 0.5 * (2 ** (attempt - 1))
            for token in range(20):
                delay = backoff_delay(0.5, attempt, token=token)
                assert 0.5 * window <= delay < 1.5 * window

    def test_tokens_desynchronize(self):
        from repro.faults import backoff_delay

        delays = {backoff_delay(0.5, 1, token=seed)
                  for seed in range(50)}
        # a thundering herd would collapse these to one value
        assert len(delays) == 50

    def test_attempts_desynchronize(self):
        from repro.faults import backoff_delay

        first = backoff_delay(0.5, 1, token=3)
        second = backoff_delay(0.5, 2, token=3)
        assert second != first * 2  # jitter differs per attempt

    def test_string_tokens_work(self):
        from repro.faults import backoff_delay

        assert backoff_delay(0.25, 1, token="job-000001") \
            == backoff_delay(0.25, 1, token="job-000001")
        assert backoff_delay(0.25, 1, token="job-000001") \
            != backoff_delay(0.25, 1, token="job-000002")


class TestTornRecordsCounter:
    """Satellite of PR 10: torn journal tails are counted, not silent."""

    def test_read_journal_counts_torn_tail(self, model_file,
                                           campaign_file, tmp_path):
        from repro.perf import PERF

        journal = str(tmp_path / "torn-counted.jsonl")
        spec = make_spec(model_file, campaign_file, seeds=(1, 2))
        run_campaign(spec, journal=journal)
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"status": "ok", "seed":')
        before = PERF.counter("journal.torn_records")
        header, completed, _ = read_journal(journal)
        assert PERF.counter("journal.torn_records") == before + 1
        assert header is not None and sorted(completed) == [1, 2]

    def test_clean_journal_counts_nothing(self, model_file,
                                          campaign_file, tmp_path):
        from repro.perf import PERF

        journal = str(tmp_path / "clean-counted.jsonl")
        run_campaign(make_spec(model_file, campaign_file, seeds=(1,)),
                     journal=journal)
        before = PERF.counter("journal.torn_records")
        read_journal(journal)
        assert PERF.counter("journal.torn_records") == before
