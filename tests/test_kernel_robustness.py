"""Kernel robustness: watchdog, livelock/deadlock, backpressure,
checkpoint/restore and lifecycle (PR 2)."""

import pytest

from repro.errors import (
    DeadlockError,
    LivelockError,
    QueueOverflowError,
    SimulationError,
    WatchdogTimeout,
)
from repro.simulation import Simulator


class TestWatchdog:
    def test_expired_deadline_raises(self):
        sim = Simulator()

        def storm():
            # zero-delay self-perpetuating load so the run never drains
            sim.schedule(0.0, storm)
        sim.schedule(0.0, storm)
        with pytest.raises(WatchdogTimeout) as excinfo:
            sim.run(timeout=0.0)
        assert "watchdog" in str(excinfo.value)

    def test_generous_deadline_does_not_fire(self):
        sim = Simulator()
        hits = []
        for delay in range(10):
            sim.schedule(float(delay), lambda: hits.append(1))
        assert sim.run(timeout=60.0) == 9.0
        assert len(hits) == 10


class TestLivelock:
    def test_zero_delay_storm_detected(self):
        sim = Simulator()

        def storm():
            sim.schedule(0.0, storm)
        sim.schedule(0.0, storm)
        with pytest.raises(LivelockError) as excinfo:
            sim.run(max_events_at_instant=100)
        assert "t=0.0" in str(excinfo.value)

    def test_advancing_time_resets_counter(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 500:
                sim.schedule(1.0, tick)  # time advances every event
        sim.schedule(1.0, tick)
        sim.run(max_events_at_instant=10)
        assert count[0] == 500


class TestDeadlock:
    def test_blocked_process_detected_at_quiescence(self):
        sim = Simulator()
        never = sim.event()

        def waiter():
            yield never  # nothing ever succeeds this
        sim.process(waiter(), name="stuck")
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(detect_deadlock=True)
        assert "stuck" in str(excinfo.value)

    def test_completed_processes_are_fine(self):
        sim = Simulator()

        def worker():
            yield 5.0
        sim.process(worker())
        assert sim.run(detect_deadlock=True) == 5.0


class TestBackpressure:
    def test_raise_policy(self):
        sim = Simulator(max_queue=2)
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        with pytest.raises(QueueOverflowError):
            sim.schedule(3.0, lambda: None)

    def test_drop_newest_policy(self):
        sim = Simulator(max_queue=2, overflow_policy="drop-newest")
        hits = []
        sim.schedule(1.0, lambda: hits.append("a"))
        sim.schedule(2.0, lambda: hits.append("b"))
        sim.schedule(3.0, lambda: hits.append("c"))  # silently shed
        sim.run()
        assert hits == ["a", "b"]
        assert sim.events_dropped == 1

    def test_drop_latest_evicts_furthest_future(self):
        sim = Simulator(max_queue=2, overflow_policy="drop-latest")
        hits = []
        sim.schedule(1.0, lambda: hits.append("a"))
        sim.schedule(9.0, lambda: hits.append("far"))
        sim.schedule(2.0, lambda: hits.append("b"))  # evicts "far"
        sim.run()
        assert hits == ["a", "b"]
        assert sim.events_dropped == 1

    def test_bad_policy_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(overflow_policy="explode")
        with pytest.raises(SimulationError):
            Simulator(max_queue=0)


class TestCheckpoint:
    def test_round_trip_replays_identically(self):
        def build():
            sim = Simulator()
            log = []
            for delay in (1.0, 2.0, 3.0, 4.0):
                sim.schedule(delay, lambda d=delay: log.append(d))
            return sim, log

        sim, log = build()
        sim.run(until=2.0)
        snap = sim.checkpoint()
        sim.run(until=4.0)
        assert log == [1.0, 2.0, 3.0, 4.0]
        sim.restore(snap)
        assert sim.now == 2.0
        del log[2:]
        sim.run(until=4.0)
        assert log == [1.0, 2.0, 3.0, 4.0]

    def test_recurring_tick_survives_round_trip(self):
        sim = Simulator()
        hits = []
        sim.every(1.0, lambda: hits.append(sim.now), until=10.0)
        sim.run(until=3.0)
        snap = sim.checkpoint()
        before = list(hits)
        sim.run(until=10.0)
        sim.restore(snap)
        del hits[len(before):]
        sim.run(until=10.0)
        assert hits == [float(t) for t in range(1, 11)]

    def test_live_process_refuses_checkpoint(self):
        sim = Simulator()

        def worker():
            yield 100.0
        sim.process(worker())
        sim.run(until=1.0)
        with pytest.raises(SimulationError) as excinfo:
            sim.checkpoint()
        assert "generator" in str(excinfo.value)

    def test_counters_restored(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        snap = sim.checkpoint()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2
        sim.restore(snap)
        assert sim.events_processed == 1
        assert sim.now == 1.0


class TestLifecycle:
    def test_close_is_idempotent(self):
        sim = Simulator()
        sim.close()
        sim.close()
        assert sim.is_closed

    def test_close_cancels_recurrences(self):
        sim = Simulator()
        hits = []
        sim.every(1.0, lambda: hits.append(1))
        sim.close()
        assert sim.is_quiescent
        assert not hits

    def test_closed_simulator_refuses_work(self):
        sim = Simulator()
        event = sim.event()
        sim.close()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.every(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.process(iter(()))
        with pytest.raises(SimulationError):
            event.succeed()
        with pytest.raises(SimulationError):
            sim.restore({})
