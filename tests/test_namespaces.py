"""Unit tests for named elements, namespaces and packages."""

import pytest

import repro.metamodel as mm
from repro.errors import LookupFailed, ModelError


class TestQualifiedNames:
    def test_nested_qualified_name(self):
        model = mm.Model("soc")
        pkg = model.create_package("cpu")
        cls = pkg.add(mm.UmlClass("Core"))
        assert cls.qualified_name == "soc::cpu::Core"

    def test_unnamed_segments_skipped(self):
        pkg = mm.Package("")
        cls = pkg.add(mm.UmlClass("C"))
        assert cls.qualified_name == "C"

    def test_namespace_property_finds_nearest(self):
        pkg = mm.Package("p")
        cls = pkg.add(mm.UmlClass("C"))
        prop = cls.add_attribute("a")
        assert prop.namespace is cls
        assert cls.namespace is pkg


class TestMemberLookup:
    def test_member_by_name(self):
        pkg = mm.Package("p")
        cls = pkg.add(mm.UmlClass("C"))
        assert pkg.member("C") is cls

    def test_member_by_name_and_kind(self):
        pkg = mm.Package("p")
        pkg.add(mm.UmlClass("X"))
        with pytest.raises(LookupFailed):
            pkg.member("X", mm.Interface)

    def test_missing_member_raises_lookup_failed(self):
        pkg = mm.Package("p")
        with pytest.raises(LookupFailed):
            pkg.member("ghost")

    def test_lookup_failed_is_keyerror(self):
        pkg = mm.Package("p")
        with pytest.raises(KeyError):
            pkg.member("ghost")

    def test_find_member_returns_none(self):
        pkg = mm.Package("p")
        assert pkg.find_member("ghost") is None

    def test_resolve_path(self):
        model = mm.Model("m")
        inner = model.create_package("a").create_package("b")
        cls = inner.add(mm.UmlClass("C"))
        assert model.resolve("a::b::C") is cls
        assert model.resolve("a::b::C", mm.UmlClass) is cls

    def test_resolve_missing_step(self):
        model = mm.Model("m")
        model.create_package("a")
        with pytest.raises(LookupFailed):
            model.resolve("a::missing::C")

    def test_resolve_through_non_namespace_fails(self):
        model = mm.Model("m")
        pkg = model.create_package("a")
        cls = pkg.add(mm.UmlClass("C"))
        prop = cls.add_attribute("x")
        with pytest.raises(LookupFailed):
            model.resolve("a::C::x::deeper")


class TestPackages:
    def test_duplicate_member_names_rejected(self):
        pkg = mm.Package("p")
        pkg.add(mm.UmlClass("C"))
        with pytest.raises(ModelError):
            pkg.add(mm.UmlClass("C"))

    def test_only_packageable_elements(self):
        pkg = mm.Package("p")
        with pytest.raises(ModelError):
            pkg.add(mm.Comment("not packageable"))  # type: ignore[arg-type]

    def test_nested_packages_enumeration(self):
        root = mm.Package("root")
        a = root.create_package("a")
        b = a.create_package("b")
        assert set(p.name for p in root.all_packages()) == {"root", "a", "b"}
        assert root.nested_packages == (a,)

    def test_packaged_elements(self):
        pkg = mm.Package("p")
        cls = pkg.add(mm.UmlClass("C"))
        sub = pkg.create_package("sub")
        assert set(pkg.packaged_elements) == {cls, sub}


class TestPackageImports:
    def test_import_makes_members_visible(self):
        lib = mm.Package("lib")
        util = lib.add(mm.UmlClass("Util"))
        app = mm.Package("app")
        app.import_package(lib)
        assert app.visible_member("Util") is util

    def test_private_members_not_visible_through_import(self):
        lib = mm.Package("lib")
        secret = lib.add(mm.UmlClass("Secret"))
        secret.visibility = mm.VisibilityKind.PRIVATE
        app = mm.Package("app")
        app.import_package(lib)
        with pytest.raises(LookupFailed):
            app.visible_member("Secret")

    def test_local_member_shadows_import(self):
        lib = mm.Package("lib")
        lib.add(mm.UmlClass("Thing"))
        app = mm.Package("app")
        local = app.add(mm.UmlClass("Thing"))
        app.import_package(lib)
        assert app.visible_member("Thing") is local

    def test_imported_packages_listed(self):
        lib, app = mm.Package("lib"), mm.Package("app")
        app.import_package(lib)
        assert app.imported_packages == (lib,)
