"""Tests for the discrete-event kernel, signals, clocks, waveforms."""

import pytest

from repro.errors import SimulationError
from repro.simulation import Clock, SimSignal, Simulator, Timeout, Waveform


class TestScheduler:
    def test_actions_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]
        assert sim.now == 5.0

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for label in "abc":
            sim.schedule(1.0, lambda l=label: order.append(l))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(True))
        sim.run(until=5.0)
        assert not fired
        assert sim.now == 5.0
        sim.run()
        assert fired

    def test_max_events_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1.0, reschedule)
        sim.schedule(1.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestProcesses:
    def test_timeout_yields(self):
        sim = Simulator()
        log = []

        def proc():
            log.append(sim.now)
            yield 3.0
            log.append(sim.now)
            yield Timeout(2.0)
            log.append(sim.now)
        sim.process(proc())
        sim.run()
        assert log == [0.0, 3.0, 5.0]

    def test_event_wait_and_value(self):
        sim = Simulator()
        event = sim.event()
        results = []

        def waiter():
            value = yield event
            results.append(value)

        def firer():
            yield 2.0
            event.succeed("payload")
        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert results == ["payload"]

    def test_wait_on_already_triggered_event(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(42)
        results = []

        def late():
            value = yield event
            results.append(value)
        sim.process(late())
        sim.run()
        assert results == [42]

    def test_double_succeed_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_process_join(self):
        sim = Simulator()
        log = []

        def worker():
            yield 4.0
            return "done"

        def boss():
            handle = sim.process(worker(), "w")
            result = yield handle
            log.append((sim.now, result))
        sim.process(boss())
        sim.run()
        assert log == [(4.0, "done")]

    def test_invalid_yield_type(self):
        sim = Simulator()

        def bad():
            yield "nonsense"
        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()


class TestSignals:
    def test_write_notifies_subscribers(self):
        sim = Simulator()
        sig = SimSignal(sim, "s", initial=0)
        seen = []
        sig.on_change(lambda old, new: seen.append((old, new)))
        sig.write(5)
        assert seen == [(0, 5)]

    def test_same_value_suppressed(self):
        sim = Simulator()
        sig = SimSignal(sim, "s", initial=1)
        seen = []
        sig.on_change(lambda old, new: seen.append(new))
        sig.write(1)
        assert seen == []

    def test_delayed_write(self):
        sim = Simulator()
        sig = SimSignal(sim, "s", initial=0)
        sig.write(9, delay=3.0)
        assert sig.value == 0
        sim.run()
        assert sig.value == 9
        assert sim.now == 3.0

    def test_wait_change_in_process(self):
        sim = Simulator()
        sig = SimSignal(sim, "s", initial=0)
        got = []

        def consumer():
            value = yield sig.wait_change()
            got.append((sim.now, value))

        def producer():
            yield 2.0
            sig.write(7)
        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(2.0, 7)]


class TestClockAndWaveform:
    def test_clock_ticks(self):
        sim = Simulator()
        clock = Clock(sim, period=2.0)
        ticks = []
        clock.on_tick(lambda n: ticks.append((sim.now, n)))
        clock.start(max_cycles=3)
        sim.run()
        assert ticks == [(2.0, 1), (4.0, 2), (6.0, 3)]

    def test_clock_stop(self):
        sim = Simulator()
        clock = Clock(sim, period=1.0)
        clock.on_tick(lambda n: clock.stop() if n >= 2 else None)
        clock.start()
        sim.run()
        assert clock.cycles == 2

    def test_invalid_period(self):
        with pytest.raises(SimulationError):
            Clock(Simulator(), period=0)

    def test_waveform_records_and_queries(self):
        sim = Simulator()
        sig = SimSignal(sim, "s", initial=0)
        wave = Waveform(sig)
        sig.write(1, delay=1.0)
        sig.write(2, delay=3.0)
        sim.run()
        assert wave.changes() == ((0.0, 0), (1.0, 1), (3.0, 2))
        assert wave.value_at(0.5) == 0
        assert wave.value_at(2.0) == 1
        assert wave.value_at(10.0) == 2


class TestRunUntilBoundary:
    def test_event_exactly_at_until_is_processed(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("at"))
        sim.schedule(5.0 + 1e-9, lambda: fired.append("after"))
        sim.run(until=5.0)
        assert fired == ["at"]
        assert sim.now == 5.0

    def test_now_reaches_until_on_empty_queue(self):
        sim = Simulator()
        sim.run(until=7.5)
        assert sim.now == 7.5

    def test_run_into_the_past_raises(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=10.0)
        with pytest.raises(SimulationError):
            sim.run(until=5.0)

    def test_run_until_now_is_a_noop(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.run(until=3.0) == 3.0


class TestRecurringTick:
    def test_every_matches_generator_process_ordering(self):
        """every() and a yield-loop process interleave identically."""
        def run(use_every):
            sim = Simulator()
            order = []
            if use_every:
                sim.every(2.0, lambda: order.append(("tick", sim.now)),
                          until=6.0)
            else:
                def proc():
                    while sim.now < 6.0:
                        yield 2.0
                        order.append(("tick", sim.now))
                sim.process(proc())
            for at in (2.0, 3.0, 4.0, 6.0):
                sim.schedule(at, lambda at=at: order.append(("evt", at)))
            sim.run(until=6.0)
            return order

        assert run(True) == run(False)

    def test_tick_fires_at_inclusive_until(self):
        sim = Simulator()
        ticks = []
        sim.every(2.0, lambda: ticks.append(sim.now), until=6.0)
        sim.run(until=6.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_unbounded_tick_runs_until_horizon(self):
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=4.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0]

    def test_stop_disarms(self):
        sim = Simulator()
        ticks = []
        handle = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=2.0)
        handle.stop()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_non_positive_interval_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda: None)


class TestClosedSimulator:
    def test_close_is_idempotent_and_observable(self):
        sim = Simulator()
        assert not sim.is_closed
        sim.close()
        sim.close()
        assert sim.is_closed
        assert sim.is_quiescent

    def test_succeed_after_close_raises(self):
        sim = Simulator()
        event = sim.event()
        sim.close()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_schedule_after_close_raises(self):
        sim = Simulator()
        sim.close()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.every(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.process(iter(()))

    def test_close_drops_queued_work(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(True))
        sim.close()
        sim.run()
        assert not fired
