"""Corrupt-document regression tests for the XMI reader (PR 2).

Every way a document can be broken — truncation, duplicate ids,
dangling references, unparseable attribute values — must surface as an
:class:`XmiError` carrying location information, never as a bare
``KeyError``/``AttributeError``/``ValueError`` from the reader's
internals.
"""

import pytest

import repro.metamodel as mm
from repro import xmi
from repro.errors import XmiError
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.profiles import create_soc_profile


@pytest.fixture
def document_text():
    profile = create_soc_profile()
    model = mm.Model("corrupttest")
    pkg = model.create_package("design")
    make_soc("Top",
             masters=[make_traffic_generator("Cpu", period=5.0,
                                             profile=profile)],
             slaves=[(make_memory("Ram", size_bytes=256,
                                  profile=profile), "bus", 0, 256)],
             profile=profile, package=pkg)
    return xmi.write_model(model, profiles=[profile])


def corrupt(text: str, needle: str, replacement: str) -> str:
    assert needle in text, f"fixture lost its {needle!r} marker"
    return text.replace(needle, replacement, 1)


class TestTruncation:
    def test_truncated_document(self, document_text):
        with pytest.raises(XmiError) as excinfo:
            xmi.read_model(document_text[: len(document_text) // 2])
        assert "malformed" in str(excinfo.value)

    def test_empty_document(self):
        with pytest.raises(XmiError):
            xmi.read_model("")

    def test_wrong_root_tag(self):
        with pytest.raises(XmiError) as excinfo:
            xmi.read_model("<notxmi/>")
        assert "not an XMI document" in str(excinfo.value)


class TestDuplicateIds:
    def test_duplicate_id_reports_both_types(self, document_text):
        # reuse the first Port id on the second Port of the bus
        first = document_text.index('xmi:id="Port_')
        end = document_text.index('"', first + len('xmi:id="'))
        first_id = document_text[first:end + 1]
        second = document_text.index('xmi:id="Port_', end)
        second_end = document_text.index('"', second + len('xmi:id="'))
        broken = (document_text[:second] + first_id
                  + document_text[second_end + 1:])
        with pytest.raises(XmiError) as excinfo:
            xmi.read_model(broken)
        message = str(excinfo.value)
        assert "duplicate xmi:id" in message
        assert "Port" in message


class TestDanglingReferences:
    def test_dangling_ref_names_element_and_field(self, document_text):
        broken = corrupt(document_text, 'source="Pseudostate_',
                         'source="Ghost_9999" data-junk="Pseudostate_')
        with pytest.raises(XmiError) as excinfo:
            xmi.read_model(broken)
        message = str(excinfo.value)
        assert "dangling reference 'Ghost_9999'" in message
        assert "Transition" in message  # the element that held the ref
        assert "source" in message  # the field

    def test_dangling_reflist_entry(self, document_text):
        broken = corrupt(document_text, 'triggers="SignalEvent_',
                         'triggers="Missing_1 SignalEvent_')
        with pytest.raises(XmiError) as excinfo:
            xmi.read_model(broken)
        assert "Missing_1" in str(excinfo.value)

    def test_unknown_builtin(self, document_text):
        broken = corrupt(document_text, 'type="builtin:Integer"',
                         'type="builtin:Quaternion"')
        with pytest.raises(XmiError) as excinfo:
            xmi.read_model(broken)
        assert "Quaternion" in str(excinfo.value)


class TestBadAttributeValues:
    def test_bad_float_is_located(self, document_text):
        broken = corrupt(document_text, 'after="5.0"',
                         'after="half-past-nine"')
        with pytest.raises(XmiError) as excinfo:
            xmi.read_model(broken)
        message = str(excinfo.value)
        assert "after" in message and "half-past-nine" in message
        assert "TimeEvent" in message

    def test_bad_int_is_located(self, document_text):
        broken = corrupt(document_text, 'literal="',
                         'literal="zero" data-old="')
        with pytest.raises(XmiError) as excinfo:
            xmi.read_model(broken)
        message = str(excinfo.value)
        assert "literal" in message and "zero" in message

    def test_bad_enum_lists_element(self, document_text):
        broken = corrupt(document_text, 'kind="initial"',
                         'kind="sideways"')
        with pytest.raises(XmiError) as excinfo:
            xmi.read_model(broken)
        message = str(excinfo.value)
        assert "sideways" in message
        assert "Pseudostate" in message

    def test_unknown_element_type(self, document_text):
        broken = corrupt(document_text, 'xmi:type="Port"',
                         'xmi:type="FluxCapacitor"')
        with pytest.raises(XmiError) as excinfo:
            xmi.read_model(broken)
        assert "FluxCapacitor" in str(excinfo.value)

    def test_missing_id(self, document_text):
        broken = corrupt(document_text, 'xmi:id="Port_', 'data-id="Port_')
        with pytest.raises(XmiError) as excinfo:
            xmi.read_model(broken)
        assert "xmi:id" in str(excinfo.value)


class TestBadApplications:
    def test_bad_values_json(self, document_text):
        assert 'values="' in document_text
        start = document_text.index('values="')
        end = document_text.index('"', start + len('values="'))
        broken = (document_text[:start] + 'values="{not json"'
                  + document_text[end + 1:])
        with pytest.raises(XmiError) as excinfo:
            xmi.read_model(broken)
        assert "values JSON" in str(excinfo.value)

    def test_application_to_missing_element(self, document_text):
        broken = corrupt(document_text, ' element="',
                         ' element="Ghost_1" data-old="')
        with pytest.raises(XmiError) as excinfo:
            xmi.read_model(broken)
        assert "application" in str(excinfo.value)


class TestGoodDocumentStillReads:
    def test_round_trip_unaffected(self, document_text):
        document = xmi.read_model(document_text)
        assert document.model is not None
        assert document.model.name == "corrupttest"
        assert document.profiles
