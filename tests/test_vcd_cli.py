"""Tests for VCD export and the command-line interface."""

import os

import pytest

import repro.metamodel as mm
from repro import xmi
from repro.cli import main
from repro.errors import SimulationError
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.profiles import create_soc_profile
from repro.simulation import SimSignal, Simulator, Waveform
from repro.simulation.vcd import dump_vcd, write_vcd


class TestVcd:
    def _waves(self):
        sim = Simulator()
        data = SimSignal(sim, "data", initial=0)
        valid = SimSignal(sim, "valid", initial=False)
        waves = [Waveform(data), Waveform(valid)]
        data.write(5, delay=1.0)
        valid.write(True, delay=1.0)
        data.write(-3, delay=4.0)
        valid.write(False, delay=6.0)
        sim.run()
        return waves

    def test_header_and_vars(self):
        text = dump_vcd(self._waves())
        assert "$timescale 1ns $end" in text
        assert "$var wire 32 ! data $end" in text
        assert '$var wire 32 " valid $end' in text
        assert "$enddefinitions $end" in text

    def test_time_ordered_changes(self):
        text = dump_vcd(self._waves())
        body = text.split("$enddefinitions $end")[1]
        times = [int(line[1:]) for line in body.splitlines()
                 if line.startswith("#")]
        assert times == sorted(times)
        assert times[0] == 0

    def test_value_encodings(self):
        text = dump_vcd(self._waves())
        assert "b101 !" in text            # 5
        assert 'b1 "' in text              # True
        # -3 in 32-bit two's complement has 30 leading ones
        assert "b" + "1" * 30 + "01 !" in text

    def test_string_and_real_values(self):
        sim = Simulator()
        state = SimSignal(sim, "state", initial="Idle")
        temperature = SimSignal(sim, "temp", initial=1.5)
        waves = [Waveform(state), Waveform(temperature)]
        state.write("Run Fast", delay=2.0)
        temperature.write(2.25, delay=3.0)
        sim.run()
        text = dump_vcd(waves)
        assert "sIdle !" in text
        assert "sRun_Fast !" in text
        assert 'r2.25 "' in text

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            dump_vcd([])

    def test_write_file(self, tmp_path):
        path = tmp_path / "wave.vcd"
        write_vcd(str(path), self._waves())
        assert path.read_text().startswith("$date")


@pytest.fixture
def model_file(tmp_path):
    profile = create_soc_profile()
    model = mm.Model("clitest")
    pkg = model.create_package("design")
    cpu = make_traffic_generator("Cpu", period=5.0, address_range=256,
                                 profile=profile)
    mem = make_memory("Ram", size_bytes=256, profile=profile)
    make_soc("Top", masters=[cpu], slaves=[(mem, "bus", 0, 256)],
             profile=profile, package=pkg)
    path = tmp_path / "model.xmi"
    xmi.write_file(str(path), model, profiles=[profile])
    return str(path)


class TestCli:
    def test_info(self, model_file, capsys):
        assert main(["info", model_file]) == 0
        output = capsys.readouterr().out
        assert "model: clitest" in output
        assert "Component" in output

    def test_validate_clean(self, model_file, capsys):
        assert main(["validate", model_file]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_validate_reports_errors(self, tmp_path, capsys):
        model = mm.Model("bad")
        abstract = model.add(mm.UmlClass("A", is_abstract=True))
        model.add(mm.InstanceSpecification("a0", abstract))
        path = tmp_path / "bad.xmi"
        xmi.write_file(str(path), model)
        assert main(["validate", str(path)]) == 1

    def test_generate(self, model_file, tmp_path, capsys):
        output_dir = str(tmp_path / "gen")
        assert main(["generate", model_file, "--backend", "verilog",
                     "-o", output_dir]) == 0
        files = os.listdir(output_dir)
        assert any(name.endswith(".v") for name in files)
        assert "0 invalid" in capsys.readouterr().out

    def test_transform(self, model_file, tmp_path, capsys):
        out = str(tmp_path / "psm.xmi")
        assert main(["transform", model_file, "--platform", "hw",
                     "-o", out]) == 0
        document = xmi.read_file(out)
        assert document.model.name.endswith("rtl-synchronous")

    def test_simulate(self, model_file, capsys):
        assert main(["simulate", model_file, "--top", "design::Top",
                     "--until", "40"]) == 0
        output = capsys.readouterr().out
        assert "message(s) delivered" in output

    def test_diagram(self, model_file, capsys):
        assert main(["diagram", model_file, "--kind", "statemachine"]) == 0
        assert "@startuml" in capsys.readouterr().out

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["info", "/nonexistent.xmi"]) == 2

    def test_bad_top_fails_cleanly(self, model_file):
        assert main(["simulate", model_file, "--top",
                     "design::Ghost"]) == 2


class TestCliTestbench:
    def test_generate_with_testbench(self, model_file, tmp_path, capsys):
        output_dir = str(tmp_path / "tb")
        assert main(["generate", model_file, "--backend", "vhdl",
                     "--testbench", "-o", output_dir]) == 0
        files = os.listdir(output_dir)
        assert any(name.endswith("_tb.vhd") for name in files)
        assert "0 invalid" in capsys.readouterr().out
