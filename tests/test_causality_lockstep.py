"""Byte-identity of the causal span exports across engines (PR 9).

The span JSONL and Perfetto renderings are pure functions of the trace
stream, and the stream is lockstep-identical across the interpreted,
compiled and batched engines — so the exports must be byte-identical
too: plain, under a seeded fault campaign, and through supervised
rollback recovery (where the only engine-divergent data is the free
error text, which the exporters exclude by contract).
"""

import pytest

import repro.metamodel as mm
from repro.faults import FaultCampaign, FaultSpec
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.simulation import SystemSimulation
from repro.statemachines import StateMachine, TransitionKind

ENGINES = ("interpreted", "compiled", "batched")


def soc_top():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    return make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)])


def campaign(seed=1234):
    return FaultCampaign(
        [FaultSpec("drop", signal="ReadResp", probability=0.25),
         FaultSpec("delay", signal="WriteAck", delay=3.0, jitter=2.0,
                   probability=0.3),
         FaultSpec("corrupt", signal="Write", field="addr", xor=0x4000,
                   window=(20, 60), max_count=5)],
        name="lockstep", seed=seed)


def make_fragile_top(fail_on="Poke"):
    part = mm.Component("Fragile")
    part.add_attribute("pings", mm.INTEGER, default=0)
    part.add_port("in", direction=mm.PortDirection.IN)
    machine = StateMachine("FragileBehavior")
    region = machine.region
    init = region.add_initial()
    idle = region.add_state("Idle")
    region.add_transition(init, idle)
    region.add_transition(idle, idle, trigger="Ping",
                          effect="pings = pings + 1;",
                          kind=TransitionKind.INTERNAL)
    region.add_transition(idle, idle, trigger=fail_on,
                          effect="x = undefined_name + 1;",
                          kind=TransitionKind.INTERNAL)
    part.add_behavior(machine, as_classifier_behavior=True)
    top = mm.Component("Top")
    top.add_part("frag", part)
    return top


def engine_kwargs(mode):
    if mode == "compiled":
        return {"compile": True}
    if mode == "batched":
        return {"engine": "batched"}
    return {}


def export(mode, until=120.0, faults=None, seed=None):
    with SystemSimulation(soc_top(), causality=True, faults=faults,
                          fault_seed=seed, **engine_kwargs(mode)) as sim:
        sim.run(until=until)
        causal = sim.observability.causal
        return {"spans": causal.to_span_jsonl(),
                "perfetto": causal.to_perfetto(),
                "edges": causal.edge_counts()}


def export_recovery(mode):
    sim = SystemSimulation(make_fragile_top(), causality=True,
                           on_part_error="restore",
                           checkpoint_interval=5.0,
                           **engine_kwargs(mode))
    with sim:
        sim.send("frag", "Ping", delay=1.0)
        sim.send("frag", "Ping", delay=2.0)
        sim.send("frag", "Poke", delay=7.0)
        sim.send("frag", "Ping", delay=9.0)
        sim.run(until=20.0)
        causal = sim.observability.causal
        return {"spans": causal.to_span_jsonl(),
                "perfetto": causal.to_perfetto()}


class TestPlainRuns:
    @pytest.fixture(scope="class")
    def exports(self):
        return {mode: export(mode) for mode in ENGINES}

    def test_spans_byte_identical(self, exports):
        assert exports["interpreted"]["spans"] \
            == exports["compiled"]["spans"] \
            == exports["batched"]["spans"]
        assert exports["interpreted"]["spans"].count("\n") > 100

    def test_perfetto_byte_identical(self, exports):
        assert exports["interpreted"]["perfetto"] \
            == exports["compiled"]["perfetto"] \
            == exports["batched"]["perfetto"]

    def test_edge_counts_identical_and_cross_part(self, exports):
        edges = exports["interpreted"]["edges"]
        assert edges == exports["compiled"]["edges"]
        assert edges == exports["batched"]["edges"]
        assert any("->" in edge for edge in edges["parts"])


class TestFaultedRuns:
    def test_campaign_exports_byte_identical(self):
        runs = {mode: export(mode, faults=campaign(), seed=7)
                for mode in ENGINES}
        assert runs["interpreted"] == runs["compiled"] \
            == runs["batched"]
        # faults appear in the stream, with provenance
        assert '"kind":"fault"' in runs["interpreted"]["spans"]

    def test_different_seeds_diverge(self):
        # sanity: the equality above is not vacuous
        first = export("interpreted", faults=campaign(), seed=1)
        second = export("interpreted", faults=campaign(), seed=2)
        assert first["spans"] != second["spans"]


class TestSupervisedRecovery:
    def test_rollback_exports_byte_identical(self):
        runs = {mode: export_recovery(mode) for mode in ENGINES}
        assert runs["interpreted"] == runs["compiled"] \
            == runs["batched"]
        # the recovery path is present — and survived the volatile-text
        # exclusion that makes the engines comparable
        assert '"kind":"part_restored"' in runs["interpreted"]["spans"]
        assert '"kind":"supervisor_decision"' \
            in runs["interpreted"]["spans"]
