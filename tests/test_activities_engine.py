"""Tests for the token-game execution engine."""

import pytest

from repro.activities import Activity, TokenEngine, explore
from repro.errors import ActivityError


def linear_activity():
    activity = Activity("linear")
    init = activity.add_initial()
    first = activity.add_action("first", "x = 1;")
    second = activity.add_action("second", "x = x + 1;")
    final = activity.add_final()
    activity.chain(init, first, second, final)
    return activity


class TestBasicExecution:
    def test_linear_run(self):
        engine = TokenEngine(linear_activity())
        engine.run()
        assert engine.finished
        assert engine.env["x"] == 2
        assert engine.fired_nodes == ["initial", "first", "second", "final"]

    def test_run_is_deterministic(self):
        order_a = TokenEngine(linear_activity())
        order_a.run()
        order_b = TokenEngine(linear_activity())
        order_b.run()
        assert order_a.fired_nodes == order_b.fired_nodes

    def test_quiescence_without_final(self):
        activity = Activity("open")
        init = activity.add_initial()
        action = activity.add_action("only")
        activity.chain(init, action)
        buffer = activity.add_buffer("buf")
        activity.flow(action, buffer)
        engine = TokenEngine(activity)
        engine.run()
        assert not engine.finished
        assert engine.tokens_in(buffer) == 1
        assert engine.is_quiescent

    def test_step_returns_none_when_stuck(self):
        engine = TokenEngine(linear_activity())
        engine.run()
        assert engine.step() is None

    def test_max_steps_guard(self):
        activity = Activity("loop")
        init = activity.add_initial()
        merge = activity.add_merge()
        a = activity.add_action("a")
        b = activity.add_action("b")
        activity.chain(init, merge, a, b)
        activity.flow(b, merge)
        engine = TokenEngine(activity)
        with pytest.raises(ActivityError):
            engine.run(max_steps=50)

    def test_action_implicitly_joins_inputs(self):
        activity = Activity("ij")
        init = activity.add_initial()
        a = activity.add_action("a")
        b = activity.add_action("b")
        activity.chain(init, a, b)
        activity.flow(b, a)  # a now needs tokens on BOTH inputs
        engine = TokenEngine(activity)
        engine.run()
        assert not engine.finished
        assert engine.fired_nodes == ["initial"]  # a never enabled


class TestDataFlow:
    def test_object_tokens_carry_values(self):
        activity = Activity("data")
        init = activity.add_initial()
        produce = activity.add_action("produce", "out = 21;")
        out_pin = produce.add_output_pin("out")
        consume = activity.add_action("consume", "result = val * 2;")
        in_pin = consume.add_input_pin("val")
        final = activity.add_final()
        activity.chain(init, produce)
        activity.flow(produce, consume)
        activity.object_flow(out_pin, in_pin)
        activity.flow(consume, final)
        engine = TokenEngine(activity)
        engine.run()
        assert engine.env["result"] == 42

    def test_default_behavior_passes_through(self):
        activity = Activity("pass")
        init = activity.add_initial()
        produce = activity.add_action("produce", "out = 9;")
        out_pin = produce.add_output_pin("out")
        relay = activity.add_action("relay")  # no behavior
        relay_in = relay.add_input_pin("v")
        relay_out = relay.add_output_pin("w")
        collect = activity.add_action("collect", "got = v2;")
        in2 = collect.add_input_pin("v2")
        final = activity.add_final()
        activity.chain(init, produce)
        activity.object_flow(out_pin, relay_in)
        activity.object_flow(relay_out, in2)
        activity.flow(produce, relay)
        activity.flow(relay, collect)
        activity.flow(collect, final)
        engine = TokenEngine(activity)
        engine.run()
        assert engine.env["got"] == 9

    def test_parameter_nodes(self):
        activity = Activity("params")
        source = activity.add_parameter_node("inputs", is_input=True)
        double = activity.add_action("double", "y = x * 2;")
        in_pin = double.add_input_pin("x")
        out_pin = double.add_output_pin("y")
        sink = activity.add_parameter_node("outputs", is_input=False)
        activity.object_flow(source, in_pin)
        activity.object_flow(out_pin, sink)
        engine = TokenEngine(activity, inputs={"inputs": [3, 5]})
        engine.run()
        assert engine.outputs["outputs"] == [6, 10]


class TestControlNodes:
    def _branching(self, guard_env):
        activity = Activity("branch")
        init = activity.add_initial()
        decision = activity.add_decision()
        hot = activity.add_action("hot")
        cold = activity.add_action("cold")
        merge = activity.add_merge()
        final = activity.add_final()
        activity.chain(init, decision)
        activity.flow(decision, hot, guard="temp > 50")
        activity.flow(decision, cold, guard="else")
        activity.flow(hot, merge)
        activity.flow(cold, merge)
        activity.flow(merge, final)
        engine = TokenEngine(activity, env=guard_env)
        engine.run()
        return engine

    def test_decision_routes_by_guard(self):
        assert "hot" in self._branching({"temp": 80}).fired_nodes
        assert "cold" in self._branching({"temp": 20}).fired_nodes

    def test_decision_callable_guard(self):
        activity = Activity("cg")
        init = activity.add_initial()
        decision = activity.add_decision()
        yes = activity.add_action("yes")
        no = activity.add_action("no")
        final = activity.add_final()
        activity.chain(init, decision)
        activity.flow(decision, yes, guard=lambda env, token: env["f"])
        activity.flow(decision, no, guard="else")
        activity.flow(yes, final)
        activity.flow(no, final)
        engine = TokenEngine(activity, env={"f": True})
        engine.run()
        assert "yes" in engine.fired_nodes

    def test_fork_join_synchronize(self):
        activity = Activity("fj")
        init = activity.add_initial()
        fork = activity.add_fork()
        left = activity.add_action("left", "l = 1;")
        right = activity.add_action("right", "r = 2;")
        join = activity.add_join()
        final = activity.add_final()
        activity.chain(init, fork)
        activity.flow(fork, left)
        activity.flow(fork, right)
        activity.flow(left, join)
        activity.flow(right, join)
        activity.flow(join, final)
        engine = TokenEngine(activity)
        engine.run()
        assert engine.finished
        assert engine.env == {"l": 1, "r": 2}
        assert engine.fired_nodes.index("join") > \
            engine.fired_nodes.index("left")
        assert engine.fired_nodes.index("join") > \
            engine.fired_nodes.index("right")

    def test_flow_final_sinks_one_branch(self):
        activity = Activity("ff")
        init = activity.add_initial()
        fork = activity.add_fork()
        work = activity.add_action("work")
        extra = activity.add_action("extra")
        flow_final = activity.add_flow_final()
        final = activity.add_final()
        activity.chain(init, fork)
        activity.flow(fork, work)
        activity.flow(fork, extra)
        activity.flow(extra, flow_final)
        activity.flow(work, final)
        engine = TokenEngine(activity)
        engine.run()
        assert engine.finished

    def test_activity_final_clears_all_tokens(self):
        activity = Activity("af")
        init = activity.add_initial()
        fork = activity.add_fork()
        fast = activity.add_action("fast")
        slow_a = activity.add_action("slow_a")
        slow_b = activity.add_action("slow_b")
        final = activity.add_final()
        activity.chain(init, fork)
        activity.flow(fork, fast)
        activity.flow(fork, slow_a)
        activity.flow(slow_a, slow_b)
        activity.flow(fast, final)
        activity.flow(slow_b, final)
        engine = TokenEngine(activity)
        # deterministic scheduler fires in insertion order; run to end
        engine.run()
        assert engine.finished
        assert engine.marking_counts() == ()

    def test_buffer_capacity_respected(self):
        activity = Activity("cap")
        init = activity.add_initial()
        feed = activity.add_action("feed")
        buffer = activity.add_buffer("buf", upper_bound=1)
        activity.chain(init, feed)
        activity.flow(feed, buffer)
        engine = TokenEngine(activity)
        engine.run()
        assert engine.tokens_in(buffer) == 1


class TestEvents:
    def test_accept_event_blocks_until_delivery(self):
        activity = Activity("ev")
        init = activity.add_initial()
        accept = activity.add_accept_event("irq")
        handle = activity.add_action("handle", "count = count + 1;")
        final = activity.add_final()
        activity.chain(init, accept, handle, final)
        engine = TokenEngine(activity, env={"count": 0})
        engine.run()
        assert not engine.finished
        engine.deliver("irq")
        engine.run()
        assert engine.finished
        assert engine.env["count"] == 1

    def test_send_signal_action_routes_to_sink(self):
        received = []
        activity = Activity("send")
        init = activity.add_initial()
        send = activity.add_send_signal("notify", signal="Done")
        final = activity.add_final()
        activity.chain(init, send, final)
        engine = TokenEngine(activity, signal_sink=received.append)
        engine.run()
        assert received[0].signal == "Done"


class TestExplore:
    def test_explore_contains_run_trace(self):
        activity = linear_activity()
        reachable = explore(activity)
        engine = TokenEngine(activity)
        seen = {engine.marking_counts()}
        while engine.step() is not None:
            seen.add(engine.marking_counts())
        assert seen <= reachable

    def test_explore_bounded(self):
        activity = Activity("gen")
        init = activity.add_initial()
        a = activity.add_action("a")
        b = activity.add_action("b")
        activity.chain(init, a, b)
        activity.flow(b, a)  # infinite loop but finite markings
        reachable = explore(activity, max_markings=100)
        assert len(reachable) <= 100
