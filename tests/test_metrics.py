"""Tests for model metrics and productivity measures."""

import pytest

import repro.metamodel as mm
from repro import statemachines as st
from repro.activities import Activity
from repro.metrics import (
    abstraction_report,
    activity_branching,
    coupling,
    element_counts,
    generated_loc,
    inheritance_depth,
    model_loc_equivalent,
    model_size,
    productivity_index,
    reuse_report,
    state_machine_cyclomatic,
    summary,
)


class TestSizeMetrics:
    def test_model_size_counts_all(self, simple_model):
        assert model_size(simple_model) == \
            len(list(simple_model.all_owned()))

    def test_element_counts(self, simple_model):
        counts = element_counts(simple_model)
        assert counts["Component"] == 2

    def test_loc_equivalent_grows_with_content(self):
        small = mm.Model("s")
        small.add(mm.UmlClass("C"))
        big = mm.Model("b")
        cls = big.add(mm.UmlClass("C"))
        for index in range(10):
            cls.add_attribute(f"a{index}", mm.INTEGER)
        assert model_loc_equivalent(big) > model_loc_equivalent(small)

    def test_asl_bodies_add_lines(self):
        model = mm.Model("m")
        cls = model.add(mm.UmlClass("C"))
        op = cls.add_operation("f")
        before = model_loc_equivalent(model)
        op.set_body("x = 1;\ny = 2;\nreturn x + y;")
        assert model_loc_equivalent(model) >= before + 3

    def test_cyclomatic_for_machines(self, toggle_machine):
        assert state_machine_cyclomatic(toggle_machine) >= 1
        # adding a transition raises complexity
        region = toggle_machine.region
        before = state_machine_cyclomatic(toggle_machine)
        region.add_transition(toggle_machine.find_state("On"),
                              toggle_machine.find_state("Off"),
                              trigger="fault")
        assert state_machine_cyclomatic(toggle_machine) == before + 1

    def test_activity_branching(self):
        activity = Activity("a")
        init = activity.add_initial()
        decision = activity.add_decision()
        x, y = activity.add_action("x"), activity.add_action("y")
        merge = activity.add_merge()
        final = activity.add_final()
        activity.chain(init, decision)
        activity.flow(decision, x)
        activity.flow(decision, y)
        activity.flow(x, merge)
        activity.flow(y, merge)
        activity.flow(merge, final)
        assert activity_branching(activity) == 2.0
        linear = Activity("l")
        assert activity_branching(linear) == 0.0

    def test_inheritance_depth(self):
        a, b, c = (mm.UmlClass(n) for n in "ABC")
        b.add_generalization(a)
        c.add_generalization(b)
        assert inheritance_depth(a) == 0
        assert inheritance_depth(c) == 2

    def test_coupling(self):
        a, b, c = (mm.UmlClass(n) for n in "ABC")
        a.add_attribute("b_ref", b)
        a.add_dependency(c)
        assert coupling(a) == 2

    def test_summary_keys(self, simple_model):
        bundle = summary(simple_model)
        assert {"elements", "model_loc", "classifiers"} <= set(bundle)


class TestProductivity:
    def test_generated_loc_skips_comments_and_blanks(self):
        text = "\n".join([
            "-- header", "// c comment", "# py", "", "real line;",
            "another;",
        ])
        assert generated_loc(text) == 2

    def test_abstraction_report(self, simple_model):
        report = abstraction_report(simple_model, {
            "vhdl": "line1;\nline2;\nline3;\n",
            "verilog": "only;\n",
        })
        assert report.total_generated == 4
        assert report.expansion_factor > 0
        assert report.model_elements == model_size(simple_model)

    def test_reuse_report(self):
        library = mm.Package("lib")
        fifo = library.add(mm.Component("Fifo"))
        custom = mm.Component("Custom")
        system = mm.Component("Sys")
        system.add_part("f1", fifo)
        system.add_part("f2", fifo)
        system.add_part("c", custom)
        report = reuse_report(system, library)
        assert report.total_parts == 3
        assert report.library_parts == 2
        assert report.distinct_library_types == 1
        assert report.reuse_ratio == pytest.approx(2 / 3)

    def test_productivity_index(self):
        assert productivity_index(100, 1000) > 1
        assert productivity_index(0, 1000) == 0.0
