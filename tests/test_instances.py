"""Unit tests for instance specifications, slots and links."""

import pytest

import repro.metamodel as mm
from repro.errors import ModelError


@pytest.fixture
def cpu_class():
    cls = mm.UmlClass("Cpu")
    cls.add_attribute("freq", mm.INTEGER, default=100)
    cls.add_attribute("cores", mm.INTEGER, multiplicity=mm.Multiplicity(1, 4))
    return cls


class TestSlots:
    def test_set_and_read_slot(self, cpu_class):
        instance = mm.InstanceSpecification("cpu0", cpu_class)
        instance.set_slot("freq", 800)
        assert instance.slot_value("freq") == 800

    def test_default_value_fallback(self, cpu_class):
        instance = mm.InstanceSpecification("cpu0", cpu_class)
        assert instance.slot_value("freq") == 100

    def test_missing_slot_default_argument(self, cpu_class):
        instance = mm.InstanceSpecification("cpu0", cpu_class)
        assert instance.slot_value("cores", default="n/a") == "n/a"

    def test_multi_value_slot(self, cpu_class):
        instance = mm.InstanceSpecification("cpu0", cpu_class)
        instance.set_slot("cores", 1, 2, 3)
        assert instance.slot_value("cores") == (1, 2, 3)

    def test_multiplicity_violation_rejected(self, cpu_class):
        instance = mm.InstanceSpecification("cpu0", cpu_class)
        with pytest.raises(ModelError):
            instance.set_slot("cores", 1, 2, 3, 4, 5)

    def test_unknown_feature_rejected(self, cpu_class):
        instance = mm.InstanceSpecification("cpu0", cpu_class)
        with pytest.raises(ModelError):
            instance.set_slot("ghost", 1)

    def test_slot_replacement(self, cpu_class):
        instance = mm.InstanceSpecification("cpu0", cpu_class)
        instance.set_slot("freq", 1)
        instance.set_slot("freq", 2)
        assert instance.slot_value("freq") == 2
        assert len(instance.slots) == 1

    def test_inherited_attribute_slot(self):
        base = mm.UmlClass("Base")
        base.add_attribute("id", mm.INTEGER)
        derived = mm.UmlClass("Derived")
        derived.add_generalization(base)
        instance = mm.InstanceSpecification("d0", derived)
        instance.set_slot("id", 7)
        assert instance.slot_value("id") == 7

    def test_as_dict(self, cpu_class):
        instance = mm.InstanceSpecification("cpu0", cpu_class)
        instance.set_slot("freq", 42)
        assert instance.as_dict() == {"freq": 42}


class TestLinks:
    def test_link_participants_validated(self):
        cpu, mem = mm.UmlClass("Cpu"), mm.UmlClass("Mem")
        assoc = mm.associate(cpu, mem)
        cpu0 = mm.InstanceSpecification("cpu0", cpu)
        mem0 = mm.InstanceSpecification("mem0", mem)
        # member end order: (mem end, cpu end)
        link = mm.Link(assoc, mem0, cpu0)
        assert link.participants == (mem0, cpu0)

    def test_wrong_participant_count(self):
        cpu, mem = mm.UmlClass("Cpu"), mm.UmlClass("Mem")
        assoc = mm.associate(cpu, mem)
        cpu0 = mm.InstanceSpecification("cpu0", cpu)
        with pytest.raises(ModelError):
            mm.Link(assoc, cpu0)

    def test_type_conformance_checked(self):
        cpu, mem, other = (mm.UmlClass(n) for n in ("Cpu", "Mem", "Other"))
        assoc = mm.associate(cpu, mem)
        wrong = mm.InstanceSpecification("x", other)
        cpu0 = mm.InstanceSpecification("cpu0", cpu)
        with pytest.raises(ModelError):
            mm.Link(assoc, wrong, cpu0)

    def test_subtype_participant_allowed(self):
        base, mem = mm.UmlClass("Base"), mm.UmlClass("Mem")
        derived = mm.UmlClass("Derived")
        derived.add_generalization(base)
        assoc = mm.associate(base, mem)
        derived0 = mm.InstanceSpecification("d", derived)
        mem0 = mm.InstanceSpecification("m", mem)
        link = mm.Link(assoc, mem0, derived0)
        assert link.participants[1] is derived0
