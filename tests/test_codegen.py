"""Tests for the code generators: all four backends + transpilers."""

import pytest

import repro.metamodel as mm
from repro import asl
from repro.codegen import (
    analyze_machine,
    check_python,
    check_systemc,
    check_verilog,
    check_vhdl,
    collect_assigned_names,
    collect_sends,
    generate_all,
    python_gen,
    sanitize,
    systemc,
    to_c_expression,
    to_python_statements,
    to_vhdl_expression,
    verilog,
    vhdl,
)
from repro.codegen.transpile import Untranslatable
from repro.errors import CodegenError
from repro.statemachines import (
    StateMachine,
    StateMachineRuntime,
    TransitionKind,
)


def build_counter_class():
    cls = mm.UmlClass("Counter", is_active=True)
    cls.add_attribute("count", mm.INTEGER, default=0)
    cls.add_attribute("timeouts", mm.INTEGER, default=0)
    machine = StateMachine("ctr")
    region = machine.region
    init = region.add_initial()
    idle = region.add_state("Idle")
    run = region.add_state("Run")
    region.add_transition(init, idle)
    region.add_transition(idle, run, trigger="go", guard="count < 3",
                          effect='count = count + 1; '
                                 'send Started(n=count) to "out";')
    region.add_transition(run, idle, trigger="done")
    region.add_transition(run, idle, after=5.0,
                          effect="timeouts = timeouts + 1;")
    cls.add_behavior(machine, as_classifier_behavior=True)
    return cls


class TestHelpers:
    def test_sanitize_keywords(self):
        assert sanitize("process", "vhdl") == "process_x"
        assert sanitize("class", "python") == "class_x"
        assert sanitize("my-sig 2", "verilog") == "my_sig_2"
        assert sanitize("9lives") == "_9lives"

    def test_collect_sends(self):
        sends = collect_sends(
            'if (x) { send A(v=1) to "p"; } send B();')
        assert sends == [("A", ("v",), "p"), ("B", (), None)]
        assert collect_sends(None) == []
        assert collect_sends("not valid asl (((") == []

    def test_collect_assigned_names(self):
        names = collect_assigned_names(
            "x = 1; if (y) { z = 2; } while (a) { b = 3; }")
        assert names == {"x", "z", "b"}

    def test_analyze_machine_view(self):
        cls = build_counter_class()
        machine = cls.classifier_behavior
        view = analyze_machine(machine, cls)
        assert set(view.states) == {"Idle", "Run"}
        assert view.initial == "Idle"
        assert view.triggers == ["done", "go"]
        assert ("out", "Started") in view.outputs
        assert ("count", 0) in view.registers
        timed = [t for t in view.transitions if t.after_cycles]
        assert timed and timed[0].after_cycles == 5


class TestExpressionTranspilers:
    def test_c_expression(self):
        assert to_c_expression("a + b * 2") == "(a + (b * 2))"
        assert to_c_expression("not (x and y)") == "(! (x && y))"
        assert to_c_expression("a != b or c <= 1") == \
            "((a != b) || (c <= 1))"

    def test_vhdl_expression(self):
        assert to_vhdl_expression("a == b") == "(a = b)"
        assert to_vhdl_expression("a != b") == "(a /= b)"
        assert to_vhdl_expression("x % 4") == "(x mod 4)"
        assert to_vhdl_expression("not done") == "(not done)"

    def test_event_fields_renamed(self):
        assert to_c_expression("event.value > 1") == "(ev_value > 1)"

    def test_untranslatable_raises(self):
        with pytest.raises(Untranslatable):
            to_c_expression("len(q) > 0")
        with pytest.raises(Untranslatable):
            to_vhdl_expression('"text"')
        with pytest.raises(Untranslatable):
            to_c_expression("x in list")

    def test_python_statements_complete(self):
        lines = to_python_statements(
            "x = x + 1; if (x > 2) { send Hit(v=x) to \"p\"; }",
            self_names={"x"})
        code = "\n".join(lines)
        assert "self.x = (self.x + 1)" in code
        assert "self._send('Hit', 'p', v=self.x)" in code

    def test_python_integer_division_semantics(self):
        lines = to_python_statements("y = a / b;", self_names=set())
        assert "_asl_div" in lines[0]


class TestBackends:
    @pytest.fixture
    def files(self):
        cls = build_counter_class()
        model = mm.Model("m")
        pkg = model.create_package("p")
        comp = pkg.add(mm.Component("Wrap"))
        # move the machine onto a component for the HDL backends
        counter = pkg.add(build_counter_class())
        return generate_all(model)

    def test_vhdl_structure(self):
        cls = build_counter_class()
        text = vhdl.generate_component(cls)
        assert check_vhdl(text) == []
        assert "entity Counter is" in text
        assert "ev_go : in std_logic" in text
        # port 'out' collides with the VHDL keyword and is sanitized
        assert "out_x_started : out std_logic" in text
        assert "signal count : integer := 0;" in text
        assert "timer >= 5" in text
        assert "(count < 3)" in text

    def test_verilog_structure(self):
        cls = build_counter_class()
        text = verilog.generate_component(cls)
        assert check_verilog(text) == []
        assert "module counter (" in text
        assert "input wire ev_go" in text
        assert "output reg out_started" in text
        assert "timer >= 32'd5" in text

    def test_systemc_structure(self):
        cls = build_counter_class()
        text = systemc.generate_component(cls)
        assert check_systemc(text) == []
        assert "SC_MODULE(Counter)" in text
        assert "sc_in<bool> ev_go;" in text
        assert "void Counter::step()" in text

    def test_untranslatable_guard_becomes_comment(self):
        cls = mm.UmlClass("Q", is_active=True)
        machine = StateMachine("q")
        region = machine.region
        init = region.add_initial()
        a, b = region.add_state("A"), region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b, trigger="go", guard="len(q) > 0")
        cls.add_behavior(machine, as_classifier_behavior=True)
        for backend, checker in ((vhdl, check_vhdl),
                                 (verilog, check_verilog),
                                 (systemc, check_systemc)):
            text = backend.generate_component(cls)
            assert checker(text) == [], backend.__name__
            assert "len(q) > 0" in text  # preserved as comment

    def test_structural_component_generates(self):
        comp = mm.Component("Glue")
        comp.add_port("a", direction=mm.PortDirection.IN)
        text = vhdl.generate_component(comp)
        assert check_vhdl(text) == []
        assert "structural component" in text

    def test_register_map_comment(self):
        from repro.profiles import apply_stereotype, create_soc_profile

        prof = create_soc_profile()
        cls = build_counter_class()
        apply_stereotype(cls.member("count"), prof.stereotype("Register"),
                         address=0, width=32)
        text = vhdl.generate_component(cls)
        assert "register map" in text
        assert "0x0000" in text

    def test_generate_all_backends(self):
        model = mm.Model("m")
        pkg = model.create_package("p")
        pkg.add(build_counter_class())
        wrap = pkg.add(mm.Component("Shell"))
        out = generate_all(model)
        assert set(out) == {"vhdl", "verilog", "systemc", "python"}
        assert "shell.vhd" in out["vhdl"]
        assert check_python(out["python"]["generated.py"]) == []

    def test_empty_scope_rejected(self):
        with pytest.raises(CodegenError):
            vhdl.generate(mm.Model("empty"))


class TestGeneratedPythonEquivalence:
    """The generated Python must behave exactly like the interpreter."""

    def test_event_sequence_equivalence(self):
        cls = build_counter_class()
        classes = python_gen.compile_module(cls)
        generated = classes["Counter"]()
        machine = cls.classifier_behavior
        runtime = StateMachineRuntime(
            machine, context={"count": 0, "timeouts": 0}).start()
        for event in ["go", "done", "go", "go", "done", "go", "noise"]:
            generated.dispatch(event)
            runtime.send(event)
            assert (generated.state,) == runtime.active_leaf_names()
            assert generated.count == runtime.context["count"]

    def test_timeout_equivalence(self):
        cls = build_counter_class()
        classes = python_gen.compile_module(cls)
        generated = classes["Counter"]()
        machine = cls.classifier_behavior
        runtime = StateMachineRuntime(
            machine, context={"count": 0, "timeouts": 0}).start()
        generated.dispatch("go")
        runtime.send("go")
        generated.advance(5)
        runtime.advance_time(5.0)
        assert (generated.state,) == runtime.active_leaf_names()
        assert generated.timeouts == runtime.context["timeouts"] == 1

    def test_sends_captured_in_outbox(self):
        cls = build_counter_class()
        classes = python_gen.compile_module(cls)
        collected = []
        generated = classes["Counter"](
            on_send=lambda s, t, a: collected.append((s, t, a)))
        generated.dispatch("go")
        assert collected == [("Started", "out", {"n": 1})]
        assert generated.outbox == [("Started", "out", {"n": 1})]

    def test_operations_with_bodies_generated(self):
        cls = mm.UmlClass("Alu")
        cls.add_attribute("acc", mm.INTEGER, default=0)
        add = cls.add_operation("add", mm.INTEGER)
        add.add_parameter("value", mm.INTEGER)
        add.set_body("acc = acc + value; return acc;")
        classes = python_gen.compile_module(cls)
        alu = classes["Alu"]()
        assert alu.add(5) == 5
        assert alu.add(3) == 8

    def test_guard_uses_event_payload(self):
        cls = mm.UmlClass("Th", is_active=True)
        machine = StateMachine("th")
        region = machine.region
        init = region.add_initial()
        a, b = region.add_state("A"), region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b, trigger="data",
                              guard="event.v > 10",
                              effect="last = event.v;")
        cls.add_behavior(machine, as_classifier_behavior=True)
        classes = python_gen.compile_module(cls)
        instance = classes["Th"]()
        instance.dispatch("data", v=3)
        assert instance.state == "A"
        instance.dispatch("data", v=30)
        assert instance.state == "B"
        assert instance.last == 30

    def test_hierarchical_machine_rejected(self):
        cls = mm.UmlClass("H", is_active=True)
        machine = StateMachine("h")
        region = machine.region
        init = region.add_initial()
        comp = region.add_state("Comp")
        comp.add_region()
        region.add_transition(init, comp)
        cls.add_behavior(machine, as_classifier_behavior=True)
        with pytest.raises(CodegenError):
            python_gen.generate_class(cls)


class TestValidators:
    def test_vhdl_validator_catches_imbalance(self):
        broken = "library ieee;\nentity X is\nbegin\n"
        assert check_vhdl(broken)

    def test_verilog_validator_catches_imbalance(self):
        assert check_verilog("module x (input a);\nbegin\n")

    def test_systemc_validator_catches_braces(self):
        assert check_systemc("#include <systemc.h>\nSC_MODULE(X) {")

    def test_python_validator(self):
        assert check_python("def f():\n    return 1\n") == []
        assert check_python("def broken(:\n") != []
