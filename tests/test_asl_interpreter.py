"""Tests for the ASL interpreter."""

import pytest

from repro import asl
from repro.errors import AslRuntimeError


class TestEvaluation:
    @pytest.mark.parametrize("source,expected", [
        ("1 + 2 * 3", 7),
        ("10 / 3", 3),            # integer division on ints
        ("10.0 / 4", 2.5),        # float division otherwise
        ("10 % 3", 1),
        ("-(4)", -4),
        ("not true", False),
        ("1 < 2 and 2 < 3", True),
        ("1 == 1 or missing", True),   # short-circuit skips undefined
        ('"ab" + "cd"', "abcd"),
        ("2 in [1, 2, 3]", True),
        ("len([1, 2])", 2),
        ("max(3, 9)", 9),
        ("abs(-5)", 5),
        ("sum([1, 2, 3])", 6),
    ])
    def test_expression(self, source, expected):
        assert asl.evaluate(source, {}) == expected

    def test_environment_reads(self):
        assert asl.evaluate("x * 2", {"x": 21}) == 42

    def test_undefined_variable(self):
        with pytest.raises(AslRuntimeError):
            asl.evaluate("ghost", {})

    def test_division_by_zero_wrapped(self):
        with pytest.raises(AslRuntimeError):
            asl.evaluate("1 / 0", {})

    def test_dict_attribute_access(self):
        assert asl.evaluate("cfg.width", {"cfg": {"width": 32}}) == 32

    def test_missing_dict_attribute(self):
        with pytest.raises(AslRuntimeError):
            asl.evaluate("cfg.ghost", {"cfg": {}})

    def test_index_errors_wrapped(self):
        with pytest.raises(AslRuntimeError):
            asl.evaluate("l[10]", {"l": [1]})


class TestExecution:
    def test_environment_mutation(self):
        env = asl.execute("x = 1; y = x + 1;", {})
        assert env == {"x": 1, "y": 2}

    def test_control_flow(self):
        result = asl.run("""
            total = 0;
            for i in range(10) {
                if (i % 2 == 0) { total = total + i; }
            }
            return total;
        """)
        assert result == 20

    def test_while_break_continue(self):
        result = asl.run("""
            i = 0; hits = 0;
            while (true) {
                i = i + 1;
                if (i % 2 == 0) { continue; }
                hits = hits + 1;
                if (i >= 9) { break; }
            }
            return hits;
        """)
        assert result == 5

    def test_nested_data_structures(self):
        env = asl.execute("""
            d = {};
            d.regs = [];
            append(d.regs, 1);
            append(d.regs, 2);
            first = pop(d.regs);
        """, {})
        assert env["first"] == 1
        assert env["d"] == {"regs": [2]}

    def test_send_collected_and_sunk(self):
        received = []
        asl.execute('send Irq(level=3) to "cpu";', {},
                    signal_sink=received.append)
        assert received[0].signal == "Irq"
        assert received[0].arguments == {"level": 3}
        assert received[0].target == "cpu"

    def test_call_handler_hook(self):
        def handler(name, args):
            assert name == "read_reg"
            return args[0] * 10
        result = asl.run("return read_reg(7);", call_handler=handler)
        assert result == 70

    def test_unknown_operation_without_handler(self):
        with pytest.raises(AslRuntimeError):
            asl.run("mystery();")

    def test_callable_in_environment(self):
        result = asl.run("return double(4);",
                         {"double": lambda x: x * 2})
        assert result == 8

    def test_method_call_on_python_object(self):
        result = asl.run('return name.upper();', {"name": "soc"})
        assert result == "SOC"

    def test_print_captured(self):
        interpreter = asl.Interpreter({})
        interpreter.execute('print("hello", 1 + 1);')
        assert interpreter.output == ["hello 2"]

    def test_runaway_loop_guard(self):
        interpreter = asl.Interpreter({}, max_steps=1000)
        with pytest.raises(AslRuntimeError):
            interpreter.execute("while (true) { x = 1; }")

    def test_break_outside_loop(self):
        with pytest.raises(AslRuntimeError):
            asl.run("break;")

    def test_return_stops_execution(self):
        env = {}
        asl.Interpreter(env).execute("x = 1; return; x = 2;")
        assert env["x"] == 1

    def test_parse_cache_transparent(self):
        asl.clear_caches()
        for _ in range(3):
            assert asl.run("return 1 + 1;") == 2
        asl.clear_caches()
