"""Unit tests for the state machine metamodel (structure + validate)."""

import pytest

from repro.errors import StateMachineError
from repro.statemachines import (
    FinalState,
    PseudostateKind,
    SignalEvent,
    State,
    StateMachine,
    TimeEvent,
    Transition,
    TransitionKind,
)


class TestStructure:
    def test_region_auto_created(self):
        machine = StateMachine("m")
        region = machine.region
        assert machine.regions == (region,)
        assert machine.region is region  # idempotent

    def test_multi_region_requires_explicit_access(self):
        machine = StateMachine("m")
        machine.add_region("a")
        machine.add_region("b")
        with pytest.raises(StateMachineError):
            _ = machine.region

    def test_duplicate_vertex_names_rejected(self):
        region = StateMachine("m").region
        region.add_state("S")
        with pytest.raises(StateMachineError):
            region.add_state("S")

    def test_single_initial_per_region(self):
        region = StateMachine("m").region
        region.add_initial()
        with pytest.raises(StateMachineError):
            region.add_initial("another")

    def test_composite_orthogonal_simple(self):
        region = StateMachine("m").region
        state = region.add_state("S")
        assert state.is_simple
        state.add_region()
        assert state.is_composite and not state.is_orthogonal
        state.add_region()
        assert state.is_orthogonal

    def test_final_state_cannot_nest(self):
        region = StateMachine("m").region
        final = region.add_final()
        with pytest.raises(StateMachineError):
            final.add_region()

    def test_ancestor_states(self):
        machine = StateMachine("m")
        outer = machine.region.add_state("Outer")
        inner_region = outer.add_region()
        inner = inner_region.add_state("Inner")
        leaf_region = inner.add_region()
        leaf = leaf_region.add_state("Leaf")
        assert leaf.ancestor_states() == (inner, outer)
        assert leaf.machine is machine

    def test_find_state_anywhere(self):
        machine = StateMachine("m")
        outer = machine.region.add_state("Outer")
        nested = outer.add_region().add_state("Nested")
        assert machine.find_state("Nested") is nested
        with pytest.raises(StateMachineError):
            machine.find_state("Ghost")


class TestTransitions:
    def test_trigger_forms(self):
        region = StateMachine("m").region
        a, b = region.add_state("A"), region.add_state("B")
        by_string = region.add_transition(a, b, trigger="go")
        assert isinstance(by_string.triggers[0], SignalEvent)
        timed = region.add_transition(a, b, after=3.0)
        assert isinstance(timed.triggers[0], TimeEvent)
        completion = region.add_transition(b, a)
        assert completion.is_completion

    def test_exclusive_trigger_forms(self):
        region = StateMachine("m").region
        a, b = region.add_state("A"), region.add_state("B")
        with pytest.raises(StateMachineError):
            region.add_transition(a, b, trigger="go", after=1.0)

    def test_internal_requires_self_loop(self):
        region = StateMachine("m").region
        a, b = region.add_state("A"), region.add_state("B")
        with pytest.raises(StateMachineError):
            Transition(a, b, kind=TransitionKind.INTERNAL)

    def test_negative_time_event_rejected(self):
        with pytest.raises(ValueError):
            TimeEvent(-1.0)

    def test_vertex_outgoing_incoming(self):
        region = StateMachine("m").region
        a, b = region.add_state("A"), region.add_state("B")
        transition = region.add_transition(a, b, trigger="go")
        assert transition in a.outgoing
        assert transition in b.incoming


class TestValidate:
    def _minimal(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        state = region.add_state("S")
        region.add_transition(init, state)
        return machine, region, init, state

    def test_valid_machine_passes(self):
        machine, *_ = self._minimal()
        machine.validate()

    def test_missing_initial_detected(self):
        machine = StateMachine("m")
        machine.region.add_state("S")
        with pytest.raises(StateMachineError):
            machine.validate()

    def test_guarded_initial_transition_rejected(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        state = region.add_state("S")
        region.add_transition(init, state, guard="x > 0")
        with pytest.raises(StateMachineError):
            machine.validate()

    def test_fork_arity_checked(self):
        machine, region, init, state = self._minimal()
        fork = region.add_pseudostate(PseudostateKind.FORK)
        region.add_transition(state, fork, trigger="go")
        other = region.add_state("T")
        region.add_transition(fork, other)
        with pytest.raises(StateMachineError):
            machine.validate()

    def test_join_arity_checked(self):
        machine, region, init, state = self._minimal()
        join = region.add_pseudostate(PseudostateKind.JOIN)
        target = region.add_state("T")
        region.add_transition(state, join)
        region.add_transition(join, target)
        with pytest.raises(StateMachineError):
            machine.validate()

    def test_cross_machine_transition_rejected(self):
        machine, region, init, state = self._minimal()
        foreign = StateMachine("other").region.add_state("F")
        region.add_transition(state, foreign, trigger="jump")
        with pytest.raises(StateMachineError):
            machine.validate()

    def test_deferrable_listing(self):
        state = State("S")
        state.defer("irq").defer("irq")
        assert state.deferrable == ["irq"]
