"""Byte-determinism of the observability outputs (PR 4).

The trace streams of the interpreted and compiled engines are already
lockstep-identical (test_trace_bus.py); everything PR 4 derives from
those streams — coverage reports, collapsed profiles, flight-recorder
dumps, metrics renderings — must therefore be byte-identical too.
These tests are the executable statement of that guarantee, including
under a seeded fault campaign.
"""

import pytest

from repro.faults import FaultCampaign, FaultSpec
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.observability import to_prometheus
from repro.simulation import SystemSimulation


def soc_top():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    return make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)])


def campaign(seed=1234):
    return FaultCampaign(
        [FaultSpec("drop", signal="ReadResp", probability=0.25),
         FaultSpec("delay", signal="WriteAck", delay=3.0, jitter=2.0,
                   probability=0.3),
         FaultSpec("corrupt", signal="Write", field="addr", xor=0x4000,
                   window=(20, 60), max_count=5)],
        name="lockstep", seed=seed)


def observe(compiled, until=120.0, faults=None, seed=None):
    """One instrumented run; returns the textual artifacts."""
    with SystemSimulation(soc_top(), compile=compiled, faults=faults,
                          fault_seed=seed, coverage=True, profile=True,
                          flight_recorder=128) as sim:
        sim.run(until=until)
        suite = sim.observability
        return {
            "coverage": suite.coverage_report().to_json(indent=2),
            "profile_time": "\n".join(suite.profile_lines("time")),
            "profile_steps": "\n".join(suite.profile_lines("steps")),
            "flight": suite.recorder.dump_text(sim, reason="lockstep",
                                               detail="end-of-run"),
        }


class TestLockstepArtifacts:
    @pytest.fixture(scope="class")
    def artifacts(self):
        return {compiled: observe(compiled) for compiled in (False, True)}

    def test_coverage_reports_byte_identical(self, artifacts):
        assert artifacts[False]["coverage"] == artifacts[True]["coverage"]
        assert '"total_percent"' in artifacts[False]["coverage"]

    def test_time_profiles_byte_identical(self, artifacts):
        assert artifacts[False]["profile_time"] \
            == artifacts[True]["profile_time"]
        assert artifacts[False]["profile_time"]  # non-trivial

    def test_step_profiles_byte_identical(self, artifacts):
        assert artifacts[False]["profile_steps"] \
            == artifacts[True]["profile_steps"]

    def test_flight_dumps_byte_identical(self, artifacts):
        assert artifacts[False]["flight"] == artifacts[True]["flight"]
        assert artifacts[False]["flight"].startswith('{"buffered"')


class TestLockstepUnderFaults:
    def test_campaign_artifacts_byte_identical(self):
        interpreted = observe(False, faults=campaign(), seed=7)
        compiled = observe(True, faults=campaign(), seed=7)
        assert interpreted == compiled
        # the dump embeds the injector RNG state — still identical
        assert '"injector_rng"' in interpreted["flight"]

    def test_different_seeds_diverge(self):
        # sanity: the equality above is not vacuous
        first = observe(False, faults=campaign(), seed=1)
        second = observe(False, faults=campaign(), seed=2)
        assert first["flight"] != second["flight"]


class TestRerunDeterminism:
    def test_same_mode_reruns_identical(self):
        assert observe(True) == observe(True)

    def test_prometheus_of_equal_coverage_identical(self):
        first = observe(False, until=60.0)
        second = observe(False, until=60.0)
        from repro.observability import CoverageReport

        snapshot = {"counters": {}, "histograms": {}, "observations": {}}
        assert to_prometheus(
            snapshot, coverage=CoverageReport.from_json(first["coverage"])) \
            == to_prometheus(
                snapshot, coverage=CoverageReport.from_json(
                    second["coverage"]))
