"""Tests for the profile mechanism and the SoC / UML-RT profiles."""

import pytest

import repro.metamodel as mm
from repro.errors import ProfileError
from repro.profiles import (
    Profile,
    apply_stereotype,
    applications_of,
    application_of,
    create_rt_profile,
    create_soc_profile,
    has_stereotype,
    rt_ports_compatible,
    stereotypes_of,
    tagged_value,
    unapply_stereotype,
    validate_applications,
)


class TestMechanism:
    def test_define_and_lookup(self):
        profile = Profile("P")
        stereotype = profile.define("Hw", extends=("Class",))
        assert profile.stereotype("Hw") is stereotype
        with pytest.raises(ProfileError):
            profile.define("Hw")
        with pytest.raises(ProfileError):
            profile.stereotype("Ghost")

    def test_applicability_by_metaclass(self):
        profile = Profile("P")
        port_only = profile.define("B", extends=("Port",))
        assert port_only.applicable_to(mm.Port("p"))
        assert not port_only.applicable_to(mm.UmlClass("C"))

    def test_class_alias_matches_umlclass(self):
        profile = Profile("P")
        stereotype = profile.define("S", extends=("Class",))
        assert stereotype.applicable_to(mm.UmlClass("C"))
        # Component subclasses UmlClass, so it also matches
        assert stereotype.applicable_to(mm.Component("K"))

    def test_apply_and_read_tags(self):
        profile = Profile("P")
        stereotype = profile.define("S", extends=("Class",))
        stereotype.add_tag("speed", int, default=10)
        cls = mm.UmlClass("C")
        application = apply_stereotype(cls, stereotype, speed=99)
        assert application.value("speed") == 99
        assert tagged_value(cls, "S", "speed") == 99

    def test_default_tag_value(self):
        profile = Profile("P")
        stereotype = profile.define("S", extends=("Class",))
        stereotype.add_tag("speed", int, default=10)
        cls = mm.UmlClass("C")
        application = apply_stereotype(cls, stereotype)
        assert application.value("speed") == 10

    def test_required_tag_enforced(self):
        profile = Profile("P")
        stereotype = profile.define("S", extends=("Class",))
        stereotype.add_tag("must", int, required=True)
        with pytest.raises(ProfileError):
            apply_stereotype(mm.UmlClass("C"), stereotype)

    def test_tag_type_checked(self):
        profile = Profile("P")
        stereotype = profile.define("S", extends=("Class",))
        stereotype.add_tag("n", int)
        with pytest.raises(ProfileError):
            apply_stereotype(mm.UmlClass("C"), stereotype, n="oops")

    def test_unknown_tag_rejected(self):
        profile = Profile("P")
        stereotype = profile.define("S", extends=("Class",))
        with pytest.raises(ProfileError):
            apply_stereotype(mm.UmlClass("C"), stereotype, ghost=1)

    def test_wrong_metaclass_rejected(self):
        profile = Profile("P")
        stereotype = profile.define("S", extends=("Port",))
        with pytest.raises(ProfileError):
            apply_stereotype(mm.UmlClass("C"), stereotype)

    def test_double_application_rejected(self):
        profile = Profile("P")
        stereotype = profile.define("S", extends=("Class",))
        cls = mm.UmlClass("C")
        apply_stereotype(cls, stereotype)
        with pytest.raises(ProfileError):
            apply_stereotype(cls, stereotype)

    def test_unapply(self):
        profile = Profile("P")
        stereotype = profile.define("S", extends=("Class",))
        cls = mm.UmlClass("C")
        apply_stereotype(cls, stereotype)
        unapply_stereotype(cls, stereotype)
        assert not stereotypes_of(cls)
        with pytest.raises(ProfileError):
            unapply_stereotype(cls, stereotype)

    def test_specialization_inherits_tags_and_name_matching(self):
        profile = Profile("P")
        base = profile.define("Hw", extends=("Class",))
        base.add_tag("area", float, default=0.0)
        derived = profile.define("Ip", extends=("Class",))
        derived.specialize(base)
        cls = mm.UmlClass("C")
        apply_stereotype(cls, derived, area=1.5)
        assert has_stereotype(cls, "Hw")
        assert tagged_value(cls, "Ip", "area") == 1.5
        assert derived.is_kind_of(base)
        assert not base.is_kind_of(derived)

    def test_specialization_cycle_rejected(self):
        profile = Profile("P")
        a = profile.define("A")
        b = profile.define("B")
        b.specialize(a)
        with pytest.raises(ProfileError):
            a.specialize(b)

    def test_set_value_type_checked(self):
        profile = Profile("P")
        stereotype = profile.define("S", extends=("Class",))
        stereotype.add_tag("n", int)
        application = apply_stereotype(mm.UmlClass("C"), stereotype)
        application.set_value("n", 4)
        assert application.value("n") == 4
        with pytest.raises(ProfileError):
            application.set_value("n", "bad")

    def test_constraints_run_through_specialization(self):
        profile = Profile("P")
        base = profile.define("Base", extends=("Class",))
        base.add_constraint(lambda e, a: "always broken")
        derived = profile.define("Derived", extends=("Class",))
        derived.specialize(base)
        cls = mm.UmlClass("C")
        apply_stereotype(cls, derived)
        assert validate_applications(cls)


class TestSocProfile:
    @pytest.fixture
    def soc(self):
        return create_soc_profile()

    def test_hardware_primitive_types_present(self, soc):
        assert soc.find_member("Bit", mm.PrimitiveType) is not None
        assert soc.find_member("Word", mm.PrimitiveType) is not None

    def test_processor_is_hw_module(self, soc):
        cpu = mm.Component("Cpu")
        apply_stereotype(cpu, soc.stereotype("Processor"))
        assert has_stereotype(cpu, "HwModule")

    def test_register_alignment_constraint(self, soc):
        cls = mm.UmlClass("C", is_active=True)
        reg = cls.add_attribute("r", mm.INTEGER)
        apply_stereotype(reg, soc.stereotype("Register"),
                         address=2, width=32)  # 2 not 4-aligned
        violations = validate_applications(cls)
        assert any("aligned" in v for v in violations)

    def test_register_width_constraint(self, soc):
        cls = mm.UmlClass("C", is_active=True)
        reg = cls.add_attribute("r", mm.INTEGER)
        apply_stereotype(reg, soc.stereotype("Register"),
                         address=0, width=24)
        assert any("width" in v for v in validate_applications(cls))

    def test_register_address_collision(self, soc):
        cls = mm.UmlClass("C", is_active=True)
        a = cls.add_attribute("a", mm.INTEGER)
        b = cls.add_attribute("b", mm.INTEGER)
        apply_stereotype(a, soc.stereotype("Register"), address=0)
        apply_stereotype(b, soc.stereotype("Register"), address=0)
        assert any("collides" in v for v in validate_applications(cls))

    def test_clean_registers_pass(self, soc):
        cls = mm.UmlClass("C", is_active=True)
        apply_stereotype(cls, soc.stereotype("HwModule"))
        a = cls.add_attribute("a", mm.INTEGER)
        b = cls.add_attribute("b", mm.INTEGER)
        apply_stereotype(a, soc.stereotype("Register"), address=0)
        apply_stereotype(b, soc.stereotype("Register"), address=4)
        assert validate_applications(cls) == []

    def test_hw_module_must_be_active(self, soc):
        passive = mm.UmlClass("P", is_active=False)
        apply_stereotype(passive, soc.stereotype("HwModule"))
        assert any("active" in v for v in validate_applications(passive))

    def test_bus_width_power_of_two(self, soc):
        bus = mm.Component("B")
        apply_stereotype(bus, soc.stereotype("HwBus"), width=48)
        assert any("power of two" in v
                   for v in validate_applications(bus))

    def test_memory_size_positive(self, soc):
        memory = mm.Component("M")
        apply_stereotype(memory, soc.stereotype("Memory"), size_bytes=0)
        assert any("positive" in v for v in validate_applications(memory))


class TestRtProfile:
    def test_port_compatibility(self):
        rt = create_rt_profile()
        a, b = mm.Port("a"), mm.Port("b")
        apply_stereotype(a, rt.stereotype("RTPort"), protocol="bus",
                         conjugated=False)
        apply_stereotype(b, rt.stereotype("RTPort"), protocol="bus",
                         conjugated=True)
        assert rt_ports_compatible(a, b)

    def test_same_orientation_incompatible(self):
        rt = create_rt_profile()
        a, b = mm.Port("a"), mm.Port("b")
        for port in (a, b):
            apply_stereotype(port, rt.stereotype("RTPort"),
                             protocol="bus", conjugated=False)
        assert not rt_ports_compatible(a, b)

    def test_protocol_mismatch_incompatible(self):
        rt = create_rt_profile()
        a, b = mm.Port("a"), mm.Port("b")
        apply_stereotype(a, rt.stereotype("RTPort"), protocol="x")
        apply_stereotype(b, rt.stereotype("RTPort"), protocol="y",
                         conjugated=True)
        assert not rt_ports_compatible(a, b)

    def test_protocol_signal_overlap_constraint(self):
        rt = create_rt_profile()
        proto = mm.Interface("P")
        apply_stereotype(proto, rt.stereotype("Protocol"),
                         incoming=["a", "b"], outgoing=["b"])
        assert any("both" in v for v in validate_applications(proto))
