"""Incremental recompilation (PR 8): pipeline stages as build-graph
nodes.  Cold runs build per-machine compile, per-machine flatten,
whole-model transform and per-unit codegen artifacts; warm processes
(simulated by reparsing the model and opening a fresh store handle on
the same directory) reuse them byte-identically; editing exactly one
machine or component rebuilds only its dependents — asserted through
``store.graph.counts()``."""

import os

import pytest

import repro.metamodel as mm
import repro.store as store_mod
from repro.codegen import generate_units
from repro.hw import make_memory, make_traffic_generator
from repro.mda import TransformCache, hardware_transformation
from repro.metamodel import Model, element_fingerprint
from repro.perf import PERF
from repro.profiles import create_soc_profile
from repro.profiles.core import apply_stereotype
from repro.statemachines import (
    StateMachine,
    compile_machine_cached,
    flatten_cached,
)
from repro.store import BUILT, ArtifactStore, using_store
from repro.xmi import read_model, write_model


@pytest.fixture(autouse=True)
def _isolated_store_state():
    os.environ.pop("REPRO_STORE", None)
    store_mod._ACTIVE = None
    yield
    os.environ.pop("REPRO_STORE", None)
    store_mod._ACTIVE = False


def chain_machine(name, states=2):
    """A linear machine with ASL guards/effects (so compiles transpile)."""
    machine = StateMachine(name)
    region = machine.region
    previous = region.add_state(f"{name}_S0")
    region.add_transition(region.add_initial(), previous)
    for index in range(1, states):
        nxt = region.add_state(f"{name}_S{index}")
        region.add_transition(previous, nxt, trigger="step",
                              guard="count < 10",
                              effect="count = count + 1;")
        previous = nxt
    return machine


def three_machine_model():
    model = Model("design")
    for name, states in (("Cpu", 2), ("Ram", 3), ("Dma", 4)):
        component = model.add(mm.Component(name))
        component.add_behavior(chain_machine(f"{name.lower()}_fsm",
                                             states),
                               as_classifier_behavior=True)
    return model


def machines_of(root):
    return sorted(root.descendants_of_type(StateMachine),
                  key=lambda machine: machine.name)


class TestIncrementalCompile:
    def test_edit_one_machine_rebuilds_only_it(self, tmp_path):
        model = three_machine_model()
        cold = ArtifactStore(tmp_path)
        with using_store(cold):
            for machine in machines_of(model):
                compile_machine_cached(machine)
        assert cold.graph.counts()["compile"] \
            == {"built": 3, "reused": 0}

        # a "new process": fresh objects (XMI reparse) + fresh handle
        warm_doc = read_model(write_model(model))
        warm = ArtifactStore(tmp_path)
        store_hits = PERF.counter("sm.compile_store_hits")
        with using_store(warm):
            for machine in machines_of(warm_doc.model):
                compile_machine_cached(machine)
        assert warm.graph.counts()["compile"] \
            == {"built": 0, "reused": 3}
        assert PERF.counter("sm.compile_store_hits") == store_hits + 3

        # edit exactly one machine; only it rebuilds
        target = next(machine for machine in machines_of(warm_doc.model)
                      if machine.name == "ram_fsm")
        target.region.add_state("Extra")
        after = ArtifactStore(tmp_path)
        with using_store(after):
            for machine in machines_of(warm_doc.model):
                compile_machine_cached(machine)
        assert after.graph.counts()["compile"] \
            == {"built": 1, "reused": 2}
        rebuilt = [node for node in after.graph.nodes
                   if node.status == BUILT]
        assert [node.label for node in rebuilt] == ["ram_fsm"]

    def test_dependents_of_names_the_rebuilt_machine(self, tmp_path):
        model = three_machine_model()
        store = ArtifactStore(tmp_path)
        target = machines_of(model)[0]
        with using_store(store):
            for machine in machines_of(model):
                compile_machine_cached(machine)
        fingerprint = element_fingerprint(target)
        dependents = store.graph.dependents_of(fingerprint)
        assert len(dependents) == 1
        assert dependents[0].label == target.name


class TestFlattenArtifacts:
    def test_warm_flatten_round_trips(self, tmp_path):
        model = Model("m")
        component = model.add(mm.Component("Cpu"))
        component.add_behavior(chain_machine("fsm", states=3),
                               as_classifier_behavior=True)
        machine = machines_of(model)[0]

        cold = ArtifactStore(tmp_path)
        with using_store(cold):
            flat_cold = flatten_cached(machine, context={"count": 0})
        assert cold.graph.counts()["flatten"] \
            == {"built": 1, "reused": 0}

        warm_doc = read_model(write_model(model))
        warm = ArtifactStore(tmp_path)
        with using_store(warm):
            flat_warm = flatten_cached(machines_of(warm_doc.model)[0],
                                       context={"count": 0})
        assert warm.graph.counts()["flatten"] \
            == {"built": 0, "reused": 1}
        assert flat_warm.initial == flat_cold.initial
        assert flat_warm.transitions == flat_cold.transitions
        assert flat_warm.state_labels == flat_cold.state_labels
        assert flat_warm.alphabet == flat_cold.alphabet

    def test_alphabet_and_context_key_the_artifact(self, tmp_path):
        model = Model("m")
        component = model.add(mm.Component("Cpu"))
        component.add_behavior(chain_machine("fsm", states=2),
                               as_classifier_behavior=True)
        machine = machines_of(model)[0]
        store = ArtifactStore(tmp_path)
        with using_store(store):
            flatten_cached(machine, context={"count": 0})
            flatten_cached(machine, context={"count": 5})
            flatten_cached(machine, alphabet=("step", "extra"),
                           context={"count": 0})
        assert len(store.ls("flatten")) == 3
        assert store.graph.built("flatten") == 3


def small_pim(name="pim", classes=3):
    profile = create_soc_profile()
    model = Model(name)
    for index in range(classes):
        cls = model.add(mm.UmlClass(f"Ip{index}"))
        cls.add_attribute("reg", default=index)
        apply_stereotype(cls, profile.stereotype("IpCore"), vendor="t")
    return model, profile


class TestTransformArtifacts:
    def test_warm_transform_is_byte_identical(self, tmp_path):
        pim, profile = small_pim()
        transformation = hardware_transformation()

        cold = ArtifactStore(tmp_path)
        with using_store(cold):
            first = transformation.transform_cached(
                pim, [profile], cache=TransformCache())
        assert cold.graph.counts()["transform"] \
            == {"built": 1, "reused": 0}

        # a fresh LRU misses in memory and falls to the disk artifact
        warm = ArtifactStore(tmp_path)
        with using_store(warm):
            second = transformation.transform_cached(
                pim, [profile], cache=TransformCache())
        assert warm.graph.counts()["transform"] \
            == {"built": 0, "reused": 1}
        assert write_model(second.psm, second.psm_profiles) \
            == write_model(first.psm, first.psm_profiles)
        assert second.trace == first.trace
        assert second.applications == first.applications
        assert second.completeness() == first.completeness()

    def test_transform_inputs_are_model_and_profile_fingerprints(
            self, tmp_path):
        pim, profile = small_pim()
        transformation = hardware_transformation()
        store = ArtifactStore(tmp_path)
        with using_store(store):
            transformation.transform_cached(pim, [profile],
                                            cache=TransformCache())
        key = transformation.cache_key(pim, [profile])
        node = store.graph.nodes[-1]
        assert node.kind == "transform"
        assert set(node.inputs) == {key[3], *key[4]}


def two_component_model():
    model = Model("design")
    package = model.create_package("design")
    package.add(make_traffic_generator("Cpu", period=2.0,
                                       address_range=0x100))
    package.add(make_memory("Ram", size_bytes=0x80))
    return model


class TestCodegenUnits:
    BACKENDS = ("vhdl", "python")

    def test_warm_units_are_byte_identical(self, tmp_path):
        model = two_component_model()
        cold = ArtifactStore(tmp_path)
        with using_store(cold):
            first = generate_units(model, backends=self.BACKENDS)
        assert cold.graph.counts()["codegen"] \
            == {"built": 4, "reused": 0}  # 2 backends x 2 components

        warm_doc = read_model(write_model(model))
        warm = ArtifactStore(tmp_path)
        with using_store(warm):
            second = generate_units(warm_doc.model,
                                    backends=self.BACKENDS)
        assert warm.graph.counts()["codegen"] \
            == {"built": 0, "reused": 4}
        assert second == first

    def test_edit_one_component_regenerates_only_its_units(self,
                                                           tmp_path):
        model = two_component_model()
        with using_store(ArtifactStore(tmp_path)):
            generate_units(model, backends=self.BACKENDS)

        cpu = next(component for component
                   in model.descendants_of_type(mm.Component)
                   if component.name == "Cpu")
        cpu.add_attribute("dbg", mm.INTEGER, default=1)
        after = ArtifactStore(tmp_path)
        with using_store(after):
            generate_units(model, backends=self.BACKENDS)
        assert after.graph.counts()["codegen"] \
            == {"built": 2, "reused": 2}  # Cpu per backend; Ram warm
        rebuilt = sorted(node.label for node in after.graph.nodes
                         if node.status == BUILT)
        assert all(label.endswith("Cpu") for label in rebuilt)

    def test_without_a_store_units_still_generate(self):
        model = two_component_model()
        units = generate_units(model, backends=("python",))
        assert set(units) == {"python"}
        assert all(files for files in units["python"].values())
