"""Memoized MDA transforms: hits, content invalidation, LRU eviction."""

import pytest

import repro.metamodel as mm
from repro.errors import TransformError
from repro.mda import (
    TransformCache,
    hardware_transformation,
    software_transformation,
)
from repro.metamodel import Model
from repro.profiles import create_soc_profile
from repro.profiles.core import apply_stereotype


def small_pim(name="pim", classes=3):
    profile = create_soc_profile()
    model = Model(name)
    for index in range(classes):
        cls = model.add(mm.UmlClass(f"Ip{index}"))
        cls.add_attribute("reg", default=index)
        apply_stereotype(cls, profile.stereotype("IpCore"), vendor="t")
    return model, profile


class TestTransformCache:
    def test_repeat_transform_is_a_hit(self):
        pim, profile = small_pim()
        transformation = hardware_transformation()
        cache = TransformCache()
        first = transformation.transform_cached(pim, [profile],
                                                cache=cache)
        second = transformation.transform_cached(pim, [profile],
                                                 cache=cache)
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_mutation_invalidates(self):
        pim, profile = small_pim()
        transformation = hardware_transformation()
        cache = TransformCache()
        first = transformation.transform_cached(pim, [profile],
                                                cache=cache)
        pim.add(mm.UmlClass("Extra"))
        second = transformation.transform_cached(pim, [profile],
                                                 cache=cache)
        assert second is not first
        assert cache.misses == 2

    def test_content_equal_touch_still_hits(self):
        """A write that leaves content unchanged re-fingerprints to the
        same key — the cache still hits."""
        pim, profile = small_pim()
        transformation = hardware_transformation()
        cache = TransformCache()
        first = transformation.transform_cached(pim, [profile],
                                                cache=cache)
        pim.name = pim.name + ""  # generation bump, same content
        assert transformation.transform_cached(
            pim, [profile], cache=cache) is first

    def test_different_transformations_do_not_collide(self):
        pim, profile = small_pim()
        cache = TransformCache()
        hw = hardware_transformation().transform_cached(pim, [profile],
                                                        cache=cache)
        sw = software_transformation().transform_cached(pim, [profile],
                                                        cache=cache)
        assert hw is not sw
        assert cache.misses == 2 and len(cache) == 2

    def test_lru_eviction(self):
        transformation = hardware_transformation()
        cache = TransformCache(max_entries=2)
        pims = [small_pim(name=f"pim{i}") for i in range(3)]
        results = [transformation.transform_cached(p, [pr], cache=cache)
                   for p, pr in pims]
        assert len(cache) == 2
        # pim0 was evicted: transforming it again misses
        again = transformation.transform_cached(pims[0][0], [pims[0][1]],
                                                cache=cache)
        assert again is not results[0]
        # pim2 is still cached
        assert transformation.transform_cached(
            pims[2][0], [pims[2][1]], cache=cache) is results[2]

    def test_result_matches_uncached_transform(self):
        pim, profile = small_pim()
        transformation = hardware_transformation()
        cached = transformation.transform_cached(pim, [profile],
                                                 cache=TransformCache())
        plain = transformation.transform(pim, profiles=[profile])
        assert cached.psm.summary() == plain.psm.summary()
        assert cached.applications == plain.applications
        assert cached.completeness() == plain.completeness()

    def test_zero_capacity_rejected(self):
        with pytest.raises(TransformError):
            TransformCache(max_entries=0)

    def test_default_cache_used_when_none_given(self):
        from repro.mda import DEFAULT_TRANSFORM_CACHE

        pim, profile = small_pim(name="default_cache_probe")
        transformation = hardware_transformation()
        before = DEFAULT_TRANSFORM_CACHE.misses
        transformation.transform_cached(pim, [profile])
        assert DEFAULT_TRANSFORM_CACHE.misses == before + 1
