"""Tests for submachine inlining, testbench generation and the PIC core."""

import pytest

import repro.metamodel as mm
from repro.codegen import check_verilog, check_vhdl
from repro.codegen.testbench import (
    generate_verilog_testbench,
    generate_vhdl_testbench,
)
from repro.errors import StateMachineError
from repro.hw import make_interrupt_controller, make_timer
from repro.statemachines import (
    PseudostateKind,
    StateMachine,
    StateMachineRuntime,
    clone_machine,
    connection_point,
    inline_submachine,
)


def build_handshake_library():
    """A reusable handshake behavior with a named exit point."""
    machine = StateMachine("Handshake")
    region = machine.region
    init = region.add_initial()
    wait = region.add_state("WaitReq")
    acking = region.add_state("Acking", entry="acks = acks + 1;")
    region.add_transition(init, wait)
    region.add_transition(wait, acking, trigger="req")
    done = region.add_pseudostate(PseudostateKind.EXIT_POINT, "done")
    region.add_transition(acking, done, trigger="fin")
    return machine


class TestCloneMachine:
    def test_clone_is_independent(self):
        original = build_handshake_library()
        clone = clone_machine(original)
        assert clone is not original
        assert {s.name for s in clone.all_states()} == \
            {s.name for s in original.all_states()}
        original_ids = {v.xmi_id for v in original.all_vertices()}
        clone_ids = {v.xmi_id for v in clone.all_vertices()}
        assert not original_ids & clone_ids

    def test_clone_of_owned_machine(self):
        owner = mm.UmlClass("Owner")
        machine = build_handshake_library()
        owner.add_behavior(machine)
        clone = clone_machine(machine)
        assert machine.owner is owner  # original untouched
        assert clone.owner is None

    def test_clone_executes_independently(self):
        original = build_handshake_library()
        clone = clone_machine(original)
        runtime = StateMachineRuntime(clone, context={"acks": 0}).start()
        runtime.send("req")
        assert runtime.in_state("Acking")
        assert runtime.context["acks"] == 1


class TestInlineSubmachine:
    def _host(self):
        library = build_handshake_library()
        host = StateMachine("Host")
        region = host.region
        init = region.add_initial()
        idle = region.add_state("Idle")
        engaged = region.add_state("Engaged")
        after = region.add_state("After")
        region.add_transition(init, idle)
        region.add_transition(idle, engaged, trigger="start")
        inline_submachine(engaged, library)
        exit_point = connection_point(engaged, "done")
        region.add_transition(exit_point, after)
        return host

    def test_inlined_behavior_runs(self):
        runtime = StateMachineRuntime(self._host(),
                                      context={"acks": 0}).start()
        runtime.send("start")
        assert runtime.active_leaf_names() == ("WaitReq",)
        runtime.send("req")
        assert runtime.context["acks"] == 1
        runtime.send("fin")
        assert runtime.active_leaf_names() == ("After",)

    def test_two_inlines_are_disjoint(self):
        library = build_handshake_library()
        hosts = []
        for index in range(2):
            host = StateMachine(f"H{index}")
            region = host.region
            init = region.add_initial()
            state = region.add_state("S")
            region.add_transition(init, state)
            inline_submachine(state, library)
            hosts.append(host)
        ids = [({v.xmi_id for v in h.all_vertices()}) for h in hosts]
        assert not ids[0] & ids[1]

    def test_multi_region_submachine_rejected(self):
        library = StateMachine("multi")
        library.add_region("a")
        library.add_region("b")
        host_state = StateMachine("h").region.add_state("S")
        with pytest.raises(StateMachineError):
            inline_submachine(host_state, library)

    def test_missing_connection_point(self):
        host = self._host()
        engaged = host.find_state("Engaged")
        with pytest.raises(StateMachineError):
            connection_point(engaged, "ghost")


class TestTestbenches:
    def test_vhdl_testbench_valid_and_complete(self):
        timer = make_timer()
        bench = generate_vhdl_testbench(timer)
        assert check_vhdl(bench) == []
        assert "entity Timer_tb is" in bench
        assert "ev_start" in bench and "ev_stop" in bench
        assert "dut : entity work.Timer" in bench

    def test_verilog_testbench_valid_and_complete(self):
        timer = make_timer()
        bench = generate_verilog_testbench(timer)
        assert check_verilog(bench) == []
        assert "module timer_tb ()" in bench
        assert "$finish" in bench
        assert "timer dut (" in bench

    def test_structural_component_bench(self):
        shell = mm.Component("Shell")
        bench = generate_vhdl_testbench(shell)
        assert check_vhdl(bench) == []


class TestInterruptController:
    @pytest.fixture
    def runtime(self):
        sink = []
        pic = make_interrupt_controller(lines=4)
        runtime = StateMachineRuntime(pic.classifier_behavior,
                                      context={"dispatched": 0},
                                      signal_sink=sink.append).start()
        runtime.sink = sink  # test convenience
        return runtime

    def test_single_irq_dispatched(self, runtime):
        runtime.send("Irq", line=1)
        assert runtime.sink[-1].signal == "Interrupt"
        assert runtime.sink[-1].arguments == {"line": 1}

    def test_priority_order_lowest_line_first(self, runtime):
        runtime.send("Irq", line=2)
        runtime.send("Irq", line=0)
        runtime.send("Irq", line=3)
        assert runtime.sink[-1].arguments == {"line": 2}  # first wins
        runtime.send("Ack", line=2)
        assert runtime.sink[-1].arguments == {"line": 0}
        runtime.send("Ack", line=0)
        assert runtime.sink[-1].arguments == {"line": 3}

    def test_handshake_blocks_until_ack(self, runtime):
        runtime.send("Irq", line=1)
        runtime.send("Irq", line=2)
        interrupts = [s for s in runtime.sink
                      if s.signal == "Interrupt"]
        assert len(interrupts) == 1

    def test_mask_gates_dispatch(self, runtime):
        runtime.send("Mask", line=1)
        runtime.send("Irq", line=1)
        assert not [s for s in runtime.sink if s.signal == "Interrupt"]
        runtime.send("Unmask", line=1)
        assert runtime.sink[-1].arguments == {"line": 1}

    def test_out_of_range_line_ignored(self, runtime):
        runtime.send("Irq", line=99)
        assert not runtime.sink

    def test_duplicate_irq_collapsed(self, runtime):
        runtime.send("Irq", line=1)
        runtime.send("Irq", line=1)  # already inflight: ignored
        runtime.send("Ack", line=1)
        interrupts = [s for s in runtime.sink
                      if s.signal == "Interrupt"]
        assert len(interrupts) == 1

    def test_in_library(self):
        from repro.hw import ip_library

        library = ip_library()
        assert library.find_member("Pic") is not None
