"""Lockstep equivalence of interpreted vs compiled execution under
fault injection (PR 2).

The injector sits above both state machine engines, so for the same
seeded campaign the two modes must produce identical message logs,
resilience reports, quarantine sets and final states — this module is
the executable statement of that guarantee.
"""

import json

import pytest

import repro.metamodel as mm
from repro.faults import FaultCampaign, FaultSpec
from repro.hw import (
    make_dma,
    make_memory,
    make_retry_master,
    make_soc,
    make_traffic_generator,
)
from repro.simulation import SystemSimulation
from repro.statemachines import StateMachine
from repro.statemachines.kernel import TransitionKind


def soc_top():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    return make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)])


def dma_top():
    top = mm.Component("T")
    dma = make_dma()
    memory = make_memory("M", size_bytes=256)
    p_dma = top.add_part("dma", dma)
    p_mem = top.add_part("mem", memory)
    top.connect(dma.port("mem"), memory.port("bus"), p_dma, p_mem,
                check=False)
    return top


CAMPAIGNS = {
    "mixed": FaultCampaign(
        [FaultSpec("drop", signal="ReadResp", probability=0.25),
         FaultSpec("duplicate", signal="Read", max_count=4),
         FaultSpec("corrupt", signal="Write", field="addr", xor=0x4000,
                   window=(20, 60), max_count=5),
         FaultSpec("delay", signal="WriteAck", delay=3.0, jitter=2.0,
                   probability=0.3),
         FaultSpec("reorder", signal="ReadResp", window=(80, 140))],
        name="mixed", seed=1234),
    "heavy-drop": FaultCampaign(
        [FaultSpec("drop", probability=0.5)], name="heavy", seed=77),
    "jittery": FaultCampaign(
        [FaultSpec("delay", delay=0.5, jitter=4.0, probability=0.8)],
        name="jittery", seed=3),
}


def fingerprint(sim):
    return {
        "log": list(sim.message_log),
        "states": sim.state_snapshot(),
        "contexts": {name: dict(sim.context_of(name))
                     for name, inst in sim.parts.items()
                     if inst.runtime is not None},
        "report": sim.resilience.to_json(),
        "quarantined": sim.quarantined_parts,
        "delivered": sim.messages_delivered,
        "dropped": sim.messages_dropped,
    }


def run_both(top_factory, until=150.0, **kwargs):
    results = []
    for compiled in (False, True):
        with SystemSimulation(top_factory(), compile=compiled,
                              **kwargs) as sim:
            sim.run(until=until)
            results.append(fingerprint(sim))
    return results


class TestLockstepUnderFaults:
    @pytest.mark.parametrize("name", sorted(CAMPAIGNS))
    def test_soc_traffic_is_bit_identical(self, name):
        interpreted, compiled = run_both(soc_top, faults=CAMPAIGNS[name])
        assert interpreted == compiled

    def test_dma_burst_under_faults(self):
        campaign = FaultCampaign(
            [FaultSpec("delay", signal="ReadResp", delay=1.5,
                       jitter=1.0, probability=0.5),
             FaultSpec("duplicate", signal="WriteAck", max_count=2)],
            seed=9)
        results = []
        for compiled in (False, True):
            with SystemSimulation(dma_top(), compile=compiled,
                                  faults=campaign) as sim:
                sim.send("dma", "Start", src=0, dst=64, length=8,
                         delay=1.0)
                sim.run(until=120.0)
                results.append(fingerprint(sim))
        assert results[0] == results[1]

    def test_retry_master_under_drop_faults(self):
        # drops of the Nak response force the timeout path of the retry
        # protocol — both engines must walk the same backoff chain
        campaign = FaultCampaign(
            [FaultSpec("drop", signal="Nak", probability=0.5)], seed=21)
        results = []
        for compiled in (False, True):
            master = make_retry_master("Rm", address=0x900, period=40.0,
                                       timeout=6.0, backoff=1.0)
            ram = make_memory("Ram", size_bytes=0x800)
            top = make_soc("Soc", masters=[master],
                           slaves=[(ram, "bus", 0, 0x800)])
            with SystemSimulation(top, compile=compiled,
                                  faults=campaign) as sim:
                sim.run(until=200.0)
                results.append(fingerprint(sim))
        assert results[0] == results[1]

    def test_same_seed_same_run_different_seed_diverges(self):
        spec = [FaultSpec("drop", signal="ReadResp", probability=0.4)]
        base = FaultCampaign(spec, seed=5)
        with SystemSimulation(soc_top(), faults=base) as first:
            first.run(until=100.0)
            one = fingerprint(first)
        with SystemSimulation(soc_top(), faults=base) as second:
            second.run(until=100.0)
            two = fingerprint(second)
        assert one == two
        with SystemSimulation(soc_top(), faults=base,
                              fault_seed=6) as third:
            third.run(until=100.0)
            other = fingerprint(third)
        assert other["report"] != one["report"]


class TestLockstepQuarantine:
    def top_with_fragile(self):
        top = soc_top()
        fragile = mm.Component("Fragile")
        fragile.add_attribute("pings", mm.INTEGER, default=0)
        fragile.add_port("in", direction=mm.PortDirection.IN)
        machine = StateMachine("FragileBehavior")
        region = machine.region
        init = region.add_initial()
        idle = region.add_state("Idle")
        region.add_transition(init, idle)
        region.add_transition(idle, idle, trigger="Ping",
                              effect="pings = pings + 1;",
                              kind=TransitionKind.INTERNAL)
        region.add_transition(idle, idle, trigger="Poke",
                              effect="x = boom + 1;",
                              kind=TransitionKind.INTERNAL)
        fragile.add_behavior(machine, as_classifier_behavior=True)
        top.add_part("frag", fragile)
        return top

    @pytest.mark.parametrize("policy", ["quarantine", "restart"])
    def test_quarantine_sets_match(self, policy):
        results = []
        for compiled in (False, True):
            with SystemSimulation(self.top_with_fragile(),
                                  compile=compiled,
                                  on_part_error=policy,
                                  max_restarts=1) as sim:
                sim.send("frag", "Ping", delay=1.0)
                sim.send("frag", "Poke", delay=2.0)
                sim.send("frag", "Poke", delay=4.0)
                sim.send("frag", "Ping", delay=6.0)
                sim.run(until=60.0)
                fp = fingerprint(sim)
                # the two engines phrase the underlying AslRuntimeError
                # differently; the *structure* (who failed, when, what
                # action was taken) must still be identical
                report = json.loads(fp["report"])
                for failure in report["part_failures"]:
                    assert failure.pop("error").startswith(
                        "AslRuntimeError")
                fp["report"] = report
                results.append(fp)
        assert results[0] == results[1]
        assert results[0]["quarantined"] == ("frag",) \
            or results[0]["report"]["restarts"] == {"frag": 1}
