"""Unit tests for use cases, actors, nodes, artifacts and deployments."""

import pytest

import repro.metamodel as mm
from repro.errors import ModelError


class TestUseCases:
    def test_include_transitive(self):
        boot, init, load = (mm.UseCase(n) for n in ("Boot", "Init", "Load"))
        boot.include(init)
        init.include(load)
        assert boot.all_included() == (init, load)

    def test_include_self_rejected(self):
        case = mm.UseCase("X")
        with pytest.raises(ModelError):
            case.include(case)

    def test_include_duplicate_rejected(self):
        a, b = mm.UseCase("A"), mm.UseCase("B")
        a.include(b)
        with pytest.raises(ModelError):
            a.include(b)

    def test_include_cycle_safe(self):
        a, b = mm.UseCase("A"), mm.UseCase("B")
        a.include(b)
        b.include(a)
        assert a.all_included() == (b,)

    def test_extend_with_extension_point(self):
        base = mm.UseCase("Transfer")
        base.add_extension_point("on_error")
        ext = mm.UseCase("Retry")
        extend = ext.extend(base, "on_error", condition="retries < 3")
        assert extend.extended is base
        assert extend.extension_point == "on_error"

    def test_extend_unknown_extension_point(self):
        base, ext = mm.UseCase("A"), mm.UseCase("B")
        with pytest.raises(ModelError):
            ext.extend(base, "missing")

    def test_duplicate_extension_point_rejected(self):
        case = mm.UseCase("A")
        case.add_extension_point("p")
        with pytest.raises(ModelError):
            case.add_extension_point("p")

    def test_subjects_and_actors(self):
        case = mm.UseCase("Configure")
        system = mm.Component("Soc")
        designer = mm.Actor("Designer")
        case.add_subject(system)
        case.add_actor(designer)
        assert case.subjects == (system,)
        assert case.actors == (designer,)
        with pytest.raises(ModelError):
            case.add_actor(designer)


class TestDeployments:
    def test_deploy_artifact(self):
        node = mm.Node("board")
        artifact = mm.Artifact("fw", file_name="fw.bin")
        node.deploy(artifact)
        assert node.deployed_artifacts == (artifact,)
        with pytest.raises(ModelError):
            node.deploy(artifact)

    def test_manifestation(self):
        artifact = mm.Artifact("fw")
        cls = mm.UmlClass("Kernel")
        artifact.manifest(cls)
        assert artifact.manifestations[0].utilized is cls
        with pytest.raises(ModelError):
            artifact.manifest(cls)

    def test_nested_nodes(self):
        board = mm.Node("board")
        chip = mm.Device("chip")
        board.add_node(chip)
        assert board.nested_nodes == (chip,)

    def test_execution_environment_is_node(self):
        rtos = mm.ExecutionEnvironment("rtos")
        assert isinstance(rtos, mm.Node)

    def test_communication_path(self):
        a, b = mm.Node("a"), mm.Node("b")
        path = mm.CommunicationPath(a, b, name="axi")
        assert path.connects(a) and path.connects(b)
        assert not path.connects(mm.Node("c"))
        with pytest.raises(ModelError):
            mm.CommunicationPath(a, a)

    def test_artifact_default_file_name(self):
        assert mm.Artifact("boot").file_name == "boot"


class TestModelQueries:
    def test_find_by_id(self, simple_model):
        cpu = simple_model.resolve("core::Cpu")
        assert simple_model.find_by_id(cpu.xmi_id) is cpu
        assert simple_model.find_by_id("nope") is None

    def test_element_by_id_raises(self, simple_model):
        from repro.errors import LookupFailed

        with pytest.raises(LookupFailed):
            simple_model.element_by_id("nope")

    def test_build_id_index(self, simple_model):
        index = simple_model.build_id_index()
        assert index[simple_model.xmi_id] is simple_model
        assert len(index) == simple_model.element_count() + 1

    def test_summary_counts(self, simple_model):
        summary = simple_model.summary()
        assert summary["Component"] == 2
        assert summary["Interface"] == 1

    def test_elements_of_type(self, simple_model):
        comps = list(simple_model.elements_of_type(mm.Component))
        assert {c.name for c in comps} == {"Cpu", "Mem"}
