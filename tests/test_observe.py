"""Tests for observed-execution sequence diagram synthesis."""

import pytest

import repro.metamodel as mm
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.interactions import (
    Interaction,
    InteractionOperator,
    Message,
    conforms,
    interaction_from_messages,
    interaction_from_simulation,
    observed_trace,
    traces,
)
from repro.simulation import SystemSimulation


@pytest.fixture
def simulation():
    cpu = make_traffic_generator("Cpu", period=10.0, address_range=64)
    memory = make_memory("Ram", size_bytes=64)
    top = make_soc("Obs", masters=[cpu],
                   slaves=[(memory, "bus", 0, 64)])
    sim = SystemSimulation(top, quantum=1.0)
    sim.run(until=25.0)
    return sim


class TestFromMessages:
    def test_lifelines_created_in_order(self):
        interaction = interaction_from_messages("x", [
            ("a", "b", "m1"), ("b", "c", "m2"), ("c", "a", "m3"),
        ])
        assert [l.name for l in interaction.lifelines] == ["a", "b", "c"]

    def test_single_trace_language(self):
        interaction = interaction_from_messages("x", [
            ("a", "b", "m1"), ("b", "a", "m2"),
        ])
        assert traces(interaction) == [("a->b:m1", "b->a:m2")]

    def test_empty_observation(self):
        interaction = interaction_from_messages("empty", [])
        assert traces(interaction) == [()]


class TestFromSimulation:
    def test_message_log_recorded(self, simulation):
        assert simulation.message_log
        time0, sender, receiver, signal = simulation.message_log[0]
        assert sender == "m0_cpu" and receiver == "bus"
        assert signal in ("Read", "Write")

    def test_times_monotonic(self, simulation):
        times = [entry[0] for entry in simulation.message_log]
        assert times == sorted(times)

    def test_observed_interaction_roundtrips_the_log(self, simulation):
        observed = interaction_from_simulation("run", simulation, limit=8)
        trace = traces(observed)[0]
        assert trace == observed_trace(simulation, limit=8)

    def test_env_messages_excluded_by_default(self):
        """External stimuli don't appear unless requested."""
        cpu = make_traffic_generator("Cpu", period=50.0,
                                     address_range=64)
        memory = make_memory("Ram", size_bytes=64)
        top = make_soc("E", masters=[cpu],
                       slaves=[(memory, "bus", 0, 64)])
        sim = SystemSimulation(top, quantum=1.0)
        sim.send("s0_ram", "Write", addr=1, value=2)
        sim.run(until=10.0)
        without_env = observed_trace(sim)
        with_env = observed_trace(sim, include_env=True)
        assert any(label.startswith("env->") for label in with_env)
        assert not any(label.startswith("env->")
                       for label in without_env)

    def test_observed_run_conforms_to_bus_specification(self, simulation):
        """The spec: every request round-trips through the bus."""
        spec = Interaction("bus_protocol")
        cpu = spec.add_lifeline("m0_cpu")
        bus = spec.add_lifeline("bus")
        ram = spec.add_lifeline("s0_ram")
        loop = spec.loop(0, 10)
        body = loop.add_operand()
        # one round: alt(Write|Read) to bus, forward, reply, forward back
        from repro.interactions import CombinedFragment

        round_alt = CombinedFragment(InteractionOperator.ALT)
        body.add(round_alt)
        write_op = round_alt.add_operand()
        write_op.add(Message("Write", cpu, bus))
        write_op.add(Message("Write", bus, ram))
        write_op.add(Message("WriteAck", ram, bus))
        write_op.add(Message("WriteAck", bus, cpu))
        read_op = round_alt.add_operand()
        read_op.add(Message("Read", cpu, bus))
        read_op.add(Message("Read", bus, ram))
        read_op.add(Message("ReadResp", ram, bus))
        read_op.add(Message("ReadResp", bus, cpu))

        # take only complete rounds (multiples of 4 messages)
        full = observed_trace(simulation)
        rounds = len(full) // 4
        assert rounds >= 1
        assert conforms(spec, full[:rounds * 4])

    def test_mutated_trace_rejected_by_specification(self, simulation):
        spec = interaction_from_simulation("self-spec", simulation,
                                           limit=4)
        good = observed_trace(simulation, limit=4)
        assert conforms(spec, good)
        bad = (good[1], good[0]) + good[2:]
        assert not conforms(spec, bad)
