"""Unit tests for components, ports, connectors and composite structure."""

import pytest

import repro.metamodel as mm
from repro.errors import ModelError


def _wired_pair():
    """Provider/consumer components sharing one interface."""
    iface = mm.Interface("IBus")
    provider = mm.Component("Mem")
    p_out = provider.add_port("s", direction=mm.PortDirection.IN)
    p_out.provide(iface)
    consumer = mm.Component("Cpu")
    c_out = consumer.add_port("m", direction=mm.PortDirection.OUT)
    c_out.require(iface)
    return iface, provider, p_out, consumer, c_out


class TestPorts:
    def test_add_and_lookup(self):
        comp = mm.Component("C")
        port = comp.add_port("bus", direction=mm.PortDirection.OUT)
        assert comp.port("bus") is port
        assert port.component is comp

    def test_duplicate_port_name_rejected(self):
        comp = mm.Component("C")
        comp.add_port("bus")
        with pytest.raises(ModelError):
            comp.add_port("bus")

    def test_provide_require_chainable_and_unique(self):
        iface = mm.Interface("I")
        port = mm.Port("p")
        port.provide(iface)
        with pytest.raises(ModelError):
            port.provide(iface)
        port.require(mm.Interface("J"))
        assert len(port.provided) == 1
        assert len(port.required) == 1

    def test_component_interface_rollups(self):
        iface, provider, p_out, consumer, c_out = _wired_pair()
        assert provider.provided_interfaces == (iface,)
        assert consumer.required_interfaces == (iface,)

    def test_realized_interface_counts_as_provided(self):
        iface = mm.Interface("I")
        comp = mm.Component("C")
        comp.realize(iface)
        assert iface in comp.provided_interfaces


class TestCanConnect:
    def test_compatible_pair(self):
        iface, provider, p_in, consumer, c_out = _wired_pair()
        assert mm.can_connect(c_out, p_in)
        assert mm.can_connect(p_in, c_out)

    def test_missing_interface_fails(self):
        _iface, _provider, p_in, consumer, c_out = _wired_pair()
        bare = mm.Port("bare", direction=mm.PortDirection.IN)
        assert not mm.can_connect(c_out, bare)

    def test_same_direction_out_out_fails(self):
        a = mm.Port("a", direction=mm.PortDirection.OUT)
        b = mm.Port("b", direction=mm.PortDirection.OUT)
        assert not mm.can_connect(a, b)

    def test_interface_conformance_satisfies_requirement(self):
        base = mm.Interface("IBase")
        extended = mm.Interface("IExt")
        extended.add_generalization(base)
        need = mm.Port("n", direction=mm.PortDirection.OUT)
        need.require(base)
        offer = mm.Port("o", direction=mm.PortDirection.IN)
        offer.provide(extended)
        assert mm.can_connect(need, offer)


class TestConnectors:
    def test_assembly_connector_created(self):
        iface, provider, p_in, consumer, c_out = _wired_pair()
        top = mm.Component("Top")
        part_p = top.add_part("mem", provider)
        part_c = top.add_part("cpu", consumer)
        connector = top.connect(c_out, p_in, part_c, part_p)
        assert connector in top.connectors
        assert connector.kind is mm.ConnectorKind.ASSEMBLY

    def test_incompatible_assembly_rejected(self):
        top = mm.Component("Top")
        a = mm.Component("A")
        b = mm.Component("B")
        out_a = a.add_port("o", direction=mm.PortDirection.OUT)
        out_b = b.add_port("o", direction=mm.PortDirection.OUT)
        pa, pb = top.add_part("a", a), top.add_part("b", b)
        with pytest.raises(ModelError):
            top.connect(out_a, out_b, pa, pb)

    def test_check_can_be_disabled(self):
        top = mm.Component("Top")
        a, b = mm.Component("A"), mm.Component("B")
        out_a = a.add_port("o", direction=mm.PortDirection.OUT)
        out_b = b.add_port("o", direction=mm.PortDirection.OUT)
        pa, pb = top.add_part("a", a), top.add_part("b", b)
        connector = top.connect(out_a, out_b, pa, pb, check=False)
        assert connector.kind is mm.ConnectorKind.ASSEMBLY

    def test_delegation_requires_own_port(self):
        top = mm.Component("Top")
        inner = mm.Component("Inner")
        inner_port = inner.add_port("p")
        part = top.add_part("i", inner)
        outer_port = top.add_port("ext")
        connector = top.delegate(outer_port, inner_port, part)
        assert connector.kind is mm.ConnectorKind.DELEGATION
        stranger_port = inner.add_port("q")
        with pytest.raises(ModelError):
            top.delegate(stranger_port, inner_port, part)


class TestParts:
    def test_parts_are_composite_typed_attributes(self):
        top = mm.Component("Top")
        inner = mm.Component("Inner")
        part = top.add_part("core", inner)
        assert part in top.parts
        assert part.is_composite
        plain = top.add_attribute("tag", mm.STRING)
        assert plain not in top.parts

    def test_part_multiplicity(self):
        top = mm.Component("Top")
        inner = mm.Component("Inner")
        part = top.add_part("banks", inner, multiplicity=mm.Multiplicity(4, 4))
        assert part.multiplicity.lower == 4
