"""Tests for the FSM lint analyses."""

from repro.statemachines import (
    PseudostateKind,
    StateMachine,
    analysis,
)


def build_clean():
    machine = StateMachine("clean")
    region = machine.region
    init = region.add_initial()
    a, b = region.add_state("A"), region.add_state("B")
    final = region.add_final()
    region.add_transition(init, a)
    region.add_transition(a, b, trigger="go")
    region.add_transition(b, a, trigger="back")
    region.add_transition(a, final, trigger="end")
    return machine


class TestReachability:
    def test_clean_machine_fully_reachable(self):
        machine = build_clean()
        assert analysis.unreachable_states(machine) == ()
        assert analysis.is_clean(machine)

    def test_orphan_detected(self):
        machine = build_clean()
        orphan = machine.region.add_state("Orphan")
        assert analysis.unreachable_states(machine) == (orphan,)
        assert not analysis.is_clean(machine)

    def test_nested_states_reachable_via_composite(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        comp = region.add_state("Comp")
        region.add_transition(init, comp)
        inner = comp.add_region()
        i2 = inner.add_initial()
        nested = inner.add_state("Nested")
        inner.add_transition(i2, nested)
        assert analysis.unreachable_states(machine) == ()

    def test_dead_transitions(self):
        machine = build_clean()
        orphan = machine.region.add_state("Orphan")
        elsewhere = machine.region.add_state("Elsewhere")
        dead = machine.region.add_transition(orphan, elsewhere, trigger="x")
        assert dead in analysis.dead_transitions(machine)


class TestNondeterminism:
    def test_guardless_same_trigger_pair_flagged(self):
        machine = build_clean()
        region = machine.region
        a = machine.find_state("A")
        b = machine.find_state("B")
        region.add_transition(a, b, trigger="go")  # duplicate of A--go-->B
        conflicts = analysis.nondeterministic_choices(machine)
        assert len(conflicts) == 1

    def test_guarded_pair_not_flagged(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        a, b, c = (region.add_state(n) for n in "ABC")
        region.add_transition(init, a)
        region.add_transition(a, b, trigger="go", guard="x > 0")
        region.add_transition(a, c, trigger="go", guard="x <= 0")
        assert analysis.nondeterministic_choices(machine) == ()


class TestSinksAndTermination:
    def test_sink_state_detected(self):
        machine = build_clean()
        region = machine.region
        a = machine.find_state("A")
        trap = region.add_state("Trap")
        region.add_transition(a, trap, trigger="fall")
        assert trap in analysis.sink_states(machine)

    def test_nested_state_not_sink_if_ancestor_can_exit(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        comp = region.add_state("Comp")
        out = region.add_state("Out")
        region.add_transition(init, comp)
        region.add_transition(comp, out, trigger="leave")
        inner = comp.add_region()
        i2 = inner.add_initial()
        nested = inner.add_state("Nested")  # no outgoing of its own
        inner.add_transition(i2, nested)
        assert nested not in analysis.sink_states(machine)

    def test_terminate_reachability(self):
        machine = build_clean()
        assert not analysis.can_terminate(machine)
        region = machine.region
        term = region.add_pseudostate(PseudostateKind.TERMINATE, "X")
        region.add_transition(machine.find_state("B"), term, trigger="kill")
        assert analysis.can_terminate(machine)

    def test_uses_time_and_change(self):
        machine = build_clean()
        assert not analysis.uses_time(machine)
        assert not analysis.uses_change_events(machine)
        region = machine.region
        region.add_transition(machine.find_state("A"),
                              machine.find_state("B"), after=1.0)
        region.add_transition(machine.find_state("B"),
                              machine.find_state("A"), when="x > 0")
        assert analysis.uses_time(machine)
        assert analysis.uses_change_events(machine)

    def test_lint_report_keys(self):
        report = analysis.lint(build_clean())
        assert set(report) == {"unreachable_states", "dead_transitions",
                               "nondeterministic_choices", "sink_states",
                               "completion_livelocks"}

    def test_completion_livelock_detected(self):
        machine = StateMachine("live")
        region = machine.region
        init = region.add_initial()
        a, b = region.add_state("A"), region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b)
        region.add_transition(b, a)
        cycles = analysis.completion_livelocks(machine)
        assert cycles and {s.name for s in cycles[0]} == {"A", "B"}
        assert not analysis.is_clean(machine)

    def test_guarded_completion_cycle_not_flagged(self):
        machine = StateMachine("ok")
        region = machine.region
        init = region.add_initial()
        a, b = region.add_state("A"), region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b, guard="ready")
        region.add_transition(b, a)
        assert analysis.completion_livelocks(machine) == ()
