"""The simulation service daemon (PR 10): lease-based execution,
SIGKILL'd-worker retry with deterministic backoff, poison-job
quarantine, fingerprint dedupe with byte-identical cache hits,
admission control, cancellation, and graceful drain."""

import filecmp
import os

import pytest

import repro.metamodel as mm
from repro import xmi
from repro.errors import ServiceError
from repro.faults import FaultCampaign, FaultSpec
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.perf import PERF
from repro.service import SimulationService
from repro.service.daemon import TEST_KILL_ENV
from repro.store.artifacts import ArtifactStore


@pytest.fixture(scope="module")
def model_file(tmp_path_factory):
    model = mm.Model("design")
    package = model.create_package("design")
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)],
             package=package)
    path = tmp_path_factory.mktemp("service") / "soc.xmi"
    xmi.write_file(str(path), model)
    return str(path)


@pytest.fixture(scope="module")
def campaign_file(tmp_path_factory):
    campaign = FaultCampaign(
        [FaultSpec("drop", signal="Read", probability=0.3)],
        name="sweep", seed=0)
    path = tmp_path_factory.mktemp("service") / "campaign.json"
    path.write_text(campaign.to_json())
    return str(path)


def make_spec(model_file, campaign_file, name="job", seeds=(1,),
              **kwargs):
    spec = dict(name=name, model=model_file, top="design::Soc",
                campaign=campaign_file, until=10.0,
                seeds=list(seeds))
    spec.update(kwargs)
    return spec


def make_service(tmp_path, **kwargs):
    options = dict(workers=2, lease_duration=30.0, retry_backoff=0.01)
    options.update(kwargs)
    return SimulationService(tmp_path / "state", **options)


class TestExecution:
    def test_submit_run_result(self, tmp_path, model_file,
                               campaign_file):
        service = make_service(tmp_path)
        row = service.submit(make_spec(model_file, campaign_file,
                                       seeds=[1, 2]))
        assert row["state"] == "queued"
        service.run_until_idle(timeout=120)
        final = service.status(row["job_id"])
        assert final["state"] == "done"
        assert final["attempts"] == 1
        payload = service.result(row["job_id"])
        assert payload["ok"] is True
        assert len(payload["result"]["completed"]) == 2
        service.shutdown()

    def test_submit_validates_the_spec_first(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(Exception):
            service.submit({"seeds": []})  # invalid CampaignSpec
        assert service.jobs == {}  # nothing was journaled
        service.shutdown()

    def test_deterministic_job_error_fails_without_retry(
            self, tmp_path, model_file, campaign_file):
        service = make_service(tmp_path)
        spec = make_spec(model_file, campaign_file, name="doomed",
                         top="design::Nope")
        row = service.submit(spec)
        service.run_until_idle(timeout=60)
        final = service.status(row["job_id"])
        assert final["state"] == "failed"
        assert final["attempts"] == 1  # deterministic: not retried
        assert final["error"]
        with pytest.raises(ServiceError):
            service.result(row["job_id"])
        service.shutdown()

    def test_result_before_done_is_refused(self, tmp_path, model_file,
                                           campaign_file):
        service = make_service(tmp_path)
        row = service.submit(make_spec(model_file, campaign_file))
        with pytest.raises(ServiceError):
            service.result(row["job_id"])
        service.run_until_idle(timeout=60)
        service.shutdown()


class TestCrashRecoveryOfWorkers:
    def test_sigkilled_worker_is_retried_to_success(
            self, tmp_path, model_file, campaign_file, monkeypatch):
        retries = PERF.counter("service.retries")
        service = make_service(tmp_path)
        monkeypatch.setenv(TEST_KILL_ENV, "flaky:1")
        row = service.submit(make_spec(model_file, campaign_file,
                                       name="flaky", seeds=[3]))
        service.run_until_idle(timeout=120)
        final = service.status(row["job_id"])
        assert final["state"] == "done"
        assert final["attempts"] == 2  # killed once, then succeeded
        assert PERF.counter("service.retries") >= retries + 1
        service.shutdown()

    def test_poison_job_is_quarantined(self, tmp_path, model_file,
                                       campaign_file, monkeypatch):
        service = make_service(tmp_path, budget=2)
        monkeypatch.setenv(TEST_KILL_ENV, "poison:99")
        row = service.submit(make_spec(model_file, campaign_file,
                                       name="poison", seeds=[4]))
        service.run_until_idle(timeout=120)
        final = service.status(row["job_id"])
        assert final["state"] == "quarantined"
        assert final["attempts"] == 3  # budget 2 = 3 leases total
        assert "quarantined" in final["error"]
        service.shutdown()

    def test_expired_lease_requeues(self, tmp_path, model_file,
                                    campaign_file):
        service = make_service(tmp_path, workers=1, heartbeats=False)
        row = service.submit(make_spec(model_file, campaign_file,
                                       name="slow", seeds=[5]))
        service.tick()  # grants the lease
        lease = service.leases[row["job_id"]]
        lease.deadline = 0.0  # force the no-heartbeat expiry branch
        expiries = PERF.counter("service.lease_expiries")
        service.tick()
        assert PERF.counter("service.lease_expiries") == expiries + 1
        assert service.status(row["job_id"])["state"] == "queued"
        service.run_until_idle(timeout=120)
        assert service.status(row["job_id"])["state"] == "done"
        service.shutdown()

    def test_watchdog_bounds_wall_clock(self, tmp_path, model_file,
                                        campaign_file):
        kills = PERF.counter("service.watchdog_kills")
        service = make_service(tmp_path, workers=1, budget=0,
                               job_timeout=0.0)
        row = service.submit(make_spec(model_file, campaign_file,
                                       name="hung", seeds=[6]))
        service.run_until_idle(timeout=60)
        assert service.status(row["job_id"])["state"] == "quarantined"
        assert PERF.counter("service.watchdog_kills") >= kills + 1
        service.shutdown()


class TestDedupe:
    def test_cache_hit_is_byte_identical(self, tmp_path, model_file,
                                         campaign_file):
        hits = PERF.counter("service.cache_hits")
        store = ArtifactStore(tmp_path / "store")
        service = make_service(tmp_path, store=store)
        cold = service.submit(make_spec(model_file, campaign_file,
                                        name="cold", seeds=[7]))
        service.run_until_idle(timeout=120)
        warm = service.submit(make_spec(model_file, campaign_file,
                                        name="warm", seeds=[7]))
        service.run_until_idle(timeout=30)
        cold_row = service.status(cold["job_id"])
        warm_row = service.status(warm["job_id"])
        assert cold["fingerprint"] == warm["fingerprint"]
        assert cold_row["cached"] is False
        assert warm_row["cached"] is True
        assert warm_row["attempts"] == 0  # never simulated
        assert filecmp.cmp(
            service.jobstore.result_path(cold["job_id"]),
            service.jobstore.result_path(warm["job_id"]),
            shallow=False)
        assert PERF.counter("service.cache_hits") == hits + 1
        service.shutdown()

    def test_live_duplicate_coalesces(self, tmp_path, model_file,
                                      campaign_file):
        service = make_service(tmp_path)
        first = service.submit(make_spec(model_file, campaign_file,
                                         name="one", seeds=[8]))
        second = service.submit(make_spec(model_file, campaign_file,
                                          name="two", seeds=[8]))
        assert second["coalesced"] is True
        assert second["job_id"] == first["job_id"]
        assert len(service.jobs) == 1
        service.run_until_idle(timeout=120)
        service.shutdown()

    def test_distinct_work_is_not_deduped(self, tmp_path, model_file,
                                          campaign_file):
        service = make_service(tmp_path)
        first = service.submit(make_spec(model_file, campaign_file,
                                         seeds=[9]))
        second = service.submit(make_spec(model_file, campaign_file,
                                          seeds=[10]))
        assert first["job_id"] != second["job_id"]
        assert first["fingerprint"] != second["fingerprint"]
        service.run_until_idle(timeout=120)
        service.shutdown()


class TestAdmission:
    def test_reject_beyond_depth(self, tmp_path, model_file,
                                 campaign_file):
        rejected = PERF.counter("service.rejected")
        service = make_service(tmp_path, max_depth=1)
        service.submit(make_spec(model_file, campaign_file, seeds=[11]))
        with pytest.raises(ServiceError):
            service.submit(make_spec(model_file, campaign_file,
                                     seeds=[12]))
        assert PERF.counter("service.rejected") == rejected + 1
        service.run_until_idle(timeout=60)
        service.shutdown()

    def test_shed_cancels_the_oldest_queued(self, tmp_path, model_file,
                                            campaign_file):
        service = make_service(tmp_path, max_depth=1, admission="shed")
        first = service.submit(make_spec(model_file, campaign_file,
                                         seeds=[13]))
        second = service.submit(make_spec(model_file, campaign_file,
                                          seeds=[14]))
        assert service.status(first["job_id"])["state"] == "cancelled"
        service.run_until_idle(timeout=60)
        assert service.status(second["job_id"])["state"] == "done"
        service.shutdown()

    def test_draining_service_admits_nothing(self, tmp_path, model_file,
                                             campaign_file):
        service = make_service(tmp_path)
        service.drain()
        with pytest.raises(ServiceError):
            service.submit(make_spec(model_file, campaign_file,
                                     seeds=[15]))
        service.shutdown()


class TestCancel:
    def test_cancel_queued_job(self, tmp_path, model_file,
                               campaign_file):
        service = make_service(tmp_path)
        row = service.submit(make_spec(model_file, campaign_file,
                                       seeds=[16]))
        cancelled = service.cancel(row["job_id"])
        assert cancelled["state"] == "cancelled"
        with pytest.raises(ServiceError):
            service.cancel(row["job_id"])  # already terminal
        service.shutdown()

    def test_cancel_leased_job_kills_the_worker(self, tmp_path,
                                                model_file,
                                                campaign_file):
        service = make_service(tmp_path, workers=1)
        row = service.submit(make_spec(model_file, campaign_file,
                                       seeds=[17]))
        service.tick()
        assert row["job_id"] in service.leases
        process = service.leases[row["job_id"]].process
        service.cancel(row["job_id"])
        assert row["job_id"] not in service.leases
        assert not process.is_alive()
        assert service.status(row["job_id"])["state"] == "cancelled"
        service.shutdown()

    def test_unknown_job(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(ServiceError):
            service.status("job-999999")
        with pytest.raises(ServiceError):
            service.cancel("job-999999")
        service.shutdown()

    def test_cancelled_fingerprint_can_resubmit(self, tmp_path,
                                                model_file,
                                                campaign_file):
        service = make_service(tmp_path)
        first = service.submit(make_spec(model_file, campaign_file,
                                         seeds=[18]))
        service.cancel(first["job_id"])
        second = service.submit(make_spec(model_file, campaign_file,
                                          seeds=[18]))
        assert second["coalesced"] is False
        assert second["job_id"] != first["job_id"]
        service.run_until_idle(timeout=120)
        assert service.status(second["job_id"])["state"] == "done"
        service.shutdown()


class TestDrainAndRestart:
    def test_drain_finishes_leased_keeps_queued(self, tmp_path,
                                                model_file,
                                                campaign_file):
        service = make_service(tmp_path, workers=1)
        running = service.submit(make_spec(model_file, campaign_file,
                                           seeds=[19]))
        queued = service.submit(make_spec(model_file, campaign_file,
                                          seeds=[20]))
        service.tick()  # leases the first job only (workers=1)
        service.shutdown()  # drain: finish the lease, keep the queue
        assert service.status(running["job_id"])["state"] == "done"
        assert service.status(queued["job_id"])["state"] == "queued"

        # next boot resumes exactly the unfinished job
        reborn = make_service(tmp_path, workers=1)
        assert reborn.status(running["job_id"])["state"] == "done"
        assert reborn.status(queued["job_id"])["state"] == "queued"
        reborn.run_until_idle(timeout=120)
        assert reborn.status(queued["job_id"])["state"] == "done"
        reborn.shutdown()

    def test_restart_replays_results_without_rerunning(
            self, tmp_path, model_file, campaign_file):
        service = make_service(tmp_path)
        row = service.submit(make_spec(model_file, campaign_file,
                                       seeds=[21]))
        service.run_until_idle(timeout=120)
        payload = service.result(row["job_id"])
        service.shutdown()
        reborn = make_service(tmp_path)
        assert reborn.status(row["job_id"])["state"] == "done"
        assert reborn.status(row["job_id"])["attempts"] == 1
        assert reborn.result(row["job_id"]) == payload
        reborn.shutdown()


class TestConfigValidation:
    @pytest.mark.parametrize("options", [
        {"workers": 0},
        {"lease_duration": 0.0},
        {"admission": "drop-newest"},
        {"max_depth": 0},
    ])
    def test_bad_options_are_refused(self, tmp_path, options):
        with pytest.raises(ServiceError):
            make_service(tmp_path, **options)
