"""Tests for activity graph structure and validation."""

import pytest

from repro.activities import (
    Activity,
    ControlFlow,
    ObjectFlow,
)
from repro.errors import ActivityError


class TestBuilders:
    def test_chain_connects_in_sequence(self):
        activity = Activity("a")
        init = activity.add_initial()
        work = activity.add_action("work")
        final = activity.add_final()
        flows = activity.chain(init, work, final)
        assert len(flows) == 2
        assert flows[0].source is init and flows[0].target is work

    def test_duplicate_node_names_rejected(self):
        activity = Activity("a")
        activity.add_action("work")
        with pytest.raises(ActivityError):
            activity.add_action("work")

    def test_node_lookup(self):
        activity = Activity("a")
        work = activity.add_action("work")
        assert activity.node("work") is work
        with pytest.raises(ActivityError):
            activity.node("ghost")

    def test_pins_owned_by_actions(self):
        activity = Activity("a")
        action = activity.add_action("f")
        pin = action.add_output_pin("result")
        assert pin.action is action
        assert pin in activity.all_nodes
        assert pin not in activity.nodes
        with pytest.raises(ActivityError):
            action.add_output_pin("result")

    def test_object_flow_endpoint_check(self):
        activity = Activity("a")
        init = activity.add_initial()
        action = activity.add_action("f")
        with pytest.raises(ActivityError):
            activity.object_flow(init, action)

    def test_edge_weight_positive(self):
        activity = Activity("a")
        a, b = activity.add_action("x"), activity.add_action("y")
        with pytest.raises(ActivityError):
            activity.flow(a, b, weight=0)


class TestValidation:
    def test_valid_activity(self):
        activity = Activity("ok")
        init = activity.add_initial()
        action = activity.add_action("act")
        final = activity.add_final()
        activity.chain(init, action, final)
        activity.validate()

    def test_initial_constraints(self):
        activity = Activity("bad")
        init = activity.add_initial()
        a = activity.add_action("a")
        activity.flow(init, a)
        activity.flow(a, init)  # incoming into initial: invalid
        with pytest.raises(ActivityError):
            activity.validate()

    def test_initial_needs_single_outgoing(self):
        activity = Activity("bad")
        init = activity.add_initial()
        a, b = activity.add_action("a"), activity.add_action("b")
        activity.flow(init, a)
        activity.flow(init, b)
        with pytest.raises(ActivityError):
            activity.validate()

    def test_final_no_outgoing(self):
        activity = Activity("bad")
        init = activity.add_initial()
        final = activity.add_final()
        a = activity.add_action("a")
        activity.flow(init, final)
        activity.flow(final, a)
        with pytest.raises(ActivityError):
            activity.validate()

    def test_unreachable_final_detected(self):
        activity = Activity("bad")
        init = activity.add_initial()
        a = activity.add_action("a")
        activity.flow(init, a)
        activity.add_final()
        with pytest.raises(ActivityError):
            activity.validate()

    @pytest.mark.parametrize("builder,fix_in,fix_out", [
        ("add_fork", 1, 2),
        ("add_join", 2, 1),
        ("add_decision", 1, 2),
        ("add_merge", 2, 1),
    ])
    def test_control_node_arities(self, builder, fix_in, fix_out):
        activity = Activity("arity")
        init = activity.add_initial()
        node = getattr(activity, builder)()
        sources = [activity.add_action(f"s{i}") for i in range(fix_in)]
        targets = [activity.add_action(f"t{i}") for i in range(fix_out)]
        final = activity.add_final()
        activity.flow(init, sources[0])
        for source in sources:
            activity.flow(source, node)
        for target in targets:
            activity.flow(node, target)
            activity.flow(target, final)
        activity.validate()  # correct arity passes

    def test_fork_arity_violation(self):
        activity = Activity("bad")
        init = activity.add_initial()
        fork = activity.add_fork()
        only = activity.add_action("only")
        final = activity.add_final()
        activity.chain(init, fork)
        activity.flow(fork, only)
        activity.flow(only, final)
        with pytest.raises(ActivityError):
            activity.validate()

    def test_foreign_node_rejected(self):
        activity = Activity("a")
        other = Activity("b")
        mine = activity.add_action("mine")
        theirs = other.add_action("theirs")
        edge = ControlFlow(mine, theirs)
        activity._own(edge)
        with pytest.raises(ActivityError):
            activity.validate()
