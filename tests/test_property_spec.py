"""Property specifications (PR 7): atoms, the five pattern kinds,
suite validation, the props.json round-trip, and the prefix trie an
interaction-conformance property compiles its trace set into."""

import json

import pytest

from repro.engine import (
    KINDS,
    MESSAGE_DELIVERED,
    MESSAGE_DROPPED,
    PROPERTY_VIOLATION,
    TraceEvent,
)
from repro.errors import PropertyError
from repro.properties import (
    EventMatch,
    Property,
    PropertySuite,
    absence,
    bounded_liveness,
    coerce_suite,
    interaction_conformance,
    precedence,
    response,
)


def delivered(t, part, signal, sender="peer", ordinal=1):
    return TraceEvent(ordinal, t, MESSAGE_DELIVERED, part,
                      {"signal": signal, "sender": sender})


class TestEventMatch:
    def test_every_filter_is_checked(self):
        match = EventMatch(signal="Read", part="ram", sender="cpu")
        assert match.matches(delivered(1.0, "ram", "Read", sender="cpu"))
        assert not match.matches(delivered(1.0, "ram", "Write", sender="cpu"))
        assert not match.matches(delivered(1.0, "cpu", "Read", sender="cpu"))
        assert not match.matches(delivered(1.0, "ram", "Read", sender="bus"))

    def test_kind_must_match(self):
        match = EventMatch(signal="Read", kind=MESSAGE_DROPPED)
        event = TraceEvent(1, 1.0, MESSAGE_DROPPED, "bus",
                           {"signal": "Read"})
        assert match.matches(event)
        assert not match.matches(delivered(1.0, "bus", "Read"))

    def test_unset_filters_are_wildcards(self):
        match = EventMatch(signal="Read")
        assert match.matches(delivered(1.0, "anything", "Read",
                                       sender="anyone"))

    def test_rejects_unknown_kind(self):
        with pytest.raises(PropertyError):
            EventMatch(signal="Read", kind="bogus")

    def test_rejects_observing_the_checker_itself(self):
        with pytest.raises(PropertyError):
            EventMatch(signal="x", kind=PROPERTY_VIOLATION)

    def test_rejects_matching_everything(self):
        with pytest.raises(PropertyError):
            EventMatch()

    def test_dict_round_trip_omits_default_kind(self):
        match = EventMatch(signal="Read", part="ram")
        assert match.to_dict() == {"signal": "Read", "part": "ram"}
        again = EventMatch.from_dict(match.to_dict())
        assert again.kind == MESSAGE_DELIVERED
        assert again.to_dict() == match.to_dict()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(PropertyError):
            EventMatch.from_dict({"signal": "Read", "bogus": 1})

    def test_describe_is_compact(self):
        assert EventMatch(signal="Read", part="ram").describe() \
            == "Read to ram"
        assert "message_dropped" in EventMatch(
            signal="Read", kind=MESSAGE_DROPPED).describe()


class TestCoercion:
    def test_string_means_signal(self):
        prop = response("r", trigger="Read", reaction="ReadResp",
                        within=4.0)
        assert prop.trigger.signal == "Read"
        assert prop.trigger.part is None

    def test_mapping_and_match_accepted(self):
        prop = precedence("p", first={"signal": "Read", "part": "ram"},
                          then=EventMatch(signal="ReadResp"))
        assert prop.first.part == "ram"
        assert prop.then.signal == "ReadResp"

    def test_garbage_rejected(self):
        with pytest.raises(PropertyError):
            absence("a", never=42)


class TestPropertyValidation:
    def test_name_required(self):
        with pytest.raises(PropertyError):
            response("", trigger="A", reaction="B", within=1.0)

    def test_response_deadline_positive(self):
        with pytest.raises(PropertyError):
            response("r", trigger="A", reaction="B", within=0.0)

    def test_liveness_bounds(self):
        with pytest.raises(PropertyError):
            bounded_liveness("l", match="A", at_least=0, by=10.0)
        with pytest.raises(PropertyError):
            bounded_liveness("l", match="A", at_least=1, by=-1.0)

    def test_absence_window_ordered(self):
        with pytest.raises(PropertyError):
            absence("a", never="Nak", window=(10.0, 5.0))
        prop = absence("a", never="Nak", window=(5, 10))
        assert prop.window == (5.0, 10.0)

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(PropertyError):
            Property.from_dict({"kind": "eventually", "name": "x"})

    def test_from_dict_reports_missing_fields(self):
        with pytest.raises(PropertyError, match="within"):
            Property.from_dict({"kind": "response", "name": "r",
                                "trigger": {"signal": "A"},
                                "reaction": {"signal": "B"}})


def full_suite():
    return PropertySuite([
        response("read-answered", trigger={"signal": "Read", "part": "ram"},
                 reaction={"signal": "ReadResp", "part": "cpu"},
                 within=4.0),
        precedence("resp-after-read", first="Read", then="ReadResp"),
        absence("no-nak", never="Nak", window=(0, 100)),
        bounded_liveness("traffic", match="Read", at_least=3, by=30.0),
        interaction_conformance(
            "handshake",
            messages=[("cpu", "ram", "Read"), ("ram", "cpu", "ReadResp")],
            loop=(0, 3)),
    ], name="round-trip")


class TestSuiteRoundTrip:
    def test_json_round_trip_is_byte_stable(self):
        suite = full_suite()
        text = suite.to_json()
        again = PropertySuite.from_json(text)
        assert again.to_json() == text
        assert [prop.kind for prop in again] \
            == ["response", "precedence", "absence", "bounded_liveness",
                "interaction"]

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "props.json"
        path.write_text(full_suite().to_json())
        suite = PropertySuite.load(str(path))
        assert suite.name == "round-trip"
        assert len(suite) == 5

    def test_load_errors_are_typed(self, tmp_path):
        with pytest.raises(PropertyError):
            PropertySuite.load(str(tmp_path / "missing.json"))
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        with pytest.raises(PropertyError):
            PropertySuite.load(str(broken))

    def test_suite_must_be_non_empty_with_unique_names(self):
        with pytest.raises(PropertyError):
            PropertySuite([])
        with pytest.raises(PropertyError):
            PropertySuite([absence("same", never="A"),
                           absence("same", never="B")])

    def test_event_kinds_in_vocabulary_order(self):
        suite = PropertySuite([
            absence("dropped", never={"signal": "Read",
                                      "kind": MESSAGE_DROPPED}),
            absence("delivered", never="Nak"),
        ])
        kinds = suite.event_kinds()
        assert set(kinds) == {MESSAGE_DELIVERED, MESSAGE_DROPPED}
        assert list(kinds) \
            == [kind for kind in KINDS if kind in kinds]

    def test_coerce_suite_variants(self, tmp_path):
        suite = full_suite()
        assert coerce_suite(suite) is suite
        single = coerce_suite(absence("a", never="Nak"))
        assert len(single) == 1
        from_dict = coerce_suite(suite.to_dict())
        assert from_dict.to_json() == suite.to_json()
        path = tmp_path / "props.json"
        path.write_text(suite.to_json())
        assert coerce_suite(str(path)).to_json() == suite.to_json()
        from_list = coerce_suite([prop.to_dict() for prop in suite])
        assert len(from_list) == 5
        with pytest.raises(PropertyError):
            coerce_suite(3.14)


class TestInteractionTrie:
    def test_loop_compiles_to_linear_trie(self):
        prop = interaction_conformance(
            "hs", messages=[("cpu", "ram", "Read"),
                            ("ram", "cpu", "ReadResp")],
            loop=(0, 3))
        # 3 iterations of 2 messages share every prefix: 7 nodes
        assert len(prop.nodes) == 7
        assert prop.alphabet == {"cpu->ram:Read", "ram->cpu:ReadResp"}
        # loop minimum 0: the root itself accepts, as does every
        # completed iteration boundary
        assert prop.nodes[0]["end"]
        assert sum(node["end"] for node in prop.nodes) == 4

    def test_trace_set_is_sorted_and_deduped(self):
        prop = interaction_conformance(
            "hs", messages=[("a", "b", "Go")], loop=(1, 2))
        assert prop.trace_set == (("a->b:Go",), ("a->b:Go", "a->b:Go"))

    def test_exactly_one_source(self):
        with pytest.raises(PropertyError):
            interaction_conformance("hs")
        from repro.interactions import Interaction

        interaction = Interaction("hs")
        with pytest.raises(PropertyError):
            interaction_conformance("hs", interaction=interaction,
                                    messages=[("a", "b", "Go")])

    def test_interaction_object_source(self):
        from repro.interactions import Interaction

        interaction = Interaction("hs")
        cpu = interaction.add_lifeline("cpu")
        ram = interaction.add_lifeline("ram")
        interaction.message("Read", cpu, ram)
        interaction.message("ReadResp", ram, cpu)
        prop = interaction_conformance("hs", interaction=interaction)
        assert prop.trace_set == (("cpu->ram:Read", "ram->cpu:ReadResp"),)

    def test_compact_form_round_trips_compactly(self):
        prop = interaction_conformance(
            "hs", messages=[("cpu", "ram", "Read")], loop=(0, 2),
            complete=True)
        record = prop.to_dict()
        assert record["messages"] == [["cpu", "ram", "Read"]]
        assert record["loop"] == [0, 2]
        assert "traces" not in record
        again = Property.from_dict(record)
        assert again.to_dict() == record
        assert again.complete

    def test_explicit_traces_round_trip(self):
        record = {"kind": "interaction", "name": "hs",
                  "traces": [["a->b:Go"], ["a->b:Go", "b->a:Ack"]]}
        prop = Property.from_dict(record)
        assert prop.to_dict() == record

    def test_empty_specs_rejected(self):
        with pytest.raises(PropertyError):
            interaction_conformance("hs", messages=[])
        with pytest.raises(PropertyError):
            Property.from_dict({"kind": "interaction", "name": "hs"})

    def test_suite_json_snapshot(self):
        # pin the props.json shape end to end (the CLI contract)
        suite = PropertySuite([absence("no-nak", never="Nak")], name="s")
        assert json.loads(suite.to_json()) == {
            "name": "s", "version": 1,
            "properties": [{"kind": "absence", "name": "no-nak",
                            "never": {"signal": "Nak"}}]}
