"""CLI surface of PR 9: ``simulate --trace -`` streaming,
``--spans``/``--perfetto`` exports, the ``trace-to-sequence``
``--part``/``--signal`` filters (and the engine_degraded skip), and
``campaign --obs-report`` including the stored ``report`` artifact."""

import io
import json
import os

import pytest

import repro.metamodel as mm
import repro.store as store_mod
from repro import xmi
from repro.cli import main
from repro.faults import FaultCampaign, FaultSpec
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.store import STORE_ENV, ArtifactStore


@pytest.fixture(autouse=True)
def _isolated_store_state():
    """No test inherits (or leaks) an active store or $REPRO_STORE."""
    os.environ.pop(STORE_ENV, None)
    store_mod._ACTIVE = None
    yield
    os.environ.pop(STORE_ENV, None)
    store_mod._ACTIVE = False  # back to "unresolved" for other suites


@pytest.fixture(scope="module")
def model_file(tmp_path_factory):
    model = mm.Model("obstest")
    pkg = model.create_package("design")
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=256)
    mem = make_memory("Ram", size_bytes=256)
    make_soc("Top", masters=[cpu], slaves=[(mem, "bus", 0, 256)],
             package=pkg)
    path = tmp_path_factory.mktemp("pr9") / "model.xmi"
    xmi.write_file(str(path), model)
    return str(path)


@pytest.fixture(scope="module")
def campaign_file(tmp_path_factory):
    campaign = FaultCampaign(
        [FaultSpec("drop", signal="Read", probability=0.3)],
        name="sweep", seed=0)
    path = tmp_path_factory.mktemp("pr9") / "campaign.json"
    path.write_text(campaign.to_json())
    return str(path)


class TestTraceStdout:
    def test_dash_streams_jsonl_to_stdout(self, model_file, capsys):
        assert main(["simulate", model_file, "--top", "design::Top",
                     "--until", "20", "--trace", "-"]) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert lines, "the trace must land on stdout"
        for line in lines:
            record = json.loads(line)  # every stdout line is a record
            assert "ordinal" in record and "kind" in record
        # the human-facing chatter moved to stderr, stdout stays pipable
        assert "simulated" in captured.err
        assert "trace:" in captured.err and "stdout" in captured.err

    def test_file_target_keeps_chatter_on_stdout(self, model_file,
                                                 tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        assert main(["simulate", model_file, "--top", "design::Top",
                     "--until", "20", "--trace", str(out)]) == 0
        captured = capsys.readouterr()
        assert "simulated" in captured.out
        assert out.read_text().strip()


class TestSpanExports:
    def test_spans_and_perfetto_files(self, model_file, tmp_path,
                                      capsys):
        spans = tmp_path / "spans.jsonl"
        perfetto = tmp_path / "trace.perfetto.json"
        assert main(["simulate", model_file, "--top", "design::Top",
                     "--until", "40", "--spans", str(spans),
                     "--perfetto", str(perfetto)]) == 0
        output = capsys.readouterr().out
        assert "spans:" in output and "perfetto:" in output
        records = [json.loads(line)
                   for line in spans.read_text().splitlines()]
        assert records
        assert any(record["cause"] is not None for record in records)
        payload = json.loads(perfetto.read_text())
        assert payload["traceEvents"]

    def test_span_files_identical_between_engines(self, model_file,
                                                  tmp_path):
        outputs = {}
        for flag, name in ((None, "interp"), ("--compiled", "compiled")):
            out = tmp_path / f"{name}.jsonl"
            argv = ["simulate", model_file, "--top", "design::Top",
                    "--until", "40", "--spans", str(out)]
            if flag:
                argv.insert(1, flag)
            assert main(argv) == 0
            outputs[name] = out.read_bytes()
        assert outputs["interp"] == outputs["compiled"]


@pytest.fixture(scope="module")
def trace_file(model_file, tmp_path_factory):
    path = tmp_path_factory.mktemp("pr9") / "trace.jsonl"
    assert main(["simulate", model_file, "--top", "design::Top",
                 "--until", "40", "--trace", str(path)]) == 0
    return str(path)


class TestTraceToSequenceFilters:
    def render(self, capsys, *argv):
        assert main(["trace-to-sequence", *argv]) == 0
        return capsys.readouterr().out

    def test_signal_filter(self, trace_file, capsys):
        full = self.render(capsys, trace_file)
        assert "Read" in full and "Write" in full
        filtered = self.render(capsys, trace_file, "--signal", "Write",
                               "--signal", "WriteAck")
        assert "Write" in filtered
        assert "Read ->" not in filtered and ": Read\n" not in filtered

    def test_part_filter(self, trace_file, capsys):
        filtered = self.render(capsys, trace_file, "--part", "m0_cpu")
        assert "m0_cpu" in filtered

    def test_no_match_is_a_tailored_error(self, trace_file, capsys):
        assert main(["trace-to-sequence", trace_file,
                     "--signal", "NoSuchSignal"]) == 2
        assert "matched the --part/--signal filters" \
            in capsys.readouterr().err

    def test_engine_degraded_records_are_skipped(self, trace_file,
                                                 tmp_path, capsys):
        baseline = self.render(capsys, trace_file)
        noisy = tmp_path / "noisy.jsonl"
        meta = json.dumps({"ordinal": 0, "t": 0.0,
                           "kind": "engine_degraded", "part": "m0_cpu",
                           "requested": "batched", "used": "compiled"})
        noisy.write_text(meta + "\n" + open(trace_file).read())
        assert self.render(capsys, str(noisy)) == baseline

    def test_stdin_input(self, trace_file, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin",
                            io.StringIO(open(trace_file).read()))
        assert "m0_cpu" in self.render(capsys, "-")

    def test_stdin_empty_error_names_stdin(self, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["trace-to-sequence", "-"]) == 2
        assert "stdin" in capsys.readouterr().err


class TestCampaignObsReport:
    def test_obs_report_json_and_html(self, model_file, campaign_file,
                                      tmp_path, capsys):
        report = tmp_path / "obs.json"
        html = tmp_path / "obs.html"
        assert main(["campaign", model_file, "--top", "design::Top",
                     "--faults", campaign_file, "--seeds", "1,2",
                     "--until", "30", "--obs-report", str(report),
                     "--obs-html", str(html)]) == 0
        assert "observability: 2 seed(s)" in capsys.readouterr().out
        payload = json.loads(report.read_text())
        assert payload["seeds"] == [1, 2]
        assert payload["hot_frames"]
        assert payload["causal_hot_edges"]["kinds"]
        assert payload["coverage"]["percent"] > 0
        assert html.read_text().startswith("<!DOCTYPE html>")

    def test_obs_report_is_stored_as_artifact(self, model_file,
                                              campaign_file, tmp_path,
                                              capsys):
        report = tmp_path / "obs.json"
        store_dir = tmp_path / "store"
        assert main(["campaign", model_file, "--top", "design::Top",
                     "--faults", campaign_file, "--seeds", "1,2",
                     "--until", "30", "--obs-report", str(report),
                     "--store", str(store_dir)]) == 0
        output = capsys.readouterr().out
        assert "stored as report/" in output
        store = ArtifactStore(store_dir)
        entries = [entry for entry in store.ls("report")]
        assert len(entries) == 1
        stored = store.load("report", entries[0]["key"])
        assert stored == json.loads(report.read_text())

    def test_rerun_dedupes_to_the_same_artifact(self, model_file,
                                                campaign_file,
                                                tmp_path):
        report = tmp_path / "obs.json"
        store_dir = tmp_path / "store"
        argv = ["campaign", model_file, "--top", "design::Top",
                "--faults", campaign_file, "--seeds", "1,2",
                "--until", "30", "--obs-report", str(report),
                "--store", str(store_dir)]
        assert main(argv) == 0
        assert main(argv) == 0
        store = ArtifactStore(store_dir)
        assert len(store.ls("report")) == 1  # fingerprint-keyed
