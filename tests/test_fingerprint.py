"""Model fingerprint + generation counter (the transform-cache keys).

Property under test: structurally equal models fingerprint equal (even
with different ``xmi_id`` allocations), and *any* mutation — attribute
write, element addition/removal, deferrable-list change — produces a
new fingerprint.  The generation counter makes recomputation O(1) on
unchanged trees.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.metamodel as mm
from repro.metamodel import Model, model_fingerprint
from repro.statemachines import StateMachine


NAMES = st.text(alphabet="abcdefgh", min_size=1, max_size=6)

CLASS_SPECS = st.lists(
    st.tuples(
        NAMES,                                    # class name
        st.lists(st.tuples(NAMES,                 # attribute name
                           st.integers(-5, 5)),   # default value
                 max_size=3, unique_by=lambda t: t[0]),
        st.booleans(),                            # is_abstract
    ),
    min_size=1, max_size=4, unique_by=lambda t: t[0])


def build_model(specs):
    model = Model("m")
    for class_name, attributes, is_abstract in specs:
        cls = model.add(mm.UmlClass(class_name, is_abstract=is_abstract))
        for attribute_name, default in attributes:
            cls.add_attribute(attribute_name, default=default)
    return model


class TestFingerprintProperties:
    @given(CLASS_SPECS)
    @settings(max_examples=40, deadline=None)
    def test_equal_construction_equal_hash(self, specs):
        assert build_model(specs).fingerprint() == \
            build_model(specs).fingerprint()

    @given(CLASS_SPECS, NAMES)
    @settings(max_examples=40, deadline=None)
    def test_any_mutation_changes_hash(self, specs, fresh_name):
        model = build_model(specs)
        baseline = model.fingerprint()

        mutated = build_model(specs)
        mutated.add_comment("nudge")
        assert mutated.fingerprint() != baseline

        renamed = build_model(specs)
        target = renamed.owned_of_type(mm.UmlClass)[0]
        target.name = target.name + "_x"
        assert renamed.fingerprint() != baseline

    @given(CLASS_SPECS)
    @settings(max_examples=20, deadline=None)
    def test_attribute_default_change_changes_hash(self, specs):
        model = build_model(specs)
        baseline = model.fingerprint()
        cls = model.owned_of_type(mm.UmlClass)[0]
        if not cls.attributes:
            cls.add_attribute("fresh", default=1)
        else:
            cls.attributes[0].set_default(99)
        assert model.fingerprint() != baseline


class TestGenerationCounter:
    def test_attribute_write_bumps_root(self):
        model = Model("m")
        cls = model.add(mm.UmlClass("A"))
        before = model.generation
        cls.is_abstract = True
        assert model.generation > before

    def test_unchanged_tree_reuses_cached_digest(self):
        model = Model("m")
        model.add(mm.UmlClass("A"))
        first = model.fingerprint()
        generation = model.generation
        assert model.fingerprint() == first
        assert model.generation == generation  # fingerprinting is pure

    def test_touch_invalidates_cache_but_not_content(self):
        """A content-neutral write recomputes to the same digest."""
        model = Model("m")
        cls = model.add(mm.UmlClass("A"))
        first = model.fingerprint()
        cls.name = "A"  # same value, still a write
        assert model.generation > 0
        assert model.fingerprint() == first

    def test_disown_bumps_old_root(self):
        model = Model("m")
        cls = model.add(mm.UmlClass("A"))
        comment = cls.add_comment("note")
        model.fingerprint()
        before = model.generation
        cls._disown(comment)
        assert model.generation > before

    def test_defer_bumps_generation(self):
        machine = StateMachine("M")
        state = machine.region.add_state("S")
        before = machine.generation
        state.defer("Evt")
        assert machine.generation > before

    def test_xmi_id_never_hashed(self):
        a, b = Model("m"), Model("m")
        a.add(mm.UmlClass("C"))
        b.add(mm.UmlClass("C"))
        assert a.xmi_id != b.xmi_id
        assert model_fingerprint(a) == model_fingerprint(b)

    def test_statemachine_content_hashed(self):
        def build(guard):
            model = Model("m")
            machine = model.add(StateMachine("B"))
            region = machine.region
            init = region.add_initial()
            state = region.add_state("S")
            region.add_transition(init, state)
            region.add_transition(state, state, trigger="Go", guard=guard)
            return model

        assert build("x > 1").fingerprint() == build("x > 1").fingerprint()
        assert build("x > 1").fingerprint() != build("x > 2").fingerprint()
