"""The ExecutionEngine protocol (PR 3): conformance of all three
engines, registry resolution, and the no-engine-isinstance guarantee in
the cosimulation harness."""

import inspect

import repro.metamodel as mm
import repro.simulation.cosim as cosim_module
from repro.activities import Activity, ActivityRuntime
from repro.engine import (
    PROTOCOL_ATTRIBUTES,
    PROTOCOL_METHODS,
    build_engine_factory,
    conforms,
    register_engine,
    registered_behavior_types,
    supports,
)
from repro.engine import registry as engine_registry
from repro.simulation import SystemSimulation
from repro.statemachines import StateMachine, StateMachineRuntime
from repro.statemachines.flatten import CompiledRuntime, compile_machine


def simple_machine():
    machine = StateMachine("M")
    region = machine.region
    init = region.add_initial()
    a = region.add_state("A")
    b = region.add_state("B")
    region.add_transition(init, a)
    region.add_transition(a, b, trigger="Go")
    return machine


def simple_activity():
    activity = Activity("A")
    init = activity.add_initial()
    work = activity.add_action("work", "x = 1;")
    final = activity.add_final()
    activity.chain(init, work, final)
    return activity


class TestConformance:
    def test_interpreter_conforms(self):
        assert conforms(StateMachineRuntime(simple_machine()))

    def test_compiled_conforms(self):
        compiled = compile_machine(simple_machine())
        assert conforms(CompiledRuntime(compiled))

    def test_activity_runtime_conforms(self):
        assert conforms(ActivityRuntime(simple_activity()))

    def test_non_engine_does_not_conform(self):
        assert not conforms(object())
        assert not conforms(simple_machine())

    def test_methods_only_is_not_enough(self):
        # the data attributes (time/context/signal_sink) are part of the
        # contract; a methods-only object must be rejected
        class MethodsOnly:
            def start(self):
                return self

            def send(self, name, **parameters):
                return self

            def step(self, until):
                return self

            def active_configuration(self):
                return ()

            def checkpoint(self):
                return {}

            def restore(self, snap):
                pass

        assert not conforms(MethodsOnly())

    def test_surface_constants_match_protocol(self):
        for method in PROTOCOL_METHODS:
            assert method in ("start", "send", "step",
                              "active_configuration", "checkpoint",
                              "restore")
        assert PROTOCOL_ATTRIBUTES == ("time", "context", "signal_sink")


class TestRegistry:
    def test_builtin_types_registered(self):
        types = registered_behavior_types()
        assert Activity in types
        assert StateMachine in types

    def test_supports(self):
        assert supports(simple_machine())
        assert supports(simple_activity())
        assert not supports(object())

    def test_state_machine_binding_interpreted(self):
        binding = build_engine_factory(simple_machine())
        assert binding is not None
        label, factory = binding
        assert label == "interpreter"
        engine = factory()
        assert isinstance(engine, StateMachineRuntime)
        assert conforms(engine)

    def test_state_machine_binding_compiled(self):
        binding = build_engine_factory(simple_machine(),
                                       prefer_compiled=True)
        label, factory = binding
        assert label == "compiled"
        assert isinstance(factory(), CompiledRuntime)

    def test_activity_binding(self):
        binding = build_engine_factory(simple_activity())
        label, factory = binding
        assert label == "token-engine"
        assert isinstance(factory(), ActivityRuntime)

    def test_factory_produces_fresh_engines(self):
        _label, factory = build_engine_factory(simple_machine(),
                                               context={"n": 1})
        first, second = factory(), factory()
        assert first is not second
        first.context["n"] = 99
        assert second.context["n"] == 1

    def test_unknown_behavior_resolves_to_none(self):
        assert build_engine_factory(object()) is None

    def test_register_engine_shadows_builtin(self):
        class FakeEngine:
            def __init__(self):
                self.time = 0.0
                self.context = {}
                self.signal_sink = None
                self.trace_bus = None
                self.trace_part = ""

            def start(self):
                return self

            def send(self, name, **parameters):
                return self

            def step(self, until):
                self.time = until
                return self

            def active_configuration(self):
                return ("fake",)

            def checkpoint(self):
                return {"time": self.time}

            def restore(self, snap):
                self.time = snap["time"]

        def fake_builder(behavior, context, signal_sink, prefer_compiled):
            return "fake", FakeEngine

        register_engine(Activity, fake_builder)
        try:
            label, factory = build_engine_factory(simple_activity())
            assert label == "fake"
            assert isinstance(factory(), FakeEngine)
        finally:
            engine_registry._BUILDERS.pop(0)
        label, _factory = build_engine_factory(simple_activity())
        assert label == "token-engine"


class TestHarnessIsEngineAgnostic:
    def test_cosim_has_no_engine_type_dispatch(self):
        # the tentpole guarantee: the harness speaks only the protocol —
        # no isinstance against any engine or behavior class, and no
        # import of the engine classes at all (prose mentions are fine)
        import ast

        banned = {"StateMachineRuntime", "CompiledRuntime",
                  "TokenEngine", "ActivityRuntime", "StateMachine",
                  "Activity"}
        tree = ast.parse(inspect.getsource(cosim_module))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                imported = {alias.name for alias in node.names}
                assert not (imported & banned), (
                    f"cosim.py imports engine type(s) "
                    f"{sorted(imported & banned)}")
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "isinstance" \
                    and len(node.args) == 2:
                names = {leaf.id for leaf in ast.walk(node.args[1])
                         if isinstance(leaf, ast.Name)}
                assert not (names & banned), (
                    f"cosim.py line {node.lineno}: isinstance dispatch "
                    f"on {sorted(names & banned)}")

    def test_part_runtimes_conform(self):
        top = mm.Component("Top")
        owner = mm.Component("Owner")
        owner.add_behavior(simple_machine(), as_classifier_behavior=True)
        top.add_part("p", owner)
        with SystemSimulation(top, bus=False) as sim:
            assert conforms(sim.parts["p"].runtime)
