"""Tests for ASL class invariants (the OCL role)."""

import pytest

import repro.metamodel as mm
from repro import xmi
from repro.errors import ValidationError
from repro.validation import (
    Invariant,
    add_invariant,
    all_invariants_for,
    check_instances,
    invariants_of,
    validate_model,
)


@pytest.fixture
def counter_class():
    cls = mm.UmlClass("Counter")
    cls.add_attribute("count", mm.INTEGER, default=0)
    cls.add_attribute("limit", mm.INTEGER, default=10)
    return cls


class TestDeclaration:
    def test_add_and_enumerate(self, counter_class):
        invariant = add_invariant(counter_class, "count <= limit",
                                  name="bounded")
        assert invariants_of(counter_class) == (invariant,) or \
            invariants_of(counter_class)[0].condition == "count <= limit"
        assert invariant.name == "bounded"

    def test_malformed_condition_rejected(self, counter_class):
        with pytest.raises(ValidationError):
            add_invariant(counter_class, "count <=")

    def test_auto_naming(self, counter_class):
        first = add_invariant(counter_class, "count >= 0")
        second = add_invariant(counter_class, "limit > 0")
        assert first.name != second.name

    def test_inherited_invariants(self, counter_class):
        add_invariant(counter_class, "count >= 0")
        derived = mm.UmlClass("Derived")
        derived.add_generalization(counter_class)
        add_invariant(derived, "limit <= 100")
        assert len(all_invariants_for(derived)) == 2
        assert len(invariants_of(derived)) == 1


class TestEvaluation:
    def test_holds_with_defaults(self, counter_class):
        invariant = add_invariant(counter_class, "count <= limit")
        assert invariant.holds_for({})  # defaults: 0 <= 10

    def test_explicit_values(self, counter_class):
        invariant = add_invariant(counter_class, "count <= limit")
        assert invariant.holds_for({"count": 10})
        assert not invariant.holds_for({"count": 11})

    def test_self_alias(self, counter_class):
        invariant = add_invariant(counter_class,
                                  "self.count <= self.limit")
        assert invariant.holds_for({"count": 5})
        assert not invariant.holds_for({"count": 50})

    def test_evaluation_error_means_violated(self, counter_class):
        invariant = add_invariant(counter_class, "count / zero > 1")
        assert not invariant.holds_for({"count": 5})


class TestModelChecking:
    def test_check_instances_finds_violations(self, counter_class):
        add_invariant(counter_class, "count <= limit", name="bounded")
        model = mm.Model("m")
        model.add(counter_class)
        good = model.add(mm.InstanceSpecification("good", counter_class))
        good.set_slot("count", 3)
        bad = model.add(mm.InstanceSpecification("bad", counter_class))
        bad.set_slot("count", 99)
        findings = check_instances(model)
        assert len(findings) == 1
        assert findings[0].element_name == "bad"

    def test_validate_model_includes_invariants(self, counter_class):
        add_invariant(counter_class, "count <= limit")
        model = mm.Model("m")
        model.add(counter_class)
        bad = model.add(mm.InstanceSpecification("bad", counter_class))
        bad.set_slot("count", 99)
        report = validate_model(model)
        assert report.by_rule("class-invariant")
        assert not report.ok

    def test_validate_model_can_skip_invariants(self, counter_class):
        add_invariant(counter_class, "count <= limit")
        model = mm.Model("m")
        model.add(counter_class)
        bad = model.add(mm.InstanceSpecification("bad", counter_class))
        bad.set_slot("count", 99)
        report = validate_model(model, check_invariants=False)
        assert not report.by_rule("class-invariant")

    def test_subtype_instances_checked(self, counter_class):
        add_invariant(counter_class, "count >= 0")
        derived = mm.UmlClass("Derived")
        derived.add_generalization(counter_class)
        model = mm.Model("m")
        model.add(counter_class)
        model.add(derived)
        instance = model.add(mm.InstanceSpecification("d0", derived))
        instance.set_slot("count", -1)
        assert check_instances(model)


class TestPersistence:
    def test_invariants_survive_xmi(self, counter_class):
        add_invariant(counter_class, "count <= limit", name="bounded")
        model = mm.Model("m")
        model.add(counter_class)
        bad = model.add(mm.InstanceSpecification("bad", counter_class))
        bad.set_slot("count", 99)
        document = xmi.read_model(xmi.write_model(model))
        restored = document.model.member("Counter", mm.UmlClass)
        assert len(invariants_of(restored)) == 1
        assert invariants_of(restored)[0].name == "bounded"
        assert len(check_instances(document.model)) == 1
