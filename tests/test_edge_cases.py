"""Edge-case coverage across subsystems.

Cases that don't fit the per-module suites: entry/exit points, junction
pseudostates, multi-master SoCs, link/communication-path XMI round
trips, edge weights, connector latency functions, and generator corner
cases.
"""

import pytest

import repro.metamodel as mm
from repro import xmi
from repro.activities import Activity, TokenEngine
from repro.errors import SimulationError, StateMachineError
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.simulation import SystemSimulation
from repro.statemachines import (
    PseudostateKind,
    StateMachine,
    StateMachineRuntime,
)


class TestEntryExitPoints:
    def _machine(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        outside = region.add_state("Outside")
        after = region.add_state("After")
        composite = region.add_state("Comp")
        inner = composite.add_region()
        i2 = inner.add_initial()
        normal = inner.add_state("Normal")
        special = inner.add_state("Special")
        inner.add_transition(i2, normal)
        entry_point = inner.add_pseudostate(PseudostateKind.ENTRY_POINT,
                                            "via")
        inner.add_transition(entry_point, special)
        exit_point = inner.add_pseudostate(PseudostateKind.EXIT_POINT,
                                           "out")
        inner.add_transition(special, exit_point, trigger="leave")
        region.add_transition(exit_point, after)
        region.add_transition(init, outside)
        region.add_transition(outside, entry_point, trigger="enter")
        return machine

    def test_entry_point_routes_into_composite(self):
        runtime = StateMachineRuntime(self._machine()).start()
        runtime.send("enter")
        assert runtime.active_leaf_names() == ("Special",)
        assert runtime.in_state("Comp")

    def test_exit_point_routes_out(self):
        runtime = StateMachineRuntime(self._machine()).start()
        runtime.send("enter")
        runtime.send("leave")
        assert runtime.active_leaf_names() == ("After",)
        assert not runtime.in_state("Comp")


class TestJunction:
    def test_junction_selects_branch(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        start = region.add_state("Start")
        low = region.add_state("Low")
        high = region.add_state("High")
        junction = region.add_pseudostate(PseudostateKind.JUNCTION, "j")
        region.add_transition(init, start)
        region.add_transition(start, junction, trigger="go")
        region.add_transition(junction, high, guard="v > 5")
        region.add_transition(junction, low, guard="else")
        runtime = StateMachineRuntime(machine, context={"v": 9}).start()
        runtime.send("go")
        assert runtime.in_state("High")


class TestMultiMasterSoc:
    def test_two_masters_share_the_bus(self):
        masters = [make_traffic_generator(f"Cpu{i}", period=7.0 + i,
                                          address_range=256)
                   for i in range(2)]
        memory = make_memory("Ram", size_bytes=256)
        top = make_soc("Dual", masters=masters,
                       slaves=[(memory, "bus", 0, 256)])
        simulation = SystemSimulation(top, quantum=1.0)
        simulation.run(until=120.0)
        issued = sum(simulation.context_of(f"m{i}_cpu{i}")["issued"]
                     for i in range(2))
        assert issued > 20
        # NOTE: responses broadcast to both masters on the shared port —
        # a real bus would tag request ids; the model documents this
        store = simulation.context_of("s0_ram")["store"]
        assert store  # writes landed

    def test_latency_fn_overrides_default(self):
        cpu = make_traffic_generator("Cpu", period=10.0,
                                     address_range=64)
        memory = make_memory("Ram", size_bytes=64)
        top = make_soc("L", masters=[cpu],
                       slaves=[(memory, "bus", 0, 64)])
        slow = SystemSimulation(top, quantum=1.0,
                                latency_fn=lambda connector: 20.0)
        slow.run(until=35.0)
        # issue at t=10,20,30; 20-unit hop: nothing returns before t=35
        assert slow.context_of("m0_cpu")["responses"] == 0


class TestXmiMoreKinds:
    def test_link_round_trip(self):
        model = mm.Model("m")
        cpu = model.add(mm.UmlClass("Cpu"))
        mem = model.add(mm.UmlClass("Mem"))
        assoc = mm.associate(cpu, mem)
        model.add(assoc)
        cpu0 = model.add(mm.InstanceSpecification("cpu0", cpu))
        mem0 = model.add(mm.InstanceSpecification("mem0", mem))
        model.add(mm.Link(assoc, mem0, cpu0, name="wire0"))
        document = xmi.read_model(xmi.write_model(model))
        link = next(document.model.elements_of_type(mm.Link))
        assert [p.name for p in link.participants] == ["mem0", "cpu0"]
        assert link.association.member_ends

    def test_communication_path_round_trip(self):
        model = mm.Model("m")
        board = model.add(mm.Node("board"))
        chip = model.add(mm.Node("chip"))
        model.add(mm.CommunicationPath(board, chip, name="axi"))
        document = xmi.read_model(xmi.write_model(model))
        path = next(document.model.elements_of_type(mm.CommunicationPath))
        assert tuple(n.name for n in path.ends) == ("board", "chip")

    def test_enumeration_round_trip(self):
        model = mm.Model("m")
        enum = model.add(mm.Enumeration("Mode", ("FAST", "SLOW")))
        cls = model.add(mm.UmlClass("C"))
        cls.add_attribute("mode", enum)
        document = xmi.read_model(xmi.write_model(model))
        restored = document.model.member("Mode", mm.Enumeration)
        assert [l.name for l in restored.literals] == ["FAST", "SLOW"]
        attr = document.model.member("C", mm.UmlClass).member("mode")
        assert attr.type is restored

    def test_package_import_round_trip(self):
        model = mm.Model("m")
        lib = model.create_package("lib")
        app = model.create_package("app")
        app.import_package(lib)
        document = xmi.read_model(xmi.write_model(model))
        restored_app = document.model.member("app", mm.Package)
        assert [p.name for p in restored_app.imported_packages] == ["lib"]

    def test_use_case_round_trip(self):
        model = mm.Model("m")
        actor = model.add(mm.Actor("User"))
        system = model.add(mm.Component("Soc"))
        boot = model.add(mm.UseCase("Boot"))
        init = model.add(mm.UseCase("Init"))
        boot.add_actor(actor)
        boot.add_subject(system)
        boot.add_extension_point("on_error")
        boot.include(init)
        retry = model.add(mm.UseCase("Retry"))
        retry.extend(boot, "on_error", condition="retries < 3")
        document = xmi.read_model(xmi.write_model(model))
        restored = document.model.member("Boot", mm.UseCase)
        assert restored.actors[0].name == "User"
        assert restored.subjects[0].name == "Soc"
        assert restored.extension_points == ["on_error"]
        assert restored.includes[0].addition.name == "Init"
        restored_retry = document.model.member("Retry", mm.UseCase)
        assert restored_retry.extends[0].condition == "retries < 3"

    def test_reception_and_signal_round_trip(self):
        model = mm.Model("m")
        irq = model.add(mm.Signal("Irq"))
        irq.add_attribute("level", mm.INTEGER)
        handler = model.add(mm.UmlClass("Handler"))
        handler.add_reception(irq)
        document = xmi.read_model(xmi.write_model(model))
        restored = document.model.member("Handler", mm.UmlClass)
        assert restored.receptions[0].signal.name == "Irq"


class TestActivityEdgeWeights:
    def test_weighted_edge_needs_n_tokens(self):
        activity = Activity("w")
        source = activity.add_parameter_node("feed", is_input=True)
        collector = activity.add_action("collect",
                                        "batches = batches + 1;")
        pin = collector.add_input_pin("item")
        activity.object_flow(source, pin, weight=1)
        # route: feed pool -> edge; action consumes per weight
        engine = TokenEngine(activity, env={"batches": 0},
                             inputs={"feed": [1, 2, 3]})
        engine.run()
        assert engine.env["batches"] == 3

    def test_buffer_bounded_backpressure(self):
        activity = Activity("bp")
        source = activity.add_parameter_node("feed", is_input=True)
        buffer = activity.add_buffer("buf", upper_bound=2)
        edge = activity.object_flow(source, buffer)
        engine = TokenEngine(activity, inputs={"feed": [1, 2, 3, 4]})
        engine.run()
        assert engine.tokens_in(buffer) == 2
        # backpressure: the remaining tokens wait on the edge in front
        # of the full buffer
        assert engine.tokens_on(edge) == 2


class TestRegionEdgeCases:
    def test_history_without_default_uses_region_initial(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        off = region.add_state("Off")
        on = region.add_state("On")
        region.add_transition(init, off)
        inner = on.add_region()
        history = inner.add_pseudostate(
            PseudostateKind.SHALLOW_HISTORY, "h")
        i2 = inner.add_initial()
        a = inner.add_state("A")
        inner.add_transition(i2, a)
        region.add_transition(off, history, trigger="power")
        runtime = StateMachineRuntime(machine).start()
        runtime.send("power")
        assert runtime.active_leaf_names() == ("A",)

    def test_empty_region_tolerated(self):
        machine = StateMachine("m")
        machine.add_region("empty")
        runtime = StateMachineRuntime(machine).start()
        assert runtime.active_leaf_names() == ()
