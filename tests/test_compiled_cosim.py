"""Lockstep equivalence: compiled dispatch tables vs the interpreter.

The compiled fast path (``repro.statemachines.flatten.compile_machine``
+ ``CompiledRuntime``, and ``SystemSimulation(compile=True)``) promises
*bit-identical* behaviour to ``StateMachineRuntime``: same states, same
contexts (including ASL temporary leakage), same emitted signals in the
same order, same simulated clocks.  These tests drive both engines in
lockstep over crafted semantic corner cases, randomized machines and
whole randomized SoC assemblies.
"""

import random

import pytest

from repro.errors import StateMachineError
from repro.hw import (
    make_memory,
    make_soc,
    make_traffic_generator,
    make_uart_tx,
)
from repro.metamodel.components import Component, PortDirection
from repro.simulation import SystemSimulation
from repro.statemachines import (
    CompiledRuntime,
    StateMachine,
    StateMachineRuntime,
    TransitionKind,
    compile_fallback_reason,
    compile_machine,
)


def lockstep(machine, script, context=None):
    """Run both engines over the same script; assert equality throughout.

    ``script`` is a list of ("send", name, kwargs) / ("advance", dt)
    steps.  Returns the (identical) signal logs.
    """
    logs = ([], [])
    runtimes = []
    for log in logs:
        sink = (lambda entries: lambda s: entries.append(
            (s.signal, s.target, tuple(sorted(s.arguments.items())))))(log)
        runtimes.append((StateMachineRuntime if len(runtimes) == 0
                         else None, sink))
    interp = StateMachineRuntime(machine, context=dict(context or {}),
                                 signal_sink=runtimes[0][1]).start()
    compiled = CompiledRuntime(compile_machine(machine),
                               context=dict(context or {}),
                               signal_sink=runtimes[1][1])
    compiled.start()
    for step in script:
        if step[0] == "send":
            _, name, kwargs = step
            interp.send(name, **kwargs)
            compiled.send(name, **kwargs)
        else:
            _, delta = step
            interp.advance_time(delta)
            compiled.advance_time(delta)
        assert interp.active_leaf_names() == compiled.active_leaf_names()
        assert interp.context == compiled.context
        assert interp.time == compiled.time
        assert logs[0] == logs[1]
    return logs[0]


class TestRtcSemantics:
    """Crafted machines hitting run-to-completion corner cases."""

    def test_guards_evaluated_upfront(self):
        """The first effect must not disable an already-enabled guard."""
        machine = StateMachine("Upfront")
        region = machine.region
        init = region.add_initial()
        s = region.add_state("S")
        region.add_transition(init, s)
        region.add_transition(s, s, trigger="Go", guard="x == 0",
                              effect="x = 1;", kind=TransitionKind.INTERNAL)
        region.add_transition(s, s, trigger="Go", guard="x == 0",
                              effect="y = 5;", kind=TransitionKind.INTERNAL)
        lockstep(machine, [("send", "Go", {})], context={"x": 0})

    def test_external_fire_stops_later_candidates(self):
        machine = StateMachine("Stops")
        region = machine.region
        init = region.add_initial()
        s = region.add_state("S")
        region.add_transition(init, s)
        region.add_transition(s, s, trigger="Go", effect="a = 1;")
        region.add_transition(s, s, trigger="Go", effect="b = 1;",
                              kind=TransitionKind.INTERNAL)
        log = lockstep(machine, [("send", "Go", {})])
        assert log == []

    def test_timer_ordering_and_reset_on_exit(self):
        machine = StateMachine("Timers")
        region = machine.region
        init = region.add_initial()
        a = region.add_state("A")
        b = region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b, after=3.0, effect="path = 1;")
        region.add_transition(a, a, after=5.0, effect="path = 2;")
        region.add_transition(b, a, after=2.0, effect="cycles = cycles + 1;")
        lockstep(machine, [("advance", 1.0)] * 20, context={"cycles": 0})

    def test_event_parameters_and_temporary_leakage(self):
        """ASL temporaries leak into the context in both engines."""
        machine = StateMachine("Leak")
        region = machine.region
        init = region.add_initial()
        s = region.add_state("S")
        region.add_transition(init, s)
        region.add_transition(
            s, s, trigger="Acc", guard="event.v > 0",
            effect="tmp = event.v * 2; total = total + tmp;",
            kind=TransitionKind.INTERNAL)
        log_context = {"total": 0}
        machine2 = machine
        lockstep(machine2,
                 [("send", "Acc", {"v": 3}), ("send", "Acc", {"v": 0}),
                  ("send", "Acc", {"v": 7})],
                 context=log_context)

    def test_entry_exit_actions_and_sends(self):
        machine = StateMachine("EntryExit")
        region = machine.region
        init = region.add_initial()
        idle = region.add_state("Idle", entry="n = n + 1;",
                                exit='send Bye(n=n) to "p";')
        busy = region.add_state("Busy", entry='send Hi(n=n) to "p";')
        region.add_transition(init, idle)
        region.add_transition(idle, busy, trigger="Go")
        region.add_transition(busy, idle, trigger="Stop")
        log = lockstep(machine,
                       [("send", "Go", {}), ("send", "Stop", {}),
                        ("send", "Go", {})],
                       context={"n": 0})
        assert [entry[0] for entry in log] == ["Bye", "Hi", "Bye", "Hi"]


class TestRandomizedMachines:
    """Random flat machines in the compilable subset, driven in lockstep."""

    SIGNALS = ("A", "B", "C")
    GUARDS = (None, "x < 5", "x >= 2", "event.v > 0", "x == y")
    EFFECTS = (None, "x = x + 1;", "y = y + x;",
               'send Out(v=x) to "p";', "x = x - 1; y = event.v;")
    # time-triggered firings carry no parameters: no ``event.`` access
    TIME_EFFECTS = (None, "x = x + 1;", "y = y + x;",
                    'send Out(v=x) to "p";')

    def build(self, seed):
        rng = random.Random(seed)
        machine = StateMachine(f"Rnd{seed}")
        region = machine.region
        init = region.add_initial()
        states = [region.add_state(f"S{i}") for i in range(4)]
        region.add_transition(init, states[0])
        for state in states:
            for signal in self.SIGNALS:
                if rng.random() < 0.4:
                    continue
                kind = (TransitionKind.INTERNAL if rng.random() < 0.3
                        else TransitionKind.EXTERNAL)
                region.add_transition(
                    state,
                    state if kind is TransitionKind.INTERNAL
                    else rng.choice(states),
                    trigger=signal,
                    guard=rng.choice(self.GUARDS),
                    effect=rng.choice(self.EFFECTS),
                    kind=kind)
            if rng.random() < 0.5:
                region.add_transition(state, rng.choice(states),
                                      after=float(rng.randint(1, 4)),
                                      effect=rng.choice(self.TIME_EFFECTS))
        return machine

    @pytest.mark.parametrize("seed", range(12))
    def test_random_walk_equivalence(self, seed):
        machine = self.build(seed)
        rng = random.Random(1000 + seed)
        script = []
        for _ in range(60):
            if rng.random() < 0.6:
                script.append(("send", rng.choice(self.SIGNALS),
                               {"v": rng.randint(-2, 5)}))
            else:
                script.append(("advance", rng.choice((0.5, 1.0, 2.0))))
        lockstep(machine, script, context={"x": 0, "y": 0})


class TestFallbackDetection:
    def test_deferral_is_not_compilable(self):
        uart = make_uart_tx("U")
        reason = compile_fallback_reason(uart.classifier_behavior)
        assert reason is not None and "defer" in reason
        with pytest.raises(StateMachineError):
            compile_machine(uart.classifier_behavior)

    def test_composite_state_is_not_compilable(self):
        machine = StateMachine("Deep")
        region = machine.region
        init = region.add_initial()
        outer = region.add_state("Outer")
        region.add_transition(init, outer)
        inner_region = outer.add_region("r")
        inner_init = inner_region.add_initial()
        inner = inner_region.add_state("Inner")
        inner_region.add_transition(inner_init, inner)
        assert compile_fallback_reason(machine) is not None

    def test_stock_ip_machines_compile(self):
        for component in (make_traffic_generator("T", period=2.0),
                          make_memory("M")):
            assert compile_fallback_reason(
                component.classifier_behavior) is None


def run_pair(top_factory, until=200.0, contexts=None):
    """Run interpreted and compiled cosimulations of the same factory."""
    runs = []
    for compiled in (False, True):
        simulation = SystemSimulation(top_factory(), quantum=1.0,
                                      context=contexts,
                                      compile=compiled)
        simulation.run(until=until)
        runs.append(simulation)
    return runs


class TestCosimLockstep:
    def test_stock_d8_system_identical(self):
        def factory():
            cpu = make_traffic_generator("Cpu", period=2.0,
                                         address_range=0x800)
            memory = make_memory("Ram", size_bytes=0x800)
            return make_soc("Bench", masters=[cpu],
                            slaves=[(memory, "bus", 0, 0x800)])

        interpreted, compiled = run_pair(factory)
        assert all(verdict == "compiled"
                   for verdict in compiled.compile_report.values())
        assert interpreted.message_log == compiled.message_log
        assert interpreted.state_snapshot() == compiled.state_snapshot()
        for part in interpreted.parts:
            assert interpreted.context_of(part) == \
                compiled.context_of(part)
        assert compiled.stats()["compiled_parts"] == 3

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_assemblies_identical(self, seed):
        rng = random.Random(seed)
        n_masters = rng.randint(1, 3)
        n_slaves = rng.randint(1, 2)
        periods = [float(rng.choice((2, 3, 5))) for _ in range(n_masters)]

        def factory():
            masters = [
                make_traffic_generator(f"Cpu{i}", period=periods[i],
                                       address_range=0x400 * n_slaves)
                for i in range(n_masters)]
            slaves = [
                (make_memory(f"Ram{j}", size_bytes=0x400),
                 "bus", j * 0x400, 0x400)
                for j in range(n_slaves)]
            return make_soc(f"Rnd{seed}", masters=masters, slaves=slaves)

        interpreted, compiled = run_pair(factory, until=120.0)
        assert interpreted.message_log == compiled.message_log
        assert interpreted.state_snapshot() == compiled.state_snapshot()
        for part in interpreted.parts:
            assert interpreted.context_of(part) == \
                compiled.context_of(part)

    def test_mixed_engine_system_with_uart_fallback(self):
        """A part outside the subset interprets; the rest compile."""
        def factory():
            top = Component("Mix")
            sender = Component("Sender")
            sender.add_port("out", direction=PortDirection.OUT)
            machine = StateMachine("SenderBehavior")
            region = machine.region
            init = region.add_initial()
            loop = region.add_state("Loop")
            region.add_transition(init, loop)
            region.add_transition(
                loop, loop, after=30.0,
                effect='n = n + 1; send Send(byte=n) to "out";')
            sender.add_behavior(machine, as_classifier_behavior=True)
            sender.add_attribute("n", default=0)
            uart = make_uart_tx("Uart", bit_time=2.0)
            sender_part = top.add_part("tx_source", sender)
            uart_part = top.add_part("uart", uart)
            top.connect(sender.port("out"), uart.port("data"),
                        sender_part, uart_part, check=False)
            return top

        interpreted, compiled = run_pair(factory, until=300.0)
        assert compiled.compile_report["tx_source"] == "compiled"
        assert compiled.compile_report["uart"].startswith("interpreter:")
        assert interpreted.message_log == compiled.message_log
        assert interpreted.state_snapshot() == compiled.state_snapshot()
        for part in interpreted.parts:
            assert interpreted.context_of(part) == \
                compiled.context_of(part)
        assert interpreted.messages_delivered > 0
