"""Batched execution (PR 6): the SoA runtime's lockstep guarantee.

One batch group steps N identical parts through one shared compiled
dispatch table; the fused delivery path drains same-timestamp messages
to a group in one sweep.  None of that may be observable: a batched
run must produce byte-identical trace streams, observability
artifacts, checkpoints and campaign rows to a serial compiled (and
therefore interpreted) run of the same model — plain, under fault
campaigns, with subscribers attached, and across checkpoint/restore.
Heterogeneous parts degrade to their serial engine, announced by
``engine_degraded`` trace events, and those events are the *only*
permitted divergence.
"""

import json

import pytest

import repro.metamodel as mm
from repro.engine import ENGINE_DEGRADED, TraceBus, TraceRecorder
from repro.errors import FaultError
from repro.faults import (
    CampaignSpec,
    FaultCampaign,
    FaultSpec,
    run_campaign,
)
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.simulation import SystemSimulation

ENGINES = ("interpreted", "compiled", "batched")


def replicated_top(pairs=4):
    """N point-to-point cpu↔ram channels sharing two Components — a
    fully homogeneous top (every part batches, so batched runs owe
    byte-identical streams, with no degradation events at all)."""
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    top = mm.Component("Soc")
    for index in range(pairs):
        cpu_part = top.add_part(f"cpu{index}", cpu)
        ram_part = top.add_part(f"ram{index}", ram)
        top.connect(cpu.port("bus"), ram.port("bus"),
                    cpu_part, ram_part, check=False)
    return top


def singleton_top():
    """Every population has one member (including the generated bus):
    nothing can batch."""
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    return make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)])


def campaign(seed=1234):
    return FaultCampaign(
        [FaultSpec("drop", signal="ReadResp", probability=0.25),
         FaultSpec("delay", signal="WriteAck", delay=3.0, jitter=2.0,
                   probability=0.3)],
        name="lockstep", seed=seed)


def full_trace(engine, until=80.0, top=None, faults=None, seed=None,
               **kwargs):
    """One traced run; returns (recorder, end-of-run stats)."""
    bus = TraceBus()
    recorder = TraceRecorder(bus)
    with SystemSimulation(top if top is not None else replicated_top(),
                          engine=engine, bus=bus, faults=faults,
                          fault_seed=seed, **kwargs) as sim:
        sim.run(until=until)
        stats = sim.stats()
    return recorder, stats


class TestThreeEngineLockstep:
    def test_plain_byte_identical(self):
        streams = {engine: full_trace(engine)[0].to_jsonl()
                   for engine in ENGINES}
        assert streams["interpreted"], "trace must not be empty"
        assert streams["interpreted"] == streams["compiled"] \
            == streams["batched"]

    def test_kernel_event_parity(self):
        # fused dispatch coalesces deliveries but must account for
        # them: one kernel event per message, same as serial
        counts = {engine: full_trace(engine)[1]["kernel_events"]
                  for engine in ENGINES}
        assert counts["interpreted"] == counts["compiled"] \
            == counts["batched"] > 0

    def test_batched_actually_batches(self):
        recorder, stats = full_trace("batched")
        assert stats["mode"] == "batched"
        assert stats["batched_parts"] == 8  # 4 cpus + 4 rams
        assert stats["batch_groups"] == 2
        assert not any(event.kind == ENGINE_DEGRADED
                       for event in recorder.events)

    def test_under_fault_campaign_byte_identical(self):
        streams = {
            engine: full_trace(engine, faults=campaign(), seed=7)[0]
            for engine in ENGINES}
        jsonl = {engine: recorder.to_jsonl()
                 for engine, recorder in streams.items()}
        assert jsonl["interpreted"] == jsonl["compiled"] \
            == jsonl["batched"]
        assert any(event.kind == "fault"
                   for event in streams["batched"].events)

    def test_rerun_determinism(self):
        assert full_trace("batched")[0].to_jsonl() \
            == full_trace("batched")[0].to_jsonl()

    def test_different_fault_seeds_diverge(self):
        # sanity: the equalities above are not vacuous
        one = full_trace("batched", faults=campaign(), seed=1)[0]
        two = full_trace("batched", faults=campaign(), seed=2)[0]
        assert one.to_jsonl() != two.to_jsonl()


class TestWithObservers:
    """Coverage, profiler and flight recorder riding on a batched run."""

    @staticmethod
    def observe(engine, until=100.0, faults=None, seed=None):
        with SystemSimulation(replicated_top(), engine=engine,
                              faults=faults, fault_seed=seed,
                              coverage=True, profile=True,
                              flight_recorder=128) as sim:
            sim.run(until=until)
            suite = sim.observability
            return {
                "coverage": suite.coverage_report().to_json(indent=2),
                "profile": "\n".join(suite.profile_lines("steps")),
                "flight": suite.recorder.dump_text(
                    sim, reason="lockstep", detail="end-of-run"),
            }

    def test_artifacts_byte_identical(self):
        compiled = self.observe("compiled")
        batched = self.observe("batched")
        assert compiled == batched
        assert '"total_percent"' in batched["coverage"]
        assert batched["profile"]

    def test_artifacts_byte_identical_under_faults(self):
        assert self.observe("compiled", faults=campaign(), seed=7) \
            == self.observe("batched", faults=campaign(), seed=7)


class TestHeterogeneousDegradation:
    def test_singletons_degrade_with_trace_events(self):
        recorder, stats = full_trace("batched", top=singleton_top())
        degraded = [event for event in recorder.events
                    if event.kind == ENGINE_DEGRADED]
        assert {event.part for event in degraded} \
            == {"bus", "m0_cpu", "s0_ram"}
        for event in degraded:
            assert "batch_min" in event.data["reason"]
            assert event.t == 0.0
        assert stats["batched_parts"] == 0
        assert stats["batch_groups"] == 0

    def test_degraded_run_matches_compiled_modulo_announcements(self):
        # engine_degraded events consume ordinals; everything else in
        # the stream must be identical once they are filtered out
        compiled, _ = full_trace("compiled", top=singleton_top())
        batched, _ = full_trace("batched", top=singleton_top())
        reference = [event.to_dict() for event in compiled.events]
        filtered = [event.to_dict() for event in batched.events
                    if event.kind != ENGINE_DEGRADED]
        for event in reference + filtered:
            event.pop("ordinal")
        assert reference == filtered

    def test_batch_min_raises_the_bar(self):
        _, stats = full_trace("batched", batch_min=8)
        assert stats["batched_parts"] == 0  # each population is only 4

    def test_bad_engine_and_batch_min_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            SystemSimulation(replicated_top(), engine="warp")
        with pytest.raises(SimulationError):
            SystemSimulation(replicated_top(), engine="batched",
                             batch_min=1)


class TestCheckpointRestore:
    def test_mid_flight_batch_round_trip(self):
        sim = SystemSimulation(replicated_top(), engine="batched",
                               faults=campaign(), fault_seed=11)
        sim.run(until=40.0)
        snap = sim.checkpoint()
        assert "batched" in snap and len(snap["batched"]) == 2
        states = sim.state_snapshot()
        log_len = len(sim.message_log)
        sim.run(until=120.0)
        assert len(sim.message_log) > log_len
        sim.restore(snap)
        assert sim.simulator.now == 40.0
        assert sim.state_snapshot() == states
        assert len(sim.message_log) == log_len

        # replay from the checkpoint matches an uninterrupted serial run
        sim.run(until=120.0)
        reference = SystemSimulation(replicated_top(), compile=True,
                                     faults=campaign(), fault_seed=11)
        reference.run(until=120.0)
        assert sim.message_log == reference.message_log
        assert sim.state_snapshot() == reference.state_snapshot()
        assert sim.resilience.to_json() == reference.resilience.to_json()
        sim.close()
        reference.close()

    def test_lane_contexts_restore(self):
        sim = SystemSimulation(replicated_top(), engine="batched")
        sim.run(until=30.0)
        snap = sim.checkpoint()
        issued = sim.context_of("cpu0")["issued"]
        sim.run(until=60.0)
        assert sim.context_of("cpu0")["issued"] > issued
        sim.restore(snap)
        assert sim.context_of("cpu0")["issued"] == issued
        sim.close()


class TestVectorizedCampaign:
    @pytest.fixture()
    def spec_files(self, tmp_path):
        import repro.metamodel as mm
        from repro import xmi

        model = mm.Model("design")
        package = model.create_package("design")
        cpu = make_traffic_generator("Cpu", period=2.0,
                                     address_range=0x1000)
        ram = make_memory("Ram", size_bytes=0x800)
        make_soc("Soc", masters=[cpu] * 2,
                 slaves=[(ram, "bus", 0, 0x400),
                         (ram, "bus", 0x400, 0x400)],
                 package=package)
        model_path = tmp_path / "soc.xmi"
        xmi.write_file(str(model_path), model)
        campaign_path = tmp_path / "campaign.json"
        campaign_path.write_text(campaign().to_json())
        return str(model_path), str(campaign_path)

    @staticmethod
    def make_spec(spec_files, **kwargs):
        model_path, campaign_path = spec_files
        options = dict(seeds=(1, 2, 3, 4), model=model_path,
                       top="design::Soc", campaign=campaign_path,
                       until=40.0, coverage=True, name="sweep")
        options.update(kwargs)
        return CampaignSpec(**options)

    def test_vectorized_rows_byte_identical_to_serial(self, spec_files):
        serial = run_campaign(self.make_spec(spec_files, compiled=True))
        vectorized = run_campaign(
            self.make_spec(spec_files, compiled=True), vectorize=True)
        assert serial.mode == "serial"
        assert vectorized.mode == "vectorized"
        assert serial.to_json() == vectorized.to_json()

    def test_batched_vectorized_matches_compiled_serial(self, spec_files):
        serial = run_campaign(self.make_spec(spec_files, compiled=True))
        vectorized = run_campaign(
            self.make_spec(spec_files, engine="batched"), vectorize=True)
        assert serial.to_json() == vectorized.to_json()

    def test_journals_byte_identical(self, spec_files, tmp_path):
        serial_journal = str(tmp_path / "serial.jsonl")
        vector_journal = str(tmp_path / "vector.jsonl")
        run_campaign(self.make_spec(spec_files, compiled=True),
                     journal=serial_journal)
        run_campaign(self.make_spec(spec_files, compiled=True),
                     journal=vector_journal, vectorize=True)
        with open(serial_journal) as first, open(vector_journal) as second:
            serial_rows = [json.loads(line) for line in first
                           if json.loads(line)["status"] == "ok"]
            second.seek(0)
            vector_rows = [json.loads(line) for line in second
                           if json.loads(line)["status"] == "ok"]
        assert serial_rows == vector_rows
        assert len(serial_rows) == 4

    def test_vectorize_excludes_workers(self, spec_files):
        with pytest.raises(FaultError):
            run_campaign(self.make_spec(spec_files), workers=2,
                         vectorize=True)

    def test_engine_field_validated(self):
        with pytest.raises(FaultError):
            CampaignSpec(seeds=[1], builder="m:f", engine="warp")

    def test_spec_round_trips_engine(self, spec_files):
        spec = self.make_spec(spec_files, engine="batched")
        assert CampaignSpec.from_dict(spec.to_dict()).engine == "batched"
