"""Tests for the well-formedness rule framework and built-in rules."""

import pytest

import repro.metamodel as mm
from repro import statemachines as st
from repro.activities import Activity
from repro.profiles import apply_stereotype, create_soc_profile
from repro.validation import (
    Report,
    Rule,
    RuleSet,
    Severity,
    default_rules,
    validate_model,
)


class TestFramework:
    def test_rule_produces_findings(self):
        rule = Rule("no-x", "names must not be x", mm.UmlClass,
                    lambda c: ["bad name"] if c.name == "x" else [])
        findings = rule.run(mm.UmlClass("x"))
        assert len(findings) == 1
        assert findings[0].rule_id == "no-x"

    def test_ruleset_runs_over_scope(self):
        model = mm.Model("m")
        model.add(mm.UmlClass("x"))
        model.add(mm.UmlClass("ok"))
        rules = RuleSet([Rule("no-x", "", mm.UmlClass,
                              lambda c: ["bad"] if c.name == "x" else [])])
        report = rules.run(model)
        assert len(report.findings) == 1

    def test_duplicate_rule_id_rejected(self):
        rules = RuleSet()
        rules.add(Rule("a", "", mm.Element, lambda e: []))
        with pytest.raises(ValueError):
            rules.add(Rule("a", "", mm.Element, lambda e: []))

    def test_report_partitions(self):
        from repro.validation.rules import Finding

        report = Report([
            Finding("r1", Severity.ERROR, "id", "n", "boom"),
            Finding("r2", Severity.WARNING, "id", "n", "meh"),
        ])
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert not report.ok
        assert "1 error(s)" in report.summary()


class TestBuiltinRules:
    def test_clean_model_passes(self, simple_model):
        report = validate_model(simple_model)
        assert report.ok, report.findings

    def test_abstract_instance_flagged(self):
        model = mm.Model("m")
        abstract = model.add(mm.UmlClass("A", is_abstract=True))
        model.add(mm.InstanceSpecification("a0", abstract))
        report = validate_model(model)
        assert report.by_rule("no-abstract-instances")

    def test_untyped_attribute_warned(self):
        model = mm.Model("m")
        cls = model.add(mm.UmlClass("C"))
        cls.add_attribute("mystery")
        report = validate_model(model)
        findings = report.by_rule("attribute-typed")
        assert findings and findings[0].severity is Severity.WARNING
        assert report.ok  # warnings don't fail

    def test_unnamed_classifier_warned(self):
        model = mm.Model("m")
        model._own(mm.UmlClass(""))
        report = validate_model(model)
        assert report.by_rule("classifier-named")

    def test_interface_with_body_flagged(self):
        model = mm.Model("m")
        iface = model.add(mm.Interface("I"))
        op = iface.add_operation("f")
        op.set_body("return 1;")
        report = validate_model(model)
        assert report.by_rule("interface-contract")

    def test_unwired_required_port_warned(self):
        model = mm.Model("m")
        iface = model.add(mm.Interface("I"))
        consumer = model.add(mm.Component("C"))
        port = consumer.add_port("needs", direction=mm.PortDirection.OUT)
        port.require(iface)
        report = validate_model(model)
        assert report.by_rule("required-wired")

    def test_invalid_statemachine_reported(self):
        model = mm.Model("m")
        cls = model.add(mm.UmlClass("C"))
        machine = st.StateMachine("broken")
        machine.region.add_state("S")  # no initial
        cls.add_behavior(machine)
        report = validate_model(model)
        assert report.by_rule("statemachine-structure")
        assert not report.ok

    def test_statemachine_lint_surfaces_unreachable(self):
        model = mm.Model("m")
        cls = model.add(mm.UmlClass("C"))
        machine = st.StateMachine("m1")
        region = machine.region
        init = region.add_initial()
        a = region.add_state("A")
        region.add_state("Orphan")
        region.add_transition(init, a)
        cls.add_behavior(machine)
        report = validate_model(model)
        findings = report.by_rule("statemachine-lint")
        assert any("Orphan" in f.message for f in findings)

    def test_invalid_activity_reported(self):
        model = mm.Model("m")
        cls = model.add(mm.UmlClass("C"))
        activity = Activity("bad")
        activity.add_final()  # unreachable final
        cls.add_behavior(activity)
        report = validate_model(model)
        assert report.by_rule("activity-structure")

    def test_profile_constraints_folded_in(self):
        prof = create_soc_profile()
        model = mm.Model("m")
        memory = model.add(mm.Component("M"))
        apply_stereotype(memory, prof.stereotype("Memory"), size_bytes=-1)
        report = validate_model(model)
        assert report.by_rule("profile-constraint")
        assert not report.ok

    def test_usecase_without_participants_warned(self):
        model = mm.Model("m")
        model.add(mm.UseCase("Lonely"))
        report = validate_model(model)
        assert report.by_rule("usecase-participants")

    def test_rule_count_is_stable(self):
        assert len(default_rules()) == 17

    def test_completion_livelock_surfaced(self):
        model = mm.Model("m")
        cls = model.add(mm.UmlClass("C"))
        machine = st.StateMachine("live")
        region = machine.region
        init = region.add_initial()
        a, b = region.add_state("A"), region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b)
        region.add_transition(b, a)
        cls.add_behavior(machine)
        report = validate_model(model)
        findings = report.by_rule("statemachine-lint")
        assert any("livelock" in f.message for f in findings)
