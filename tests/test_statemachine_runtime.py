"""Semantics tests for the run-to-completion state machine runtime."""

import pytest

from repro.errors import StateMachineError
from repro.statemachines import (
    EventOccurrence,
    PseudostateKind,
    StateMachine,
    StateMachineRuntime,
    TransitionKind,
)


def build_toggle():
    machine = StateMachine("toggle")
    region = machine.region
    init = region.add_initial()
    off = region.add_state("Off")
    on = region.add_state("On")
    region.add_transition(init, off)
    region.add_transition(off, on, trigger="power")
    region.add_transition(on, off, trigger="power")
    return machine


class TestBasics:
    def test_start_enters_default(self, toggle_machine):
        runtime = StateMachineRuntime(toggle_machine).start()
        assert runtime.active_leaf_names() == ("Off",)

    def test_dispatch_fires_transition(self, toggle_machine):
        runtime = StateMachineRuntime(toggle_machine).start()
        runtime.send("power")
        assert runtime.in_state("On")
        runtime.send("power")
        assert runtime.in_state("Off")

    def test_unmatched_event_discarded(self, toggle_machine):
        runtime = StateMachineRuntime(toggle_machine).start()
        runtime.send("noise")
        assert runtime.in_state("Off")

    def test_double_start_rejected(self, toggle_machine):
        runtime = StateMachineRuntime(toggle_machine).start()
        with pytest.raises(StateMachineError):
            runtime.start()

    def test_dispatch_before_start_rejected(self, toggle_machine):
        runtime = StateMachineRuntime(toggle_machine)
        with pytest.raises(StateMachineError):
            runtime.send("power")


class TestActionsAndGuards:
    def _machine(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        idle = region.add_state("Idle", entry="entries = entries + 1;",
                                exit="exits = exits + 1;")
        busy = region.add_state("Busy")
        region.add_transition(init, idle)
        region.add_transition(idle, busy, trigger="req",
                              guard="credit > 0",
                              effect="credit = credit - 1;")
        region.add_transition(busy, idle, trigger="ack")
        return machine

    def test_guard_blocks_when_false(self):
        runtime = StateMachineRuntime(
            self._machine(), context={"credit": 0, "entries": 0,
                                      "exits": 0}).start()
        runtime.send("req")
        assert runtime.in_state("Idle")

    def test_effect_and_entry_exit_order(self):
        runtime = StateMachineRuntime(
            self._machine(), context={"credit": 2, "entries": 0,
                                      "exits": 0}, trace=True).start()
        runtime.send("req")
        assert runtime.context["credit"] == 1
        assert runtime.context["exits"] == 1
        kinds = [kind for _t, kind, _d in runtime.trace]
        exit_index = kinds.index("exit")
        fire_index = kinds.index("fire")
        assert fire_index < exit_index  # fire logged, then exit runs

    def test_callable_guard_and_effect(self, toggle_machine):
        hits = []
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        a = region.add_state("A")
        b = region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(
            a, b, trigger="go",
            guard=lambda ctx, ev: ctx["enabled"],
            effect=lambda ctx, ev: hits.append(ev.name))
        runtime = StateMachineRuntime(machine,
                                      context={"enabled": True}).start()
        runtime.send("go")
        assert hits == ["go"]

    def test_event_parameters_visible(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        a, b = region.add_state("A"), region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b, trigger="data",
                              guard="event.value > 10",
                              effect="seen = event.value;")
        runtime = StateMachineRuntime(machine).start()
        runtime.send("data", value=3)
        assert runtime.in_state("A")
        runtime.send("data", value=30)
        assert runtime.in_state("B")
        assert runtime.context["seen"] == 30

    def test_internal_transition_runs_no_entry_exit(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        state = region.add_state("S", entry="entries = entries + 1;")
        region.add_transition(init, state)
        region.add_transition(state, state, trigger="tick",
                              effect="count = count + 1;",
                              kind=TransitionKind.INTERNAL)
        runtime = StateMachineRuntime(
            machine, context={"entries": 0, "count": 0}).start()
        runtime.send("tick").send("tick")
        assert runtime.context == {"entries": 1, "count": 2}

    def test_external_self_transition_reenters(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        state = region.add_state("S", entry="entries = entries + 1;")
        region.add_transition(init, state)
        region.add_transition(state, state, trigger="tick")
        runtime = StateMachineRuntime(machine,
                                      context={"entries": 0}).start()
        runtime.send("tick")
        assert runtime.context["entries"] == 2


class TestHierarchy:
    def _composite(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        off = region.add_state("Off")
        on = region.add_state("On")
        region.add_transition(init, off)
        region.add_transition(off, on, trigger="power")
        region.add_transition(on, off, trigger="power")
        inner = on.add_region("inner")
        i2 = inner.add_initial()
        red = inner.add_state("Red")
        green = inner.add_state("Green")
        inner.add_transition(i2, red)
        inner.add_transition(red, green, trigger="tick")
        inner.add_transition(green, red, trigger="tick")
        return machine

    def test_composite_default_entry(self):
        runtime = StateMachineRuntime(self._composite()).start()
        runtime.send("power")
        assert runtime.active_leaf_names() == ("Red",)
        assert runtime.in_state("On")

    def test_exit_composite_exits_children(self):
        runtime = StateMachineRuntime(self._composite()).start()
        runtime.send("power")
        runtime.send("tick")
        runtime.send("power")
        assert runtime.active_leaf_names() == ("Off",)
        assert not runtime.in_state("Green")

    def test_inner_priority_over_outer(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        outer = region.add_state("Outer")
        other = region.add_state("Other")
        region.add_transition(init, outer)
        region.add_transition(outer, other, trigger="e")
        inner_region = outer.add_region()
        i2 = inner_region.add_initial()
        inner = inner_region.add_state("Inner")
        sibling = inner_region.add_state("Sibling")
        inner_region.add_transition(i2, inner)
        inner_region.add_transition(inner, sibling, trigger="e")
        runtime = StateMachineRuntime(machine).start()
        runtime.send("e")
        # the inner transition wins; the outer one is conflicting
        assert runtime.in_state("Sibling")
        assert runtime.in_state("Outer")

    def test_transition_targeting_deep_state(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        start = region.add_state("Start")
        composite = region.add_state("Comp")
        inner_region = composite.add_region()
        i2 = inner_region.add_initial()
        a = inner_region.add_state("A")
        b = inner_region.add_state("B")
        inner_region.add_transition(i2, a)
        region.add_transition(init, start)
        region.add_transition(start, b, trigger="jump")
        runtime = StateMachineRuntime(machine).start()
        runtime.send("jump")
        assert runtime.active_leaf_names() == ("B",)
        assert runtime.in_state("Comp")


class TestHistory:
    def _history_machine(self, deep=False):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        off = region.add_state("Off")
        on = region.add_state("On")
        region.add_transition(init, off)
        inner = on.add_region("inner")
        kind = PseudostateKind.DEEP_HISTORY if deep \
            else PseudostateKind.SHALLOW_HISTORY
        history = inner.add_pseudostate(kind, "hist")
        i2 = inner.add_initial()
        a = inner.add_state("A")
        b = inner.add_state("B")
        inner.add_transition(i2, a)
        inner.add_transition(a, b, trigger="step")
        region.add_transition(off, history, trigger="power")
        region.add_transition(on, off, trigger="power")
        return machine

    def test_shallow_history_restores(self):
        runtime = StateMachineRuntime(self._history_machine()).start()
        runtime.send("power")  # On/A
        runtime.send("step")   # On/B
        runtime.send("power")  # Off
        runtime.send("power")  # history -> B
        assert runtime.active_leaf_names() == ("B",)

    def test_history_defaults_when_no_memory(self):
        runtime = StateMachineRuntime(self._history_machine()).start()
        runtime.send("power")
        assert runtime.active_leaf_names() == ("A",)

    def test_deep_history_restores_nested_leaf(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        off = region.add_state("Off")
        on = region.add_state("On")
        region.add_transition(init, off)
        inner = on.add_region("inner")
        deep = inner.add_pseudostate(PseudostateKind.DEEP_HISTORY, "dh")
        i2 = inner.add_initial()
        mid = inner.add_state("Mid")
        inner.add_transition(i2, mid)
        mid_region = mid.add_region()
        i3 = mid_region.add_initial()
        x = mid_region.add_state("X")
        y = mid_region.add_state("Y")
        mid_region.add_transition(i3, x)
        mid_region.add_transition(x, y, trigger="step")
        region.add_transition(off, deep, trigger="power")
        region.add_transition(on, off, trigger="power")
        runtime = StateMachineRuntime(machine).start()
        runtime.send("power")
        runtime.send("step")
        runtime.send("power")
        runtime.send("power")
        assert runtime.active_leaf_names() == ("Y",)


class TestOrthogonalAndForkJoin:
    def _fork_join(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        start = region.add_state("Start")
        done = region.add_state("Done")
        par = region.add_state("Par")
        fork = region.add_pseudostate(PseudostateKind.FORK, "fork")
        join = region.add_pseudostate(PseudostateKind.JOIN, "join")
        region.add_transition(init, start)
        region.add_transition(start, fork, trigger="go")
        ra, rb = par.add_region("ra"), par.add_region("rb")
        a1, a2 = ra.add_state("A1"), ra.add_state("A2")
        b1, b2 = rb.add_state("B1"), rb.add_state("B2")
        ia, ib = ra.add_initial(), rb.add_initial()
        ra.add_transition(ia, a1)
        rb.add_transition(ib, b1)
        ra.add_transition(a1, a2, trigger="a")
        rb.add_transition(b1, b2, trigger="b")
        region.add_transition(fork, a1)
        region.add_transition(fork, b1)
        region.add_transition(a2, join)
        region.add_transition(b2, join)
        region.add_transition(join, done, trigger="finish")
        return machine

    def test_fork_enters_both_regions(self):
        runtime = StateMachineRuntime(self._fork_join()).start()
        runtime.send("go")
        assert runtime.active_leaf_names() == ("A1", "B1")

    def test_orthogonal_regions_independent(self):
        runtime = StateMachineRuntime(self._fork_join()).start()
        runtime.send("go")
        runtime.send("a")
        assert runtime.active_leaf_names() == ("A2", "B1")

    def test_join_waits_for_all_regions(self):
        runtime = StateMachineRuntime(self._fork_join()).start()
        runtime.send("go")
        runtime.send("a")
        runtime.send("finish")  # join not ready: B still in B1
        assert runtime.in_state("A2")
        runtime.send("b")
        runtime.send("finish")
        assert runtime.active_leaf_names() == ("Done",)

    def test_same_event_fires_in_both_regions(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        par = region.add_state("Par")
        region.add_transition(init, par)
        for label in ("x", "y"):
            sub = par.add_region(label)
            i = sub.add_initial()
            one = sub.add_state(f"{label}1")
            two = sub.add_state(f"{label}2")
            sub.add_transition(i, one)
            sub.add_transition(one, two, trigger="shared")
        runtime = StateMachineRuntime(machine).start()
        runtime.send("shared")
        assert runtime.active_leaf_names() == ("x2", "y2")


class TestChoiceJunctionTerminate:
    def test_choice_selects_dynamic_branch(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        idle = region.add_state("Idle")
        low = region.add_state("Low")
        high = region.add_state("High")
        choice = region.add_pseudostate(PseudostateKind.CHOICE, "c")
        region.add_transition(init, idle)
        region.add_transition(idle, choice, trigger="sample",
                              effect="v = event.value;")
        region.add_transition(choice, high, guard="v > 10")
        region.add_transition(choice, low, guard="else")
        runtime = StateMachineRuntime(machine, context={"v": 0}).start()
        runtime.send("sample", value=42)
        assert runtime.in_state("High")  # effect ran before choice eval

    def test_choice_without_enabled_branch_raises(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        idle = region.add_state("Idle")
        target = region.add_state("T")
        choice = region.add_pseudostate(PseudostateKind.CHOICE, "c")
        region.add_transition(init, idle)
        region.add_transition(idle, choice, trigger="go")
        region.add_transition(choice, target, guard="false")
        runtime = StateMachineRuntime(machine).start()
        with pytest.raises(StateMachineError):
            runtime.send("go")

    def test_terminate_stops_processing(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        state = region.add_state("S")
        terminate = region.add_pseudostate(PseudostateKind.TERMINATE, "X")
        region.add_transition(init, state)
        region.add_transition(state, terminate, trigger="kill")
        runtime = StateMachineRuntime(machine).start()
        runtime.send("kill")
        assert runtime.is_terminated
        runtime.send("kill")  # ignored after termination
        assert runtime.is_terminated


class TestCompletionAndFinal:
    def test_completion_chain_at_start(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        s1 = region.add_state("S1")
        s2 = region.add_state("S2")
        region.add_transition(init, s1)
        region.add_transition(s1, s2)
        runtime = StateMachineRuntime(machine).start()
        assert runtime.active_leaf_names() == ("S2",)

    def test_completion_with_guard(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        s1 = region.add_state("S1")
        s2 = region.add_state("S2")
        region.add_transition(init, s1)
        region.add_transition(s1, s2, guard="ready")
        runtime = StateMachineRuntime(machine,
                                      context={"ready": False}).start()
        assert runtime.active_leaf_names() == ("S1",)

    def test_machine_completion(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        s = region.add_state("S")
        final = region.add_final()
        region.add_transition(init, s)
        region.add_transition(s, final, trigger="end")
        runtime = StateMachineRuntime(machine).start()
        assert not runtime.is_complete
        runtime.send("end")
        assert runtime.is_complete

    def test_composite_completion_fires_completion_transition(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        comp = region.add_state("Comp")
        after = region.add_state("After")
        region.add_transition(init, comp)
        region.add_transition(comp, after)  # completion transition
        inner = comp.add_region()
        i2 = inner.add_initial()
        work = inner.add_state("Work")
        fin = inner.add_final()
        inner.add_transition(i2, work)
        inner.add_transition(work, fin, trigger="done")
        runtime = StateMachineRuntime(machine).start()
        assert runtime.in_state("Comp")
        runtime.send("done")
        assert runtime.active_leaf_names() == ("After",)


class TestTimeAndChangeEvents:
    def test_time_event_fires_at_deadline(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        wait = region.add_state("Wait")
        out = region.add_state("Timeout")
        region.add_transition(init, wait)
        region.add_transition(wait, out, after=10.0)
        runtime = StateMachineRuntime(machine).start()
        runtime.advance_time(9.99)
        assert runtime.in_state("Wait")
        runtime.advance_time(0.01)
        assert runtime.in_state("Timeout")

    def test_timer_cancelled_on_exit(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        wait = region.add_state("Wait")
        out = region.add_state("Timeout")
        safe = region.add_state("Safe")
        region.add_transition(init, wait)
        region.add_transition(wait, out, after=10.0)
        region.add_transition(wait, safe, trigger="escape")
        runtime = StateMachineRuntime(machine).start()
        runtime.send("escape")
        runtime.advance_time(20.0)
        assert runtime.in_state("Safe")

    def test_periodic_self_timer(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        tick = region.add_state("Tick")
        region.add_transition(init, tick)
        region.add_transition(tick, tick, after=5.0,
                              effect="n = n + 1;")
        runtime = StateMachineRuntime(machine, context={"n": 0}).start()
        runtime.advance_time(26.0)
        assert runtime.context["n"] == 5

    def test_negative_time_rejected(self, toggle_machine):
        runtime = StateMachineRuntime(toggle_machine).start()
        with pytest.raises(StateMachineError):
            runtime.advance_time(-1)

    def test_change_event_rising_edge(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        idle = region.add_state("Idle")
        alerted = region.add_state("Alerted")
        region.add_transition(init, idle)
        region.add_transition(idle, alerted, when="level > 100")
        runtime = StateMachineRuntime(machine,
                                      context={"level": 0}).start()
        runtime.send("noise")
        assert runtime.in_state("Idle")
        runtime.context["level"] = 200
        runtime.send("noise")  # any RTC step re-evaluates conditions
        assert runtime.in_state("Alerted")


class TestDeferral:
    def test_deferred_event_recalled(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        busy = region.add_state("Busy")
        idle = region.add_state("Idle")
        got = region.add_state("Got")
        busy.defer("req")
        region.add_transition(init, busy)
        region.add_transition(busy, idle, trigger="done")
        region.add_transition(idle, got, trigger="req")
        runtime = StateMachineRuntime(machine).start()
        runtime.send("req")
        assert runtime.in_state("Busy")
        runtime.send("done")
        assert runtime.in_state("Got")

    def test_deferred_order_preserved(self):
        machine = StateMachine("m")
        region = machine.region
        init = region.add_initial()
        busy = region.add_state("Busy")
        idle = region.add_state("Idle")
        busy.defer("req")
        region.add_transition(init, busy)
        region.add_transition(busy, idle, trigger="done")
        region.add_transition(idle, idle, trigger="req",
                              effect="order = order + [event.seq];",
                              kind=TransitionKind.INTERNAL)
        runtime = StateMachineRuntime(machine,
                                      context={"order": []}).start()
        runtime.dispatch(EventOccurrence.signal("req", seq=1))
        runtime.dispatch(EventOccurrence.signal("req", seq=2))
        runtime.send("done")
        assert runtime.context["order"] == [1, 2]
