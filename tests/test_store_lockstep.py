"""The warm-start lockstep gate (PR 8): serving pipeline artifacts
from the store must be unobservable.  A simulation whose compiles
replay stored plans owes byte-identical trace streams to a cold build
and to a store-less reference — on all three engines, plain and under a
seeded fault campaign — and a campaign sweep run against a warm store
owes byte-identical reports.  The store may only ever change *when*
work happens, never *what* comes out."""

import os

import pytest

import repro
import repro.metamodel as mm
import repro.store as store_mod
from repro import xmi
from repro.engine import TraceBus, TraceRecorder
from repro.faults import CampaignSpec, FaultCampaign, FaultSpec, \
    run_campaign
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.simulation import SystemSimulation
from repro.store import STORE_ENV, ArtifactStore, using_store

ENGINES = ("interpreted", "compiled", "batched")


@pytest.fixture(autouse=True)
def _isolated_store_state():
    os.environ.pop(STORE_ENV, None)
    store_mod._ACTIVE = None
    yield
    os.environ.pop(STORE_ENV, None)
    store_mod._ACTIVE = False


def replicated_top(pairs=2):
    cpu = make_traffic_generator("Cpu", period=2.0,
                                 address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    top = mm.Component("Soc")
    for index in range(pairs):
        cpu_part = top.add_part(f"cpu{index}", cpu)
        ram_part = top.add_part(f"ram{index}", ram)
        top.connect(cpu.port("bus"), ram.port("bus"),
                    cpu_part, ram_part, check=False)
    return top


def campaign(seed=1234):
    return FaultCampaign(
        [FaultSpec("drop", signal="ReadResp", probability=0.25),
         FaultSpec("delay", signal="WriteAck", delay=3.0, jitter=2.0,
                   probability=0.3)],
        name="store-lockstep", seed=seed)


def traced_run(engine, store, faults=None, seed=None, until=40.0):
    """One fresh build + traced run under ``store`` (None = no store).

    ``reset_ids`` makes every build id-identical, so a rebuild stands
    in for "another process opening the same store directory"."""
    repro.reset_ids()
    top = replicated_top()
    bus = TraceBus()
    recorder = TraceRecorder(bus)
    with using_store(store):
        with SystemSimulation(top, engine=engine, bus=bus,
                              faults=faults, fault_seed=seed) as sim:
            sim.run(until=until)
    return recorder.to_jsonl()


class TestWarmStartLockstep:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_cold_and_warm_match_the_storeless_reference(self, engine,
                                                         tmp_path):
        reference = traced_run(engine, store=None)
        cold_store = ArtifactStore(tmp_path)
        cold = traced_run(engine, store=cold_store)
        warm_store = ArtifactStore(tmp_path)
        warm = traced_run(engine, store=warm_store)
        assert reference  # non-vacuous: the trace has events
        assert cold == reference
        assert warm == reference
        if engine in ("compiled", "batched"):
            # the warm run really was served from the store
            assert warm_store.graph.built("compile") == 0
            assert warm_store.graph.reused("compile") > 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_under_fault_campaign(self, engine, tmp_path):
        reference = traced_run(engine, store=None, faults=campaign(),
                               seed=7)
        cold = traced_run(engine, store=ArtifactStore(tmp_path),
                          faults=campaign(), seed=7)
        warm = traced_run(engine, store=ArtifactStore(tmp_path),
                          faults=campaign(), seed=7)
        assert cold == reference
        assert warm == reference

    def test_corrupted_artifact_still_locksteps(self, tmp_path):
        reference = traced_run("compiled", store=None)
        traced_run("compiled", store=ArtifactStore(tmp_path))
        store = ArtifactStore(tmp_path)
        for entry in store.ls("compile"):
            path = store._path("compile", entry["key"])
            path.write_text(path.read_text()[:40])  # truncate them all
        damaged = traced_run("compiled", store=store)
        assert damaged == reference
        assert store.graph.built("compile") > 0  # rebuilt, not served


class TestCampaignWithStore:
    def _spec(self, tmp_path, engine):
        model = mm.Model("design")
        package = model.create_package("design")
        cpu = make_traffic_generator("Cpu", period=2.0,
                                     address_range=0x1000)
        ram = make_memory("Ram", size_bytes=0x800)
        make_soc("Soc", masters=[cpu],
                 slaves=[(ram, "bus", 0, 0x800)], package=package)
        model_file = tmp_path / "soc.xmi"
        xmi.write_file(str(model_file), model)
        campaign_file = tmp_path / "campaign.json"
        campaign_file.write_text(campaign().to_json())
        return CampaignSpec(seeds=[1, 2, 3], model=str(model_file),
                            top="design::Soc",
                            campaign=str(campaign_file), until=30.0,
                            name="store-sweep", engine=engine)

    @pytest.mark.parametrize("engine", ("interpreted", "compiled"))
    def test_store_backed_sweep_is_byte_identical(self, engine,
                                                  tmp_path):
        spec = self._spec(tmp_path, engine)
        reference = run_campaign(spec, workers=0)
        with using_store(ArtifactStore(tmp_path / "store")):
            cold = run_campaign(spec, workers=0)
        with using_store(ArtifactStore(tmp_path / "store")):
            warm = run_campaign(spec, workers=0)
        assert cold.to_json() == reference.to_json()
        assert warm.to_json() == reference.to_json()

    def test_vectorized_sweep_with_store(self, tmp_path):
        spec = self._spec(tmp_path, "compiled")
        reference = run_campaign(spec, workers=0)
        with using_store(ArtifactStore(tmp_path / "store")):
            vectorized = run_campaign(spec, workers=0, vectorize=True)
        assert vectorized.to_json() == reference.to_json()
