"""Tests for XMI serialization: element coverage and round-trip fidelity."""

import pytest

import repro.metamodel as mm
from repro import activities as ac
from repro import interactions as ixn
from repro import statemachines as st
from repro import xmi
from repro.errors import XmiError
from repro.profiles import (
    apply_stereotype,
    create_soc_profile,
    has_stereotype,
    tagged_value,
)


def build_full_model():
    """A model touching every serializable element family."""
    prof = create_soc_profile()
    model = mm.Model("soc")
    pkg = model.create_package("top")

    iface = pkg.add(mm.Interface("IBus"))
    read = iface.add_operation("read", mm.INTEGER)
    read.add_parameter("addr", mm.INTEGER)

    cpu = pkg.add(mm.Component("Cpu"))
    cpu.realize(iface)
    ctrl = cpu.add_attribute("ctrl", mm.INTEGER, default=5)
    apply_stereotype(cpu, prof.stereotype("Processor"), isa="rv64gc")
    apply_stereotype(ctrl, prof.stereotype("Register"), address=0)
    step = cpu.add_operation("step", mm.INTEGER)
    step.set_body("return ctrl + 1;")
    port = cpu.add_port("bus", direction=mm.PortDirection.OUT)
    port.provide(iface)

    mem = pkg.add(mm.Component("Mem"))
    sport = mem.add_port("s", direction=mm.PortDirection.IN)
    sport.require(iface)

    top = pkg.add(mm.Component("Top"))
    part_cpu = top.add_part("cpu", cpu)
    part_mem = top.add_part("mem", mem)
    top.connect(port, sport, part_cpu, part_mem)

    assoc = mm.associate(cpu, mem, target_multiplicity=mm.MANY)
    pkg.add(assoc)

    enum = pkg.add(mm.Enumeration("Mode", ("FAST", "SLOW")))

    inst = pkg.add(mm.InstanceSpecification("cpu0", cpu))
    inst.set_slot("ctrl", 7)

    machine = st.StateMachine("fsm")
    region = machine.region
    init = region.add_initial()
    idle = region.add_state("Idle", entry="x = 1;")
    run = region.add_state("Run")
    run.defer("irq")
    region.add_transition(init, idle)
    region.add_transition(idle, run, trigger="go", guard="x > 0",
                          effect="x = x + 1;")
    region.add_transition(run, idle, after=4.0)
    cpu.add_behavior(machine, as_classifier_behavior=True)

    activity = ac.Activity("boot")
    a_init = activity.add_initial()
    act = activity.add_action("load", "done = true;")
    out_pin = act.add_output_pin("out")
    a_final = activity.add_final()
    activity.chain(a_init, act, a_final)
    cpu.add_behavior(activity)

    interaction = pkg.add(ixn.Interaction("handshake"))
    l1 = interaction.add_lifeline("cpu", cpu)
    l2 = interaction.add_lifeline("mem", mem)
    interaction.message("req", l1, l2)
    alt = interaction.alt()
    ok = alt.add_operand("ok")
    ok.add(ixn.Message("ack", l2, l1))

    actor = pkg.add(mm.Actor("User"))
    case = pkg.add(mm.UseCase("Boot"))
    case.add_actor(actor)
    case.add_subject(top)

    node = pkg.add(mm.Node("board"))
    artifact = pkg.add(mm.Artifact("fw", file_name="fw.bin"))
    artifact.manifest(cpu)
    node.deploy(artifact)

    return model, prof


class TestRoundTrip:
    def test_summary_preserved(self):
        model, prof = build_full_model()
        text = xmi.write_model(model, profiles=[prof])
        document = xmi.read_model(text)
        assert document.model.summary() == model.summary()
        assert len(document.profiles) == 1

    def test_ids_preserved(self):
        model, prof = build_full_model()
        document = xmi.read_model(xmi.write_model(model, [prof]))
        original_ids = {e.xmi_id for e in model.all_owned()}
        restored_ids = {e.xmi_id for e in document.model.all_owned()}
        assert original_ids == restored_ids

    def test_double_round_trip_stable(self):
        model, prof = build_full_model()
        once = xmi.write_model(model, [prof])
        document = xmi.read_model(once)
        twice = xmi.write_model(document.model, document.profiles)
        assert once == twice

    def test_stereotypes_survive(self):
        model, prof = build_full_model()
        document = xmi.read_model(xmi.write_model(model, [prof]))
        cpu = document.model.resolve("top::Cpu", mm.Component)
        assert has_stereotype(cpu, "Processor")
        assert tagged_value(cpu, "Processor", "isa") == "rv64gc"
        assert tagged_value(cpu.member("ctrl"), "Register", "address") == 0

    def test_behaviors_remain_executable(self):
        model, prof = build_full_model()
        document = xmi.read_model(xmi.write_model(model, [prof]))
        cpu = document.model.resolve("top::Cpu", mm.Component)
        machine = cpu.classifier_behavior
        runtime = st.StateMachineRuntime(machine).start()
        runtime.send("go")
        assert runtime.active_leaf_names() == ("Run",)
        assert runtime.context["x"] == 2
        runtime.advance_time(4.0)
        assert runtime.active_leaf_names() == ("Idle",)

    def test_activity_remains_executable(self):
        model, prof = build_full_model()
        document = xmi.read_model(xmi.write_model(model, [prof]))
        cpu = document.model.resolve("top::Cpu", mm.Component)
        activity = cpu.owned_of_type(ac.Activity)[0]
        engine = ac.TokenEngine(activity)
        engine.run()
        assert engine.finished and engine.env["done"] is True

    def test_interaction_traces_preserved(self):
        from repro.interactions import traces

        model, prof = build_full_model()
        document = xmi.read_model(xmi.write_model(model, [prof]))
        interaction = document.model.resolve("top::handshake",
                                             ixn.Interaction)
        assert traces(interaction) == [("cpu->mem:req", "mem->cpu:ack")]

    def test_operation_body_and_defaults(self):
        model, prof = build_full_model()
        document = xmi.read_model(xmi.write_model(model, [prof]))
        cpu = document.model.resolve("top::Cpu", mm.Component)
        assert cpu.member("step", mm.Operation).body == "return ctrl + 1;"
        assert cpu.member("ctrl", mm.Property).default_value == 5

    def test_connector_and_parts_restored(self):
        model, prof = build_full_model()
        document = xmi.read_model(xmi.write_model(model, [prof]))
        top = document.model.resolve("top::Top", mm.Component)
        assert len(top.parts) == 2
        connector = top.connectors[0]
        assert connector.ends[0].port.name == "bus"
        assert connector.ends[0].part.name == "cpu"

    def test_builtin_primitive_identity(self):
        model, prof = build_full_model()
        document = xmi.read_model(xmi.write_model(model, [prof]))
        cpu = document.model.resolve("top::Cpu", mm.Component)
        assert cpu.member("ctrl", mm.Property).type is mm.INTEGER

    def test_association_rewired(self):
        model, prof = build_full_model()
        document = xmi.read_model(xmi.write_model(model, [prof]))
        assoc = next(document.model.elements_of_type(mm.Association))
        assert assoc.member_ends[0].association is assoc
        assert str(assoc.member_ends[0].multiplicity) == "*"

    def test_deployment_restored(self):
        model, prof = build_full_model()
        document = xmi.read_model(xmi.write_model(model, [prof]))
        node = document.model.resolve("top::board", mm.Node)
        assert node.deployed_artifacts[0].file_name == "fw.bin"


class TestErrors:
    def test_callable_action_rejected(self):
        model = mm.Model("m")
        machine = st.StateMachine("f")
        region = machine.region
        init = region.add_initial()
        state = region.add_state("S", entry=lambda ctx, ev: None)
        region.add_transition(init, state)
        cls = mm.UmlClass("C")
        cls.add_behavior(machine)
        model.add(cls)
        with pytest.raises(XmiError):
            xmi.write_model(model)

    def test_malformed_document(self):
        with pytest.raises(XmiError):
            xmi.read_model("not xml at all <")

    def test_wrong_root_tag(self):
        with pytest.raises(XmiError):
            xmi.read_model("<wrong/>")

    def test_dangling_reference(self):
        model = mm.Model("m")
        cls = model.add(mm.UmlClass("C"))
        text = xmi.write_model(model)
        broken = text.replace(f'xmi:id="{cls.xmi_id}"',
                              'xmi:id="Other_99"')
        # the model still parses (no refs to C); now break a real ref
        iface = model.add(mm.Interface("I"))
        cls.realize(iface)
        text = xmi.write_model(model)
        broken = text.replace(f'contract="{iface.xmi_id}"',
                              'contract="Ghost_1"')
        with pytest.raises(XmiError):
            xmi.read_model(broken)

    def test_file_round_trip(self, tmp_path):
        model, prof = build_full_model()
        path = tmp_path / "model.xmi"
        xmi.write_file(str(path), model, [prof])
        document = xmi.read_file(str(path))
        assert document.model.summary() == model.summary()
