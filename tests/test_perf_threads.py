"""Thread-safety of the perf registry (PR 3 satellite): concurrent
incr/incr_many/batch must not lose updates."""

import threading

from repro.perf import PerfRegistry


def hammer(threads, worker):
    pool = [threading.Thread(target=worker, args=(index,))
            for index in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


class TestConcurrentCounters:
    def test_incr_loses_nothing(self):
        registry = PerfRegistry()
        threads, per_thread = 8, 2000

        def worker(_index):
            for _ in range(per_thread):
                registry.incr("hits")

        hammer(threads, worker)
        assert registry.counter("hits") == threads * per_thread

    def test_incr_many_is_atomic(self):
        registry = PerfRegistry()
        threads, rounds = 8, 500

        def worker(index):
            for _ in range(rounds):
                registry.incr_many({"a": 1, "b": 2,
                                    f"thread.{index}": 1})

        hammer(threads, worker)
        assert registry.counter("a") == threads * rounds
        assert registry.counter("b") == 2 * threads * rounds
        for index in range(threads):
            assert registry.counter(f"thread.{index}") == rounds

    def test_batch_flushes_on_exit(self):
        registry = PerfRegistry()
        with registry.batch() as acc:
            for _ in range(10):
                acc["x"] = acc.get("x", 0) + 1
            # nothing visible until the context closes
            assert registry.counter("x") == 0
        assert registry.counter("x") == 10

    def test_batch_flushes_even_on_error(self):
        registry = PerfRegistry()
        try:
            with registry.batch() as acc:
                acc["y"] = 3
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert registry.counter("y") == 3

    def test_threaded_batches(self):
        registry = PerfRegistry()
        threads, per_thread = 8, 3000

        def worker(_index):
            with registry.batch() as acc:
                for _ in range(per_thread):
                    acc["events"] = acc.get("events", 0) + 1

        hammer(threads, worker)
        assert registry.counter("events") == threads * per_thread

    def test_concurrent_observe(self):
        registry = PerfRegistry()
        threads, per_thread = 4, 1000

        def worker(index):
            for step in range(per_thread):
                registry.observe("lat", float(index * per_thread + step))

        hammer(threads, worker)
        stats = registry.stats("lat")
        assert stats["count"] == threads * per_thread
        assert stats["min"] == 0.0
        assert stats["max"] == float(threads * per_thread - 1)
