"""Fault injection, graceful degradation and resilience (PR 2)."""

import json

import pytest

import repro.metamodel as mm
from repro import xmi
from repro.cli import main
from repro.errors import BusError, FaultError, SimulationError
from repro.faults import FaultCampaign, FaultSpec
from repro.hw import (
    AddressMap,
    Region,
    make_interrupt_controller,
    make_memory,
    make_retry_master,
    make_soc,
    make_traffic_generator,
)
from repro.simulation import SystemSimulation
from repro.statemachines import StateMachineRuntime
from repro.statemachines.flatten import compile_fallback_reason
from repro.statemachines.kernel import StateMachine, TransitionKind


def make_soc_top(address_range=0x1000, size=0x800, period=2.0):
    """A small SoC whose traffic generator also hits unmapped space."""
    cpu = make_traffic_generator("Cpu", period=period,
                                 address_range=address_range)
    ram = make_memory("Ram", size_bytes=size)
    return make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, size)])


def make_fragile(fail_on="Poke"):
    """A component whose behavior raises AslRuntimeError on ``fail_on``."""
    part = Component = mm.Component("Fragile")
    part.add_attribute("pings", mm.INTEGER, default=0)
    part.add_port("in", direction=mm.PortDirection.IN)
    machine = StateMachine("FragileBehavior")
    region = machine.region
    init = region.add_initial()
    idle = region.add_state("Idle")
    region.add_transition(init, idle)
    region.add_transition(idle, idle, trigger="Ping",
                          effect="pings = pings + 1;",
                          kind=TransitionKind.INTERNAL)
    region.add_transition(idle, idle, trigger=fail_on,
                          effect="x = undefined_name + 1;",
                          kind=TransitionKind.INTERNAL)
    part.add_behavior(machine, as_classifier_behavior=True)
    top = mm.Component("Top")
    top.add_part("frag", part)
    # a healthy bystander so the simulation has a surviving part
    top.add_part("peer", make_memory("Peer", size_bytes=16))
    return top


class TestFaultSpec:
    def test_kind_validated(self):
        with pytest.raises(FaultError):
            FaultSpec("explode")

    def test_window_validated(self):
        with pytest.raises(FaultError):
            FaultSpec("drop", window=(10, 5))
        with pytest.raises(FaultError):
            FaultSpec("drop", window=(1,))

    def test_probability_validated(self):
        with pytest.raises(FaultError):
            FaultSpec("drop", probability=1.5)

    def test_matching_is_wildcard_by_default(self):
        spec = FaultSpec("drop")
        assert spec.matches(0.0, "a", "p", "b", "c", "Sig")

    def test_site_and_window_matching(self):
        spec = FaultSpec("drop", part="cpu", signal="Read",
                         window=(10.0, 20.0))
        assert spec.matches(10.0, "cpu", "bus", "mem", "c", "Read")
        assert not spec.matches(20.0, "cpu", "bus", "mem", "c", "Read")
        assert not spec.matches(15.0, "dma", "bus", "mem", "c", "Read")
        assert not spec.matches(15.0, "cpu", "bus", "mem", "c", "Write")

    def test_json_round_trip(self):
        campaign = FaultCampaign(
            [FaultSpec("delay", part="cpu", delay=2.5, jitter=0.5,
                       window=(5, 50), name="slow-bus"),
             FaultSpec("corrupt", signal="Write", field="addr", xor=0x40,
                       probability=0.5, max_count=3)],
            name="trip", seed=99)
        clone = FaultCampaign.from_json(campaign.to_json())
        assert clone.to_json() == campaign.to_json()
        assert clone.seed == 99 and len(clone) == 2

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec.from_dict({"kind": "drop", "sneaky": 1})
        with pytest.raises(FaultError):
            FaultCampaign.from_dict({"faults": [], "extra": True})
        with pytest.raises(FaultError):
            FaultCampaign.from_json("{not json")


class TestInjectionKinds:
    def run_with(self, spec_or_specs, until=60.0, seed=1, **sim_kwargs):
        specs = (spec_or_specs if isinstance(spec_or_specs, list)
                 else [spec_or_specs])
        campaign = FaultCampaign(specs, seed=seed)
        with SystemSimulation(make_soc_top(),
                              faults=campaign, **sim_kwargs) as sim:
            sim.run(until=until)
            return sim

    def test_drop_removes_messages(self):
        baseline = None
        with SystemSimulation(make_soc_top()) as sim:
            sim.run(until=60.0)
            baseline = sim.context_of("m0_cpu")["responses"]
        dropped = self.run_with(
            FaultSpec("drop", signal="ReadResp", max_count=4))
        assert dropped.resilience.counts["drop"] == 4
        assert dropped.context_of("m0_cpu")["responses"] == baseline - 4

    def test_duplicate_doubles_delivery(self):
        sim = self.run_with(FaultSpec("duplicate", signal="WriteAck",
                                      max_count=3))
        assert sim.resilience.counts["duplicate"] == 3
        acks = [entry for entry in sim.message_log
                if entry[3] == "WriteAck" and entry[2] == "m0_cpu"]
        times = [entry[0] for entry in acks]
        assert len(times) != len(set(times))  # at least one doubled

    def test_corrupt_flips_the_addressed_field(self):
        # flipping a high address bit pushes Writes out of mapped space,
        # so the bus answers Nak instead of WriteAck
        sim = self.run_with(FaultSpec("corrupt", signal="Write",
                                      field="addr", xor=0x4000,
                                      max_count=2))
        assert sim.resilience.counts["corrupt"] == 2
        details = [r["detail"] for r in sim.resilience.injections]
        assert details == ["addr ^= 0x4000"] * 2
        assert sim.context_of("m0_cpu")["naks"] >= 2

    def test_delay_adds_latency(self):
        sim = self.run_with(FaultSpec("delay", signal="ReadResp",
                                      delay=7.0, max_count=1))
        record = sim.resilience.injections[0]
        assert record["kind"] == "delay" and record["detail"] == "+7"

    def test_reorder_swaps_consecutive_matches(self):
        spec = FaultSpec("reorder", signal="ReadResp", max_count=2)
        sim = self.run_with(spec)
        assert sim.resilience.counts["reorder"] == 1  # one swap per pair

    def test_probability_and_seed_are_deterministic(self):
        spec = FaultSpec("drop", signal="ReadResp", probability=0.4)
        runs = [self.run_with(spec, seed=7).resilience.to_json()
                for _ in range(2)]
        assert runs[0] == runs[1]
        other_seed = self.run_with(spec, seed=8).resilience.to_json()
        assert other_seed != runs[0]

    def test_unmatched_traffic_flows_untouched(self):
        sim = self.run_with(FaultSpec("drop", signal="NoSuchSignal"))
        assert sim.resilience.total_injections == 0
        assert sim.messages_delivered > 0


class TestGracefulDegradation:
    def test_raise_policy_propagates(self):
        sim = SystemSimulation(make_fragile())
        sim.send("frag", "Poke", delay=1.0)
        with pytest.raises(Exception) as excinfo:
            sim.run(until=10.0)
        assert "undefined_name" in str(excinfo.value)
        sim.close()

    def test_quarantine_isolates_failed_part(self):
        with SystemSimulation(make_fragile(),
                              on_part_error="quarantine") as sim:
            sim.send("frag", "Ping", delay=1.0)
            sim.send("frag", "Poke", delay=2.0)
            sim.send("frag", "Ping", delay=3.0)  # dropped: quarantined
            sim.send("peer", "Read", addr=4, delay=3.0)  # peer unaffected
            sim.run(until=10.0)
            assert sim.quarantined_parts == ("frag",)
            assert sim.context_of("frag")["pings"] == 1
            failure = sim.resilience.part_failures[0]
            assert failure["part"] == "frag"
            assert failure["action"] == "quarantine"
            assert "undefined_name" in failure["error"]
            assert sim.resilience.quarantined == {"frag": 2.0}
            assert sim.resilience.counts["quarantine_dropped"] == 1
            assert sim.parts["peer"].received == 1

    def test_restart_rebuilds_then_quarantines(self):
        with SystemSimulation(make_fragile(), on_part_error="restart",
                              max_restarts=2) as sim:
            sim.send("frag", "Ping", delay=1.0)
            for t in (2.0, 4.0, 6.0):  # three failures, budget of two
                sim.send("frag", "Poke", delay=t)
            sim.send("frag", "Ping", delay=8.0)
            sim.run(until=20.0)
            # restart resets the context to its initial configuration
            assert sim.resilience.restarts == {"frag": 2}
            assert sim.quarantined_parts == ("frag",)
            actions = [f["action"] for f in sim.resilience.part_failures]
            assert actions == ["restart", "restart",
                               "quarantine (restart budget exhausted)"]

    def test_restarted_part_keeps_working(self):
        with SystemSimulation(make_fragile(), on_part_error="restart",
                              max_restarts=5) as sim:
            sim.send("frag", "Ping", delay=1.0)
            sim.send("frag", "Poke", delay=2.0)
            sim.send("frag", "Ping", delay=3.0)
            sim.run(until=10.0)
            assert sim.quarantined_parts == ()
            # the restart wiped the pre-failure count; the later Ping
            # was handled by the fresh runtime
            assert sim.context_of("frag")["pings"] == 1

    def test_bad_policy_rejected(self):
        with pytest.raises(SimulationError):
            SystemSimulation(make_fragile(), on_part_error="ignore")


class TestCheckpointRestore:
    def test_full_round_trip_with_faults(self):
        campaign = FaultCampaign(
            [FaultSpec("drop", signal="ReadResp", probability=0.3),
             FaultSpec("delay", signal="WriteAck", delay=2.0, jitter=1.0,
                       probability=0.3)],
            seed=11)
        sim = SystemSimulation(make_soc_top(), faults=campaign)
        sim.run(until=40.0)
        snap = sim.checkpoint()
        states = sim.state_snapshot()
        log_len = len(sim.message_log)
        report = sim.resilience.to_json()
        sim.run(until=120.0)
        assert len(sim.message_log) > log_len
        sim.restore(snap)
        assert sim.simulator.now == 40.0
        assert sim.state_snapshot() == states
        assert len(sim.message_log) == log_len
        assert sim.resilience.to_json() == report

        # replay from the checkpoint matches an uninterrupted run
        sim.run(until=120.0)
        reference = SystemSimulation(make_soc_top(), faults=campaign)
        reference.run(until=120.0)
        assert sim.message_log == reference.message_log
        assert sim.resilience.to_json() == reference.resilience.to_json()
        assert sim.state_snapshot() == reference.state_snapshot()
        sim.close()
        reference.close()

    def test_round_trip_restores_contexts(self):
        sim = SystemSimulation(make_soc_top(), compile=True)
        sim.run(until=30.0)
        snap = sim.checkpoint()
        issued = sim.context_of("m0_cpu")["issued"]
        sim.run(until=60.0)
        assert sim.context_of("m0_cpu")["issued"] > issued
        sim.restore(snap)
        assert sim.context_of("m0_cpu")["issued"] == issued
        sim.close()


class TestRunGuards:
    def test_livelock_recorded_and_raised(self):
        top = mm.Component("T")
        ping = mm.Component("Ping")
        ping.add_port("out", direction=mm.PortDirection.OUT)
        machine = StateMachine("PB")
        region = machine.region
        init = region.add_initial()
        state = region.add_state("S")
        region.add_transition(init, state)
        # unguarded self-send: a zero-delay event storm
        region.add_transition(state, state, trigger="Go",
                              effect="send Go();",
                              kind=TransitionKind.INTERNAL)
        ping.add_behavior(machine, as_classifier_behavior=True)
        top.add_part("p", ping)
        sim = SystemSimulation(top)
        sim.send("p", "Go")
        with pytest.raises(SimulationError):
            sim.run(until=10.0, max_events_at_instant=200)
        incident = sim.resilience.kernel_incidents[0]
        assert incident["kind"] == "LivelockError"
        sim.close()

    def test_context_manager_closes_kernel(self):
        with SystemSimulation(make_soc_top()) as sim:
            sim.run(until=10.0)
        assert sim.simulator.is_closed
        with pytest.raises(SimulationError):
            sim.send("m0_cpu", "Ping")


class TestBusErrorAndNak:
    def test_decode_strict_raises_with_location(self):
        amap = AddressMap([Region(0, 0x100, "s0")])
        assert amap.decode_strict(0x20).port == "s0"
        with pytest.raises(BusError) as excinfo:
            amap.decode_strict(0x9999, master="cpu0")
        error = excinfo.value
        assert error.address == 0x9999
        assert error.master == "cpu0"
        assert "0x9999" in str(error) and "cpu0" in str(error)
        assert isinstance(error, SimulationError)

    def test_unmapped_address_answers_nak(self):
        with SystemSimulation(make_soc_top(address_range=0x1000,
                                           size=0x800)) as sim:
            sim.run(until=100.0)
            assert sim.context_of("m0_cpu")["naks"] > 0
            naks = [e for e in sim.message_log if e[3] == "Nak"]
            assert naks


class TestRetryMaster:
    def test_stays_in_compilable_subset(self):
        master = make_retry_master()
        assert compile_fallback_reason(master.classifier_behavior) is None

    def test_nak_retries_with_backoff_then_faults(self):
        master = make_retry_master("Rm", address=0x900, period=50.0,
                                   timeout=30.0, backoff=1.0,
                                   max_retries=3)
        ram = make_memory("Ram", size_bytes=0x800)
        top = make_soc("Soc", masters=[master],
                       slaves=[(ram, "bus", 0, 0x800)])
        with SystemSimulation(top) as sim:
            sim.run(until=90.0)
            ctx = sim.context_of("m0_rm")
            assert ctx["retries"] == 3
            assert ctx["faults"] == 1
            assert ctx["served"] == 0
            # retry requests really crossed the bus: 1 + 3 resends
            reads = [e for e in sim.message_log
                     if e[3] == "Read" and e[2] == "bus"]
            assert len(reads) == 4

    def test_mapped_address_served_without_retries(self):
        master = make_retry_master("Rm", address=0x10, period=20.0,
                                   timeout=10.0)
        ram = make_memory("Ram", size_bytes=0x800)
        top = make_soc("Soc", masters=[master],
                       slaves=[(ram, "bus", 0, 0x800)])
        with SystemSimulation(top) as sim:
            sim.run(until=100.0)
            ctx = sim.context_of("m0_rm")
            assert ctx["served"] >= 4
            assert ctx["retries"] == 0 and ctx["faults"] == 0

    def test_lockstep_compiled_vs_interpreted(self):
        def run(compiled):
            master = make_retry_master("Rm", address=0x900, period=11.0,
                                       timeout=5.0, backoff=2.0)
            ram = make_memory("Ram", size_bytes=0x800)
            top = make_soc("Soc", masters=[master],
                           slaves=[(ram, "bus", 0, 0x800)])
            with SystemSimulation(top, compile=compiled) as sim:
                sim.run(until=150.0)
                return sim.message_log, sim.context_of("m0_rm")
        interpreted = run(False)
        compiled = run(True)
        assert interpreted == compiled


class TestIrqStorm:
    def test_storm_threshold_sheds_backlog(self):
        pic = make_interrupt_controller(storm_threshold=3)
        sink = []
        runtime = StateMachineRuntime(pic.classifier_behavior,
                                      context={"dispatched": 0, "storms": 0},
                                      signal_sink=sink.append).start()
        for line in range(4):
            runtime.send("Irq", line=line)
        storms = [s for s in sink if s.signal == "Storm"]
        assert len(storms) == 1
        assert storms[0].arguments["dropped"] == 3
        assert runtime.context["storms"] == 1
        assert runtime.context["pending"] == []
        # the controller still works after shedding
        runtime.send("Ack", line=0)
        runtime.send("Irq", line=6)
        assert sink[-1].signal == "Interrupt"

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            make_interrupt_controller(storm_threshold=0)

    def test_default_has_no_storm_machinery(self):
        pic = make_interrupt_controller()
        assert all(attr.name != "storms" for attr in pic.all_attributes())


class TestCliFaults:
    @pytest.fixture
    def model_file(self, tmp_path):
        model = mm.Model("faulttest")
        pkg = model.create_package("design")
        cpu = make_traffic_generator("Cpu", period=5.0, address_range=256)
        mem = make_memory("Ram", size_bytes=256)
        make_soc("Top", masters=[cpu], slaves=[(mem, "bus", 0, 256)],
                 package=pkg)
        path = tmp_path / "model.xmi"
        xmi.write_file(str(path), model)
        return str(path)

    def test_simulate_with_campaign(self, model_file, tmp_path, capsys):
        campaign = tmp_path / "campaign.json"
        campaign.write_text(json.dumps({
            "name": "cli", "seed": 3,
            "faults": [{"kind": "drop", "signal": "ReadResp",
                        "max_count": 2}],
        }))
        assert main(["simulate", model_file, "--top", "design::Top",
                     "--until", "60", "--faults", str(campaign),
                     "--seed", "5", "--on-part-error", "quarantine"]) == 0
        output = capsys.readouterr().out
        assert "resilience report" in output
        assert '"drop": 2' in output

    def test_bad_campaign_fails_cleanly(self, model_file, tmp_path):
        campaign = tmp_path / "bad.json"
        campaign.write_text('{"faults": [{"kind": "explode"}]}')
        assert main(["simulate", model_file, "--top", "design::Top",
                     "--faults", str(campaign)]) == 2
