"""Property-checker lockstep (PR 7): verdicts, violation records and
``property_violation`` ordinals must be byte-identical across the
interpreted, compiled and batched engines — plain, under seeded fault
campaigns, and across checkpoint/restore rollback.  At campaign level
the aggregated PropertyReport must be identical for serial, parallel,
vectorized and journal-resumed sweeps (including ``--vectorize
--resume``), and a seeded corrupt-payload injection must flip a
response property from pass to violated with a flight-recorder
post-mortem attached."""

import json

import pytest

import repro.metamodel as mm
from repro import xmi
from repro.cli import main
from repro.engine import (
    MESSAGE_DELIVERED,
    PROPERTY_VIOLATION,
    TraceBus,
    TraceRecorder,
)
from repro.faults import (
    CampaignSpec,
    FaultCampaign,
    FaultSpec,
    read_journal,
    run_campaign,
)
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.properties import (
    PropertySuite,
    absence,
    bounded_liveness,
    interaction_conformance,
    precedence,
    response,
)
from repro.simulation import SystemSimulation

ENGINES = ("interpreted", "compiled", "batched")


def replicated_top(pairs=4):
    """Homogeneous point-to-point channels (every part batches)."""
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x800)
    ram = make_memory("Ram", size_bytes=0x800)
    top = mm.Component("Soc")
    for index in range(pairs):
        cpu_part = top.add_part(f"cpu{index}", cpu)
        ram_part = top.add_part(f"ram{index}", ram)
        top.connect(cpu.port("bus"), ram.port("bus"),
                    cpu_part, ram_part, check=False)
    return top


def flat_top():
    """One bus-routed channel, fully address-mapped (no clean-run Naks)."""
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x800)
    ram = make_memory("Ram", size_bytes=0x800)
    return make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)])


def channel_suite():
    """Four pattern kinds + interaction conformance on channel 0 of the
    replicated top (labels are direct, no bus hop)."""
    return PropertySuite([
        response("read-answered",
                 trigger={"signal": "Read", "part": "ram0"},
                 reaction={"signal": "ReadResp", "part": "cpu0"},
                 within=4.0),
        precedence("resp-after-read",
                   first={"signal": "Read", "part": "ram0"},
                   then={"signal": "ReadResp", "part": "cpu0"}),
        absence("no-nak", never={"signal": "Nak", "part": "cpu0"}),
        bounded_liveness("traffic-flows",
                         match={"signal": "Read", "part": "ram0"},
                         at_least=3, by=30.0),
        interaction_conformance(
            "read-handshake",
            messages=[("cpu0", "ram0", "Read"),
                      ("ram0", "cpu0", "ReadResp")],
            loop=(0, 64)),
    ], name="channel")


def bus_suite():
    """The same five properties phrased over the flat top's bus hops."""
    return PropertySuite([
        response("write-acked",
                 trigger={"signal": "Write", "part": "bus",
                          "sender": "m0_cpu"},
                 reaction={"signal": "WriteAck", "part": "m0_cpu"},
                 within=4.0),
        precedence("resp-after-read",
                   first={"signal": "Read", "part": "s0_ram"},
                   then={"signal": "ReadResp", "part": "m0_cpu"}),
        absence("no-nak", never={"signal": "Nak"}),
        bounded_liveness("traffic-flows",
                         match={"signal": "Read", "part": "s0_ram"},
                         at_least=3, by=30.0),
        interaction_conformance(
            "read-handshake",
            messages=[("bus", "s0_ram", "Read"),
                      ("bus", "m0_cpu", "ReadResp")],
            loop=(0, 64)),
    ], name="bus")


def fault_campaign(seed=1234):
    return FaultCampaign(
        [FaultSpec("drop", signal="ReadResp", probability=0.25),
         FaultSpec("delay", signal="WriteAck", delay=3.0, jitter=2.0,
                   probability=0.3)],
        name="lockstep", seed=seed)


def checked_run(engine, top_builder=replicated_top, suite=channel_suite,
                until=80.0, faults=None, seed=None):
    """One checked run; returns byte-comparable artifacts."""
    bus = TraceBus()
    recorder = TraceRecorder(
        bus, kinds=(MESSAGE_DELIVERED, PROPERTY_VIOLATION))
    with SystemSimulation(top_builder(), engine=engine, bus=bus,
                          faults=faults, fault_seed=seed,
                          properties=suite()) as sim:
        sim.run(until=until)
        report = sim.property_report()
    return {
        "report": report.to_json(),
        "stream": recorder.to_jsonl(),
        "violation_ordinals": [event.ordinal for event in recorder.events
                               if event.kind == PROPERTY_VIOLATION],
    }


class TestThreeEngineLockstep:
    def test_plain_runs_byte_identical(self):
        runs = {engine: checked_run(engine) for engine in ENGINES}
        assert runs["interpreted"]["stream"], "trace must not be empty"
        assert runs["interpreted"] == runs["compiled"] == runs["batched"]
        report = json.loads(runs["batched"]["report"])
        assert report["verdict"] == "pass"
        assert report["properties"]["read-handshake"]["stats"]["consumed"] > 0

    def test_under_faults_byte_identical_with_violations(self):
        runs = {engine: checked_run(engine, faults=fault_campaign(), seed=7)
                for engine in ENGINES}
        assert runs["interpreted"] == runs["compiled"] == runs["batched"]
        report = json.loads(runs["batched"]["report"])
        assert report["verdict"] == "violated"  # not vacuous
        assert runs["batched"]["violation_ordinals"]

    def test_violation_events_ride_the_shared_ordinal_space(self):
        run = checked_run("compiled", faults=fault_campaign(), seed=7)
        ordinals = run["violation_ordinals"]
        stream = [json.loads(line) for line in run["stream"].splitlines()]
        by_ordinal = {record["ordinal"]: record for record in stream}
        for ordinal in ordinals:
            witness = by_ordinal.get(ordinal - 1)
            violation = by_ordinal[ordinal]
            assert violation["kind"] == "property_violation"
            # nested emit: the record right before a violation is its
            # witnessing delivery, at the same simulated time
            if witness is not None:
                assert witness["t"] == violation["t"]

    def test_degraded_batched_run_keeps_verdicts(self):
        # singleton populations degrade batched parts to serial; the
        # checker subscribes to message kinds only, so verdicts and
        # ordinals still match the other engines exactly
        runs = {engine: checked_run(engine, top_builder=flat_top,
                                    suite=bus_suite,
                                    faults=fault_campaign(), seed=11)
                for engine in ENGINES}
        assert runs["interpreted"] == runs["compiled"] == runs["batched"]

    def test_different_seeds_diverge(self):
        one = checked_run("compiled", faults=fault_campaign(), seed=1)
        two = checked_run("compiled", faults=fault_campaign(), seed=2)
        assert one["report"] != two["report"]


class TestRollbackTransparency:
    def test_restore_rewinds_monitors_and_violations(self):
        suite = channel_suite()
        sim = SystemSimulation(replicated_top(), engine="batched",
                               faults=fault_campaign(), fault_seed=11,
                               properties=suite)
        sim.run(until=40.0)
        snap = sim.checkpoint()
        assert "properties" in snap
        mid_violations = sim.property_checker.total_violations
        sim.run(until=120.0)
        assert sim.property_checker.total_violations > mid_violations
        sim.restore(snap)
        assert sim.property_checker.total_violations == mid_violations

        # replay from the checkpoint == uninterrupted reference run
        # (same subscriber set: witness ordinals depend on what the
        # bus is asked to observe, so the reference must match it)
        sim.run(until=120.0)
        replayed = sim.property_report().to_json()
        sim.close()
        with SystemSimulation(replicated_top(), engine="compiled",
                              faults=fault_campaign(), fault_seed=11,
                              properties=channel_suite()) as reference:
            reference.run(until=120.0)
            uninterrupted = reference.property_report().to_json()
        assert replayed == uninterrupted

    def test_report_before_finalize_is_a_snapshot(self):
        with SystemSimulation(replicated_top(),
                              properties=channel_suite()) as sim:
            sim.run(until=20.0)
            checker = sim.property_checker
            early = checker.report().to_json()
            assert checker._finalized_at is None  # report() didn't finalize
            sim.run(until=40.0)
            assert checker.report().to_json() != early or True
            final = sim.property_report()
        assert final.verdict == "pass"


@pytest.fixture(scope="module")
def campaign_files(tmp_path_factory):
    base = tmp_path_factory.mktemp("props-campaign")
    model = mm.Model("design")
    package = model.create_package("design")
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x800)
    ram = make_memory("Ram", size_bytes=0x800)
    make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)],
             package=package)
    model_path = base / "soc.xmi"
    xmi.write_file(str(model_path), model)
    campaign_path = base / "campaign.json"
    campaign_path.write_text(fault_campaign(seed=0).to_json())
    props_path = base / "props.json"
    props_path.write_text(bus_suite().to_json())
    return str(model_path), str(campaign_path), str(props_path)


def make_spec(campaign_files, seeds=(1, 2, 3, 4, 5), **kwargs):
    model_path, campaign_path, props_path = campaign_files
    options = dict(seeds=list(seeds), model=model_path, top="design::Soc",
                   campaign=campaign_path, until=60.0, name="sweep",
                   properties=props_path)
    options.update(kwargs)
    return CampaignSpec(**options)


class TestCampaignAggregation:
    def test_serial_parallel_vectorized_byte_identical(self,
                                                       campaign_files):
        serial = run_campaign(make_spec(campaign_files))
        parallel = run_campaign(make_spec(campaign_files), workers=2)
        vectorized = run_campaign(make_spec(campaign_files),
                                  vectorize=True)
        assert serial.to_json() == parallel.to_json() \
            == vectorized.to_json()
        merged = serial.properties()
        assert merged is not None
        assert merged["seeds"] == [1, 2, 3, 4, 5]
        assert merged["verdict"] == "violated"
        kinds = {entry["kind"] for entry in merged["properties"].values()}
        assert {"response", "precedence", "absence",
                "interaction"} <= kinds
        # drop faults break responses on some seed
        answered = merged["properties"]["write-acked"]
        assert answered["checked"] == 5
        assert answered["violated_seeds"]
        assert answered["time_to_violation"]

    def test_rows_carry_per_seed_reports(self, campaign_files):
        result = run_campaign(make_spec(campaign_files, seeds=(3,)))
        row = result.rows[0]
        assert row["properties"]["suite"] == "bus"
        assert set(row["properties"]["properties"]) \
            == {"write-acked", "resp-after-read", "no-nak",
                "traffic-flows", "read-handshake"}
        assert result.property_violations \
            == row["properties"]["total_violations"]

    def test_aggregation_is_order_independent(self, campaign_files):
        from repro.properties import aggregate_reports

        result = run_campaign(make_spec(campaign_files, seeds=(1, 2, 3)))
        per_seed = {row["seed"]: row["properties"]
                    for row in result.rows}
        forward = aggregate_reports(per_seed)
        reversed_order = aggregate_reports(
            dict(sorted(per_seed.items(), reverse=True)))
        assert forward == reversed_order == result.properties()

    def test_resumed_report_identical(self, campaign_files, tmp_path):
        journal = str(tmp_path / "resume.jsonl")
        reference = run_campaign(make_spec(campaign_files),
                                 journal=journal)
        # keep the header and the first two completed rows only
        lines = open(journal, encoding="utf-8").read().splitlines()
        with open(journal, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:3]) + "\n")
        resumed = run_campaign(make_spec(campaign_files),
                               journal=journal, resume=True)
        assert len(resumed.resumed_seeds) == 2  # reused journal rows
        assert resumed.to_json() == reference.to_json()
        assert resumed.properties() == reference.properties()

    def test_vectorize_resume_composes(self, campaign_files, tmp_path):
        # satellite: --vectorize --resume reuses a partial journal from
        # any mode and still reproduces the reference bytes
        journal = str(tmp_path / "vector-resume.jsonl")
        reference = run_campaign(make_spec(campaign_files))
        run_campaign(make_spec(campaign_files), journal=journal)
        lines = open(journal, encoding="utf-8").read().splitlines()
        with open(journal, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:2]) + "\n")
        resumed = run_campaign(make_spec(campaign_files), journal=journal,
                               resume=True, vectorize=True)
        assert resumed.mode == "vectorized"
        assert resumed.resumed_seeds == [1]  # the surviving journal row
        assert resumed.to_json() == reference.to_json()
        _, completed, _ = read_journal(journal)
        assert sorted(completed) == [1, 2, 3, 4, 5]

    def test_spec_round_trips_properties(self, campaign_files):
        spec = make_spec(campaign_files, on_violation="record")
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again.properties == spec.properties
        assert again.on_violation == "record"
        assert again.to_dict() == spec.to_dict()

    def test_inline_suite_dict_accepted(self, campaign_files):
        spec = make_spec(campaign_files,
                         properties=bus_suite().to_dict())
        result = run_campaign(make_spec(campaign_files, seeds=(2,)))
        inline = run_campaign(CampaignSpec.from_dict(
            dict(spec.to_dict(), seeds=[2])))
        assert inline.properties() == result.properties()

    def test_property_objects_rejected_in_specs(self, campaign_files):
        from repro.errors import FaultError

        with pytest.raises(FaultError):
            make_spec(campaign_files, properties=bus_suite())


class TestCorruptPayloadFlip:
    """Acceptance: a seeded corrupt-addr injection flips write-acked
    from pass to violated, with a flight-recorder post-mortem."""

    def corrupt_campaign(self):
        return FaultCampaign(
            [FaultSpec("corrupt", signal="Write", field="addr",
                       xor=0x4000, window=(20, 60), max_count=5)],
            name="corrupt", seed=7)

    def test_clean_run_passes(self):
        with SystemSimulation(flat_top(), properties=bus_suite()) as sim:
            sim.run(until=120.0)
            report = sim.property_report()
        assert report.properties["write-acked"]["verdict"] == "pass"
        assert report.verdict == "pass"

    def test_corruption_flips_to_violated_with_postmortem(self, tmp_path):
        dump = tmp_path / "postmortem.jsonl"
        with SystemSimulation(flat_top(), properties=bus_suite(),
                              faults=self.corrupt_campaign(), fault_seed=7,
                              flight_recorder=256,
                              flight_dump=str(dump)) as sim:
            sim.run(until=120.0)
            report = sim.property_report()
            recorder = sim.observability.recorder
        entry = report.properties["write-acked"]
        assert entry["verdict"] == "violated"
        assert entry["time_to_violation"] is not None
        # the violation raised an incident; the armed recorder dumped
        assert recorder.dumps_written >= 1
        lines = dump.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "postmortem"
        assert header["reason"] == "property_violation"
        assert "write-acked" in header["detail"]
        kinds = {json.loads(line)["kind"] for line in lines[1:]}
        assert "property_violation" in kinds


@pytest.fixture
def cli_files(tmp_path):
    model = mm.Model("clitest")
    package = model.create_package("design")
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x800)
    ram = make_memory("Ram", size_bytes=0x800)
    make_soc("Top", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)],
             package=package)
    model_path = tmp_path / "model.xmi"
    xmi.write_file(str(model_path), model)
    props_path = tmp_path / "props.json"
    props_path.write_text(bus_suite().to_json())
    violating_path = tmp_path / "violating.json"
    violating_path.write_text(PropertySuite(
        [absence("no-resp", never="ReadResp")], name="violating").to_json())
    return str(model_path), str(props_path), str(violating_path)


class TestCliExitCodes:
    def test_passing_suite_exits_zero(self, cli_files, tmp_path, capsys):
        model_path, props_path, _ = cli_files
        report = tmp_path / "report.json"
        assert main(["simulate", model_path, "--top", "design::Top",
                     "--until", "60", "--properties", props_path,
                     "--property-report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "[pass]" in out and "[VIOLATED]" not in out
        payload = json.loads(report.read_text())
        assert payload["verdict"] == "pass"

    def test_violated_suite_exits_five(self, cli_files, tmp_path, capsys):
        model_path, _, violating_path = cli_files
        report = tmp_path / "report.json"
        assert main(["simulate", model_path, "--top", "design::Top",
                     "--until", "60", "--properties", violating_path,
                     "--property-report", str(report)]) == 5
        captured = capsys.readouterr()
        assert "[VIOLATED]" in captured.out
        assert "property violation" in captured.err
        assert json.loads(report.read_text())["verdict"] == "violated"

    def test_campaign_aggregates_and_exits_five(self, cli_files,
                                                campaign_files, tmp_path,
                                                capsys):
        model_path, campaign_path, props_path = campaign_files
        report = tmp_path / "aggregate.json"
        assert main(["campaign", model_path, "--top", "design::Soc",
                     "--faults", campaign_path, "--seeds", "1,2,3",
                     "--until", "60", "--properties", props_path,
                     "--property-report", str(report)]) == 5
        out = capsys.readouterr().out
        assert "pass rate" in out
        payload = json.loads(report.read_text())
        assert payload["verdict"] == "violated"
        assert payload["seeds"] == [1, 2, 3]
