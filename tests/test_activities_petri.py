"""Tests for the Petri net substrate and the activity mapping (D3 core)."""

import random

import pytest

from repro.activities import (
    Activity,
    DONE_PLACE,
    PetriNet,
    TokenEngine,
    activity_to_petri,
    engine_marking_to_net,
    explore,
)
from repro.errors import ActivityError


class TestPetriNet:
    def _net(self):
        net = PetriNet()
        net.add_place("p1", tokens=1)
        net.add_transition("t1", {"p1": 1}, {"p2": 1})
        net.add_transition("t2", {"p2": 1}, {"p3": 1})
        return net

    def test_enabled_and_fire(self):
        net = self._net()
        marking = net.initial_marking()
        enabled = net.enabled(marking)
        assert [t.name for t in enabled] == ["t1"]
        after = net.fire(marking, enabled[0])
        assert after == (("p2", 1),)

    def test_fire_disabled_raises(self):
        net = self._net()
        t2 = net.transitions[1]
        with pytest.raises(ActivityError):
            net.fire(net.initial_marking(), t2)

    def test_reachability(self):
        net = self._net()
        markings = net.reachable_markings()
        assert (("p3", 1),) in markings
        assert len(markings) == 3

    def test_weighted_arcs(self):
        net = PetriNet()
        net.add_place("in", tokens=3)
        net.add_transition("burn", {"in": 2}, {"out": 1})
        first = net.fire(net.initial_marking(), net.transitions[0])
        assert first == (("in", 1), ("out", 1))
        assert not net.enabled(first)

    def test_boundedness(self):
        bounded = self._net()
        assert bounded.is_bounded(1)
        grower = PetriNet()
        grower.add_place("p", tokens=1)
        grower.add_transition("dup", {"p": 1}, {"p": 2})
        assert not grower.is_bounded(5, max_markings=10) \
            if _safe_unbounded(grower) else True

    def test_deadlocks(self):
        net = self._net()
        deadlocks = net.deadlock_markings()
        assert deadlocks == {(("p3", 1),)}


def _safe_unbounded(net):
    try:
        net.is_bounded(5, max_markings=10)
        return True
    except ActivityError:
        return False


def build_fork_join_activity():
    activity = Activity("fj")
    init = activity.add_initial()
    fork = activity.add_fork()
    a = activity.add_action("A")
    b = activity.add_action("B")
    join = activity.add_join()
    final = activity.add_final()
    activity.chain(init, fork)
    activity.flow(fork, a)
    activity.flow(fork, b)
    activity.flow(a, join)
    activity.flow(b, join)
    activity.flow(join, final)
    return activity


def random_activity(seed, nodes=12):
    """A random well-formed control-only activity (fork/join/dec/merge)."""
    rng = random.Random(seed)
    activity = Activity(f"rand{seed}")
    init = activity.add_initial()
    final = activity.add_final()
    frontier = [init]

    def finish(node):
        activity.flow(node, final)

    count = 0
    while frontier and count < nodes:
        node = frontier.pop(0)
        count += 1
        choice = rng.choice(["action", "fork", "decision"])
        if choice == "action":
            action = activity.add_action(f"act{count}")
            activity.flow(node, action)
            frontier.append(action)
        elif choice == "fork":
            fork = activity.add_fork(f"fork{count}")
            left = activity.add_action(f"l{count}")
            right = activity.add_action(f"r{count}")
            join = activity.add_join(f"join{count}")
            activity.flow(node, fork)
            activity.flow(fork, left)
            activity.flow(fork, right)
            activity.flow(left, join)
            activity.flow(right, join)
            frontier.append(join)
        else:
            decision = activity.add_decision(f"dec{count}")
            yes = activity.add_action(f"y{count}")
            no = activity.add_action(f"n{count}")
            merge = activity.add_merge(f"mrg{count}")
            activity.flow(node, decision)
            activity.flow(decision, yes)
            activity.flow(decision, no)
            activity.flow(yes, merge)
            activity.flow(no, merge)
            frontier.append(merge)
    for node in frontier:
        finish(node)
    activity.validate()
    return activity


class TestMapping:
    def test_structure_mirrors_activity(self):
        activity = build_fork_join_activity()
        net = activity_to_petri(activity)
        edge_ids = {edge.xmi_id for edge in activity.edges}
        assert edge_ids <= net.places

    def test_guarded_activities_rejected(self):
        activity = Activity("g")
        init = activity.add_initial()
        decision = activity.add_decision()
        a, b = activity.add_action("a"), activity.add_action("b")
        final = activity.add_final()
        activity.chain(init, decision)
        activity.flow(decision, a, guard="x > 1")
        activity.flow(decision, b, guard="else")
        activity.flow(a, final)
        activity.flow(b, final)
        with pytest.raises(ActivityError):
            activity_to_petri(activity)

    def test_accept_events_rejected(self):
        activity = Activity("ev")
        init = activity.add_initial()
        accept = activity.add_accept_event("irq")
        final = activity.add_final()
        activity.chain(init, accept, final)
        with pytest.raises(ActivityError):
            activity_to_petri(activity)


class TestEquivalence:
    """The paper's claim: token semantics == Petri net semantics."""

    def _compare(self, activity):
        engine_markings = {engine_marking_to_net(m)
                           for m in explore(activity)}
        net = activity_to_petri(activity)
        net_markings = {engine_marking_to_net(m)
                        for m in net.reachable_markings()}
        return engine_markings, net_markings

    def test_fork_join_equivalence(self):
        engine_markings, net_markings = self._compare(
            build_fork_join_activity())
        assert engine_markings == net_markings

    @pytest.mark.parametrize("seed", range(8))
    def test_random_activity_equivalence(self, seed):
        activity = random_activity(seed)
        engine_markings, net_markings = self._compare(activity)
        assert engine_markings == net_markings

    def test_deterministic_run_stays_within_reachable_set(self):
        activity = build_fork_join_activity()
        net_markings = {engine_marking_to_net(m) for m in
                        activity_to_petri(activity).reachable_markings()}
        engine = TokenEngine(activity)
        while True:
            assert engine_marking_to_net(engine.marking_counts()) \
                in net_markings
            if engine.step() is None:
                break
