"""The TraceBus (PR 3): typed events, subscriptions, ordinals,
checkpointing — and the byte-for-byte lockstep guarantee between the
interpreted and compiled engines."""

import io
import json

import pytest

from repro.engine import (
    ENGINE_KINDS,
    EVENT,
    FAULT,
    KINDS,
    MESSAGE_DELIVERED,
    MESSAGE_DROPPED,
    MESSAGE_ROUTED,
    PART_QUARANTINED,
    PART_RESTARTED,
    STATE_ENTER,
    STATE_EXIT,
    TOKEN,
    TRANSITION,
    JsonlTraceWriter,
    TraceBus,
    TraceEvent,
    TraceRecorder,
    attach_perf_counters,
)
from repro.errors import SimulationError
from repro.hw import make_memory, make_soc, make_traffic_generator
from repro.perf import PERF
from repro.simulation import SystemSimulation


class TestKindVocabulary:
    def test_literals_are_pinned(self):
        # the engine modules emit these kinds as literal strings (to
        # stay import-free of repro.engine); this pin stops the
        # constants and the literals from drifting apart
        assert EVENT == "event"
        assert TRANSITION == "transition"
        assert STATE_ENTER == "state_enter"
        assert STATE_EXIT == "state_exit"
        assert TOKEN == "token"
        assert MESSAGE_ROUTED == "message_routed"
        assert MESSAGE_DELIVERED == "message_delivered"
        assert MESSAGE_DROPPED == "message_dropped"
        assert FAULT == "fault"
        assert PART_QUARANTINED == "part_quarantined"
        assert PART_RESTARTED == "part_restarted"
        from repro.engine import (
            CHECKPOINT,
            ENGINE_DEGRADED,
            PART_RESTORED,
            PROPERTY_VIOLATION,
            SUPERVISOR_DECISION,
        )

        assert PART_RESTORED == "part_restored"
        assert SUPERVISOR_DECISION == "supervisor_decision"
        assert CHECKPOINT == "checkpoint"
        assert ENGINE_DEGRADED == "engine_degraded"
        assert PROPERTY_VIOLATION == "property_violation"

    def test_engine_kinds_subset(self):
        assert set(ENGINE_KINDS) < set(KINDS)
        assert len(set(KINDS)) == len(KINDS) == 16


class TestTraceEvent:
    def test_dict_and_json_are_stable(self):
        event = TraceEvent(3, 1.5, MESSAGE_DELIVERED, "cpu",
                           {"signal": "Read", "sender": "ram"})
        assert event.to_dict() == {
            "ordinal": 3, "t": 1.5, "kind": "message_delivered",
            "part": "cpu", "sender": "ram", "signal": "Read"}
        assert json.loads(event.to_json()) == event.to_dict()
        # payload keys serialize sorted, identity fields first
        assert event.to_json().index('"sender"') \
            < event.to_json().index('"signal"')

    def test_value_equality(self):
        one = TraceEvent(1, 0.0, EVENT, "p", {"event": "Go"})
        two = TraceEvent(1, 0.0, EVENT, "p", {"event": "Go"})
        assert one == two
        assert hash(one) == hash(two)
        assert one != TraceEvent(2, 0.0, EVENT, "p", {"event": "Go"})


class TestBusMechanics:
    def test_emit_without_subscribers_returns_none(self):
        bus = TraceBus()
        assert bus.emit(EVENT, 0.0, "p", {}) is None
        assert bus.events_emitted == 0

    def test_unknown_kind_rejected(self):
        bus = TraceBus()
        with pytest.raises(SimulationError):
            bus.subscribe(lambda event: None, kinds=("bogus",))

    def test_ordinals_are_gapless_over_emitted_events(self):
        bus = TraceBus()
        recorder = TraceRecorder(bus, kinds=(EVENT,))
        bus.emit(EVENT, 0.0, "p", {"event": "A"})
        bus.emit(TOKEN, 0.0, "p", {"node": "n"})  # nobody listens
        bus.emit(EVENT, 1.0, "p", {"event": "B"})
        assert [event.ordinal for event in recorder.events] == [1, 2]
        assert bus.events_emitted == 2

    def test_kind_filtering(self):
        bus = TraceBus()
        recorder = TraceRecorder(bus, kinds=(TRANSITION,))
        bus.emit(EVENT, 0.0, "p", {})
        bus.emit(TRANSITION, 0.0, "p", {"source": "A", "target": "B"})
        assert [event.kind for event in recorder.events] == [TRANSITION]

    def test_engine_active_tracks_subscriptions(self):
        bus = TraceBus()
        assert not bus.engine_active
        message_sub = bus.subscribe(lambda event: None,
                                    kinds=(MESSAGE_DELIVERED,))
        assert not bus.engine_active
        engine_sub = bus.subscribe(lambda event: None, kinds=(EVENT,))
        assert bus.engine_active
        engine_sub.cancel()
        assert not bus.engine_active
        message_sub.cancel()
        assert bus.subscriber_count == 0

    def test_wildcard_subscription_sees_everything(self):
        bus = TraceBus()
        recorder = TraceRecorder(bus)
        assert bus.engine_active
        for kind in KINDS:
            bus.emit(kind, 0.0, "p", {})
        assert [event.kind for event in recorder.events] == list(KINDS)

    def test_subscription_context_manager(self):
        bus = TraceBus()
        with bus.subscribe(lambda event: None, kinds=(EVENT,)):
            assert bus.subscriber_count == 1
        assert bus.subscriber_count == 0

    def test_checkpoint_restore_rewinds_ordinal(self):
        bus = TraceBus()
        recorder = TraceRecorder(bus, kinds=(EVENT,))
        bus.emit(EVENT, 0.0, "p", {"event": "A"})
        snap = bus.checkpoint()
        bus.emit(EVENT, 1.0, "p", {"event": "B"})
        bus.restore(snap)
        replay = bus.emit(EVENT, 1.0, "p", {"event": "B"})
        assert replay.ordinal == recorder.events[1].ordinal == 2


class TestStockSubscribers:
    def test_jsonl_writer_streams_lines(self):
        bus = TraceBus()
        stream = io.StringIO()
        writer = JsonlTraceWriter(stream, bus=bus,
                                  kinds=(MESSAGE_DELIVERED,))
        bus.emit(MESSAGE_DELIVERED, 2.0, "ram",
                 {"signal": "Read", "sender": "cpu"})
        assert writer.lines_written == 1
        record = json.loads(stream.getvalue())
        assert record["part"] == "ram" and record["signal"] == "Read"

    def test_attach_perf_counters(self):
        PERF.reset()
        bus = TraceBus()
        attach_perf_counters(bus, prefix="tb", kinds=(EVENT, TRANSITION))
        bus.emit(EVENT, 0.0, "p", {})
        bus.emit(EVENT, 1.0, "p", {})
        bus.emit(TRANSITION, 1.0, "p", {})
        assert PERF.counter("tb.event") == 2
        assert PERF.counter("tb.transition") == 1
        PERF.reset()


def soc_top():
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=0x1000)
    ram = make_memory("Ram", size_bytes=0x800)
    return make_soc("Soc", masters=[cpu], slaves=[(ram, "bus", 0, 0x800)])


def full_trace(compiled, until=80.0):
    # subscribe before construction so start-time entries are captured
    bus = TraceBus()
    recorder = TraceRecorder(bus)
    with SystemSimulation(soc_top(), compile=compiled, bus=bus) as sim:
        sim.run(until=until)
    return recorder


class TestLockstepStreams:
    def test_interpreted_vs_compiled_byte_identical(self):
        interpreted = full_trace(compiled=False)
        compiled = full_trace(compiled=True)
        assert interpreted.events, "trace must not be empty"
        assert interpreted.to_jsonl() == compiled.to_jsonl()

    def test_same_mode_reruns_are_identical(self):
        assert full_trace(True).to_jsonl() == full_trace(True).to_jsonl()

    def test_stream_carries_every_layer(self):
        recorder = full_trace(compiled=False)
        kinds = {event.kind for event in recorder.events}
        assert {EVENT, TRANSITION, STATE_ENTER, MESSAGE_ROUTED,
                MESSAGE_DELIVERED} <= kinds

    def test_cosim_default_bus_skips_engine_kinds(self):
        # the default harness subscribers only want message kinds, so
        # the engines must not pay for (or emit) engine-level events
        with SystemSimulation(soc_top()) as sim:
            sim.run(until=40.0)
            assert not sim.bus.engine_active
            assert sim.message_log  # built-in subscriber still works
            # delivered + dropped are the only default emissions
            assert sim.stats()["trace_events"] \
                == len(sim.message_log) + sim.messages_dropped

    def test_bus_false_disables_observation(self):
        with SystemSimulation(soc_top(), bus=False) as sim:
            sim.run(until=40.0)
            assert sim.bus is None
            assert sim.message_log == []
            assert sim.messages_delivered > 0
            assert sim.stats()["trace_events"] == 0


class TestSubscriberIsolation:
    """PR 4 regression: a raising subscriber must not kill the run."""

    def test_raising_subscriber_is_detached_with_warning(self):
        PERF.reset()
        bus = TraceBus()
        good = []

        def bad(event):
            raise RuntimeError("boom")

        bus.subscribe(bad)
        bus.subscribe(good.append)
        with pytest.warns(RuntimeWarning, match="boom"):
            bus.emit(EVENT, 1.0, "p", {"event": "E"})
        # the healthy subscriber saw the event; the bad one is gone
        assert len(good) == 1
        bus.emit(EVENT, 2.0, "p", {"event": "E"})
        assert len(good) == 2
        assert PERF.counter("trace.subscriber_errors") == 1
        PERF.reset()

    def test_kind_filtered_raising_subscriber_detached_everywhere(self):
        bus = TraceBus()

        def bad(event):
            raise ValueError("nope")

        bus.subscribe(bad, kinds=(EVENT, TRANSITION))
        with pytest.warns(RuntimeWarning):
            bus.emit(EVENT, 1.0, "p", {"event": "E"})
        # both kind subscriptions cancelled, not just the firing one
        import warnings

        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            bus.emit(TRANSITION, 2.0, "p",
                     {"source": "A", "target": "B", "event": "E"})
        assert not [w for w in captured
                    if issubclass(w.category, RuntimeWarning)]
        PERF.reset()

    def test_simulation_survives_poisoned_subscriber(self):
        bus = TraceBus()
        seen = [0]

        def poisoned(event):
            raise RuntimeError("subscriber bug")

        def healthy(event):
            seen[0] += 1

        bus.subscribe(poisoned)
        bus.subscribe(healthy)
        with pytest.warns(RuntimeWarning):
            with SystemSimulation(soc_top(), bus=bus) as sim:
                sim.run(until=40.0)
        assert sim.messages_delivered > 0
        assert seen[0] > 0
        PERF.reset()


class TestReentrantDetach:
    """PR 9 regression: a subscriber that cancels subscriptions (its
    own or a peer's) *during* an emit must not corrupt the delivery of
    the in-flight event — the emit iterates a snapshot, so the
    detachment takes effect from the next emit on."""

    def test_peer_detached_mid_emit_still_sees_inflight_event(self):
        bus = TraceBus()
        peer_seen = []
        subscriptions = {}

        def assassin(event):
            subscriptions["peer"].cancel()

        subscriptions["assassin"] = bus.subscribe(assassin,
                                                  kinds=(EVENT,))
        subscriptions["peer"] = bus.subscribe(peer_seen.append,
                                              kinds=(EVENT,))
        bus.emit(EVENT, 1.0, "p", {"event": "E"})
        # snapshot semantics: the peer was still in this emit's tuple
        assert len(peer_seen) == 1
        bus.emit(EVENT, 2.0, "p", {"event": "E"})
        assert len(peer_seen) == 1  # detached from the next emit on
        assert bus.subscriber_count == 1

    def test_self_detach_mid_emit(self):
        bus = TraceBus()
        seen = []
        box = {}

        def once(event):
            seen.append(event)
            box["sub"].cancel()

        box["sub"] = bus.subscribe(once, kinds=(EVENT,))
        survivor = TraceRecorder(bus, kinds=(EVENT,))
        bus.emit(EVENT, 1.0, "p", {"event": "E"})
        bus.emit(EVENT, 2.0, "p", {"event": "E"})
        assert len(seen) == 1
        assert len(survivor.events) == 2  # the peer was untouched
        assert bus.subscriber_count == 1

    def test_detach_plus_reentrant_emit(self):
        bus = TraceBus()
        peer_seen = []
        nested = []
        subscriptions = {}

        def reentrant(event):
            if event.data.get("event") == "Outer":
                subscriptions["peer"].cancel()
                inner = bus.emit(EVENT, event.t, "p",
                                 {"event": "Inner"})
                nested.append(inner)

        subscriptions["reentrant"] = bus.subscribe(reentrant,
                                                   kinds=(EVENT,))
        subscriptions["peer"] = bus.subscribe(peer_seen.append,
                                              kinds=(EVENT,))
        outer = bus.emit(EVENT, 1.0, "p", {"event": "Outer"})
        # the nested emit ran against the *rebuilt* table (no peer),
        # the outer delivery finished against its snapshot (peer seen)
        assert [event.data["event"] for event in peer_seen] == ["Outer"]
        assert nested[0].ordinal == outer.ordinal + 1
        assert bus.events_emitted == 2  # ordinals stayed gapless

    def test_cancel_is_idempotent_during_emit(self):
        bus = TraceBus()
        box = {}

        def twitchy(event):
            box["sub"].cancel()
            box["sub"].cancel()  # double-cancel must be harmless

        box["sub"] = bus.subscribe(twitchy, kinds=(EVENT,))
        bus.emit(EVENT, 1.0, "p", {"event": "E"})
        assert bus.subscriber_count == 0
