"""Tests for the ASL tokenizer."""

import pytest

from repro import asl
from repro.errors import AslSyntaxError


def kinds(source):
    return [t.kind for t in asl.tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in asl.tokenize(source)[:-1]]


class TestTokens:
    def test_numbers(self):
        tokens = asl.tokenize("1 23 4.5 0.25")[:-1]
        assert [t.kind for t in tokens] == ["int", "int", "float", "float"]

    def test_integer_followed_by_dot_method(self):
        # '1.' without a digit after must stay an int plus an op
        assert kinds("x = 1.") == ["name", "op", "int", "op"]

    def test_names_and_keywords(self):
        assert kinds("if foo while bar_2") == \
            ["keyword", "name", "keyword", "name"]

    def test_string_escapes(self):
        token = asl.tokenize(r'"a\nb\t\"q\\"')[0]
        assert token.text == 'a\nb\t"q\\'

    def test_unterminated_string(self):
        with pytest.raises(AslSyntaxError):
            asl.tokenize('"abc')

    def test_unknown_escape(self):
        with pytest.raises(AslSyntaxError):
            asl.tokenize(r'"\q"')

    def test_two_char_operators(self):
        assert texts("a == b != c <= d >= e") == \
            ["a", "==", "b", "!=", "c", "<=", "d", ">=", "e"]

    def test_line_comments_skipped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comments_skipped(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(AslSyntaxError):
            asl.tokenize("/* never closed")

    def test_positions_tracked(self):
        tokens = asl.tokenize("x\n  y")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(AslSyntaxError) as info:
            asl.tokenize("a $ b")
        assert info.value.line == 1

    def test_eof_token_terminates(self):
        tokens = asl.tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_dict_tokens(self):
        assert texts("{1: 2}") == ["{", "1", ":", "2", "}"]
