"""The examples must keep running — executed as real subprocesses."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "deliverable: at least three examples"


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_clean(example):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True, text=True, timeout=180)
    assert completed.returncode == 0, (
        f"{example} failed:\n{completed.stderr[-2000:]}")
    assert completed.stdout.strip(), f"{example} produced no output"


def test_quickstart_reaches_vhdl():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=180)
    assert "generated VHDL" in completed.stdout
    assert "entity Counter is" in completed.stdout


def test_codesign_runs_generated_software():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "hw_sw_codesign.py")],
        capture_output=True, text=True, timeout=180)
    assert "generated SW run: accepted=3 dropped=2" in completed.stdout
