"""CLI surface of the PR 4 observability layer: simulate --coverage /
--profile / --flight-recorder / --metrics, the stats subcommand, and
the trace-to-sequence empty/truncated-input errors (satellite)."""

import json

import pytest

import repro.metamodel as mm
from repro import xmi
from repro.cli import main
from repro.hw import make_memory, make_soc, make_traffic_generator


@pytest.fixture
def model_file(tmp_path):
    model = mm.Model("obstest")
    pkg = model.create_package("design")
    cpu = make_traffic_generator("Cpu", period=2.0, address_range=256)
    mem = make_memory("Ram", size_bytes=256)
    make_soc("Top", masters=[cpu], slaves=[(mem, "bus", 0, 256)],
             package=pkg)
    path = tmp_path / "model.xmi"
    xmi.write_file(str(path), model)
    return str(path)


class TestSimulateObservability:
    def test_coverage_flag_writes_report(self, model_file, tmp_path,
                                         capsys):
        out = tmp_path / "cov.json"
        assert main(["simulate", model_file, "--top", "design::Top",
                     "--until", "40", "--coverage", str(out)]) == 0
        assert "coverage:" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["version"] == 1
        assert payload["total_percent"] > 0
        assert "uncovered" in payload["parts"]["m0_cpu"]

    def test_coverage_identical_between_engines(self, model_file,
                                                tmp_path):
        outputs = {}
        for flag, name in ((None, "interp.json"),
                           ("--compiled", "compiled.json")):
            out = tmp_path / name
            argv = ["simulate", model_file, "--top", "design::Top",
                    "--until", "40", "--coverage", str(out)]
            if flag:
                argv.insert(1, flag)
            assert main(argv) == 0
            outputs[name] = out.read_bytes()
        assert outputs["interp.json"] == outputs["compiled.json"]

    def test_profile_flag_writes_collapsed_stacks(self, model_file,
                                                  tmp_path, capsys):
        out = tmp_path / "prof.folded"
        assert main(["simulate", model_file, "--top", "design::Top",
                     "--until", "40", "--profile", str(out)]) == 0
        lines = out.read_text().strip().splitlines()
        assert lines
        for line in lines:
            frames, _, value = line.rpartition(" ")
            assert frames and int(value) > 0

    def test_profile_steps_metric(self, model_file, tmp_path):
        out = tmp_path / "steps.folded"
        assert main(["simulate", model_file, "--top", "design::Top",
                     "--until", "40", "--profile", str(out),
                     "--profile-metric", "steps"]) == 0
        assert any("event:" in line or "fire:" in line
                   for line in out.read_text().splitlines())

    def test_flight_recorder_reports_ring(self, model_file, capsys,
                                          tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["simulate", model_file, "--top", "design::Top",
                     "--until", "40", "--flight-recorder", "32"]) == 0
        assert "flight recorder: 32/32" in capsys.readouterr().out

    def test_metrics_flag_writes_snapshot(self, model_file, tmp_path):
        out = tmp_path / "perf.json"
        cov = tmp_path / "cov.json"
        assert main(["simulate", model_file, "--top", "design::Top",
                     "--until", "40", "--coverage", str(cov),
                     "--metrics", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert "counters" in payload["perf"]
        assert payload["coverage"]["total_percent"] > 0


class TestStats:
    def make_snapshot(self, model_file, tmp_path):
        out = tmp_path / "perf.json"
        assert main(["simulate", model_file, "--top", "design::Top",
                     "--until", "40", "--coverage",
                     str(tmp_path / "cov.json"),
                     "--metrics", str(out)]) == 0
        return str(out)

    def test_prom_format(self, model_file, tmp_path, capsys):
        snapshot = self.make_snapshot(model_file, tmp_path)
        capsys.readouterr()
        assert main(["stats", snapshot, "--format", "prom"]) == 0
        output = capsys.readouterr().out
        assert "# TYPE repro_cosim_kernel_events counter" in output
        assert "repro_coverage_total_percent" in output

    def test_json_format(self, model_file, tmp_path, capsys):
        snapshot = self.make_snapshot(model_file, tmp_path)
        capsys.readouterr()
        assert main(["stats", snapshot, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "perf" in payload

    def test_external_coverage_file(self, model_file, tmp_path, capsys):
        snapshot = self.make_snapshot(model_file, tmp_path)
        capsys.readouterr()
        assert main(["stats", snapshot, "--format", "prom",
                     "--coverage", str(tmp_path / "cov.json")]) == 0
        assert 'kind="all"' in capsys.readouterr().out

    def test_live_registry_without_file(self, capsys):
        assert main(["stats", "--format", "prom"]) == 0
        capsys.readouterr()  # any content (possibly empty) is fine

    def test_invalid_snapshot_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["stats", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_snapshot_is_clean_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestTraceToSequenceRobustness:
    def test_empty_file_is_clean_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace-to-sequence", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "no trace events" in err
        assert "Traceback" not in err

    def test_blank_lines_only_is_clean_error(self, tmp_path, capsys):
        blank = tmp_path / "blank.jsonl"
        blank.write_text("\n\n  \n")
        assert main(["trace-to-sequence", str(blank)]) == 2
        assert "no trace events" in capsys.readouterr().err

    def test_truncated_line_is_clean_error(self, model_file, tmp_path,
                                           capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["simulate", model_file, "--top", "design::Top",
                     "--until", "20", "--trace", str(trace)]) == 0
        lines = trace.read_text().splitlines()
        assert lines
        # chop the final record mid-JSON, as a crashed writer would
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        trace.write_text("\n".join(lines))
        capsys.readouterr()
        assert main(["trace-to-sequence", str(trace)]) == 2
        err = capsys.readouterr().err
        assert "not a JSON trace record" in err
        assert f"{len(lines)}" in err  # the offending line number
        assert "Traceback" not in err

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        assert main(["trace-to-sequence",
                     str(tmp_path / "ghost.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err
