"""Integration tests: the full flows the paper envisions, end to end.

Pipeline A (MDA flow): PIM -> SoC profile -> hardware PSM -> all four
code generators -> structural validity + executable generated Python.

Pipeline B (early prototyping): IP library -> SoC assembly ->
cosimulation, then XMI round-trip and re-simulation — the model is the
single source of truth.

Pipeline C (xUML): one model drives interpreter, flattened machine and
generated code to identical behaviour.
"""

import pytest

import repro.metamodel as mm
from repro import xmi
from repro.codegen import VALIDATORS, generate_all, python_gen
from repro.hw import ip_library, make_memory, make_soc, make_traffic_generator
from repro.mda import hardware_transformation, software_transformation
from repro.metrics import abstraction_report, reuse_report
from repro.profiles import create_soc_profile, has_stereotype
from repro.simulation import SystemSimulation
from repro.statemachines import StateMachineRuntime, flatten
from repro.validation import validate_model


class TestMdaPipeline:
    def build_pim(self):
        profile = create_soc_profile()
        pim = mm.Model("pipeline")
        pkg = pim.create_package("design")
        for component in (make_memory("Mem", size_bytes=1024,
                                      profile=profile),
                          make_traffic_generator("Gen", profile=profile)):
            pkg.add(component)
        return pim, profile

    def test_pim_to_hw_psm_to_all_backends(self):
        pim, profile = self.build_pim()
        result = hardware_transformation().transform(pim,
                                                     profiles=[profile])
        assert result.completeness() == 1.0
        generated = generate_all(result.psm)
        for backend, files in generated.items():
            for filename, text in files.items():
                issues = VALIDATORS[backend](text)
                assert issues == [], f"{backend}/{filename}: {issues}"

    def test_psm_validates_clean(self):
        pim, profile = self.build_pim()
        result = hardware_transformation().transform(pim,
                                                     profiles=[profile])
        report = validate_model(result.psm)
        assert report.ok, [str(f) for f in report.errors]

    def test_sw_and_hw_psm_from_same_pim(self):
        pim, profile = self.build_pim()
        sw = software_transformation().transform(pim, profiles=[profile])
        hw = hardware_transformation().transform(pim, profiles=[profile])
        mem_sw = sw.psm.resolve("design::Mem", mm.Component)
        mem_hw = hw.psm.resolve("design::Mem", mm.Component)
        assert mem_sw.find_operation("run") is not None
        assert {"clk", "rst_n"} <= {p.name for p in mem_hw.ports}
        # the PIM has neither
        mem_pim = pim.resolve("design::Mem", mm.Component)
        assert mem_pim.find_operation("run") is None

    def test_abstraction_report_expansion(self):
        pim, profile = self.build_pim()
        result = hardware_transformation().transform(pim,
                                                     profiles=[profile])
        generated = generate_all(result.psm)
        merged = {backend: "\n".join(files.values())
                  for backend, files in generated.items()}
        report = abstraction_report(pim, merged)
        assert report.expansion_factor > 1.0


class TestPrototypingPipeline:
    def build_system(self):
        profile = create_soc_profile()
        package = mm.Package("system")
        cpu = make_traffic_generator(period=4.0, address_range=2048,
                                     profile=profile)
        mem = make_memory("Ram", size_bytes=2048, profile=profile)
        top = make_soc("Demo", masters=[cpu],
                       slaves=[(mem, "bus", 0, 2048)],
                       profile=profile, package=package)
        return package, top, profile

    def test_assembled_soc_simulates(self):
        package, top, profile = self.build_system()
        simulation = SystemSimulation(top, quantum=1.0)
        simulation.run(until=100.0)
        context = simulation.context_of("m0_trafficgen")
        assert context["responses"] > 0

    def test_model_survives_xmi_and_resimulates(self):
        package, top, profile = self.build_system()
        model = mm.Model("wrap")
        model._own(package)
        text = xmi.write_model(model, profiles=[profile])
        document = xmi.read_model(text)
        top2 = document.model.member("system", mm.Package) \
            .member("Demo", mm.Component)
        first = SystemSimulation(top, quantum=1.0)
        second = SystemSimulation(top2, quantum=1.0)
        first.run(until=60.0)
        second.run(until=60.0)
        assert first.context_of("m0_trafficgen")["issued"] == \
            second.context_of("m0_trafficgen")["issued"]
        assert first.state_snapshot() == second.state_snapshot()

    def test_reuse_measured_against_library(self):
        profile = create_soc_profile()
        library = ip_library(profile)
        top = mm.Component("Sys")
        fifo_type = library.member("Fifo", mm.Component)
        mem_type = library.member("Sram", mm.Component)
        top.add_part("f0", fifo_type)
        top.add_part("f1", fifo_type)
        top.add_part("m0", mem_type)
        custom = mm.Component("Custom")
        top.add_part("c0", custom)
        report = reuse_report(top, library)
        assert report.reuse_ratio == pytest.approx(0.75)


class TestXumlPipeline:
    def test_interpreter_flat_and_generated_agree(self):
        cls = mm.UmlClass("Proto", is_active=True)
        cls.add_attribute("hops", mm.INTEGER, default=0)
        from repro.statemachines import StateMachine

        machine = StateMachine("proto")
        region = machine.region
        init = region.add_initial()
        a = region.add_state("A")
        b = region.add_state("B")
        c = region.add_state("C")
        region.add_transition(init, a)
        region.add_transition(a, b, trigger="x",
                              effect="hops = hops + 1;")
        region.add_transition(b, c, trigger="y",
                              effect="hops = hops + 1;")
        region.add_transition(c, a, trigger="z",
                              effect="hops = hops + 1;")
        cls.add_behavior(machine, as_classifier_behavior=True)

        runtime = StateMachineRuntime(machine,
                                      context={"hops": 0}).start()
        flat = flatten(machine, context={"hops": 0})
        generated = python_gen.compile_module(cls)["Proto"]()

        import random

        rng = random.Random(3)
        for _ in range(100):
            event = rng.choice(["x", "y", "z"])
            runtime.send(event)
            flat.step(event)
            generated.dispatch(event)
            assert runtime.active_leaf_names() == flat.leaf_names()
            assert (generated.state,) == runtime.active_leaf_names()
        assert generated.hops == runtime.context["hops"]

    def test_operation_body_executes_same_via_asl_and_generated(self):
        from repro import asl

        cls = mm.UmlClass("Math")
        cls.add_attribute("acc", mm.INTEGER, default=0)
        op = cls.add_operation("mac", mm.INTEGER)
        op.add_parameter("a", mm.INTEGER)
        op.add_parameter("b", mm.INTEGER)
        op.set_body("acc = acc + a * b; return acc;")

        # interpreted
        env = {"acc": 0, "a": 3, "b": 4}
        interpreted = asl.run(op.body, env)
        # generated
        instance = python_gen.compile_module(cls)["Math"]()
        generated = instance.mac(3, 4)
        assert interpreted == generated == 12


class TestThirteenDiagramsOfOneSystem:
    def test_one_model_supports_all_diagram_kinds(self):
        """The paper's 13-diagram claim, exercised on one system."""
        from repro import activities as ac
        from repro import interactions as ixn
        from repro import statemachines as st
        from repro.diagrams import (
            DiagramKind,
            activity_diagram,
            class_diagram,
            communication_diagram,
            component_diagram,
            composite_structure_diagram,
            deployment_diagram,
            interaction_overview_diagram,
            object_diagram,
            package_diagram,
            render,
            sequence_diagram,
            state_machine_diagram,
            timing_diagram,
            use_case_diagram,
        )

        model = mm.Model("full")
        pkg = model.create_package("sys")
        cpu = pkg.add(mm.Component("Cpu"))
        machine = st.StateMachine("fsm")
        region = machine.region
        region.add_transition(region.add_initial(),
                              region.add_state("Run"))
        cpu.add_behavior(machine, as_classifier_behavior=True)
        activity = ac.Activity("boot")
        activity.chain(activity.add_initial(),
                       activity.add_action("load"),
                       activity.add_final())
        cpu.add_behavior(activity)
        top = pkg.add(mm.Component("Top"))
        top.add_part("cpu", cpu)
        pkg.add(mm.InstanceSpecification("cpu0", cpu))
        interaction = pkg.add(ixn.Interaction("io"))
        a = interaction.add_lifeline("a")
        b = interaction.add_lifeline("b")
        interaction.message("m", a, b)
        pkg.add(mm.Actor("User"))
        pkg.add(mm.UseCase("Boot"))
        node = pkg.add(mm.Node("board"))
        artifact = pkg.add(mm.Artifact("fw"))
        node.deploy(artifact)

        diagrams = [
            class_diagram(pkg), object_diagram(pkg),
            package_diagram(model), component_diagram(pkg),
            composite_structure_diagram(top), deployment_diagram(pkg),
            use_case_diagram(pkg), state_machine_diagram(machine),
            activity_diagram(activity), sequence_diagram(interaction),
            communication_diagram(interaction),
            interaction_overview_diagram(activity),
            timing_diagram(machine),
        ]
        assert {d.kind for d in diagrams} == set(DiagramKind)
        for diagram in diagrams:
            text = render(diagram)
            assert text.startswith("@startuml")
            assert text.endswith("@enduml")
