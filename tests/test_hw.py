"""Tests for the IP library and bus fabric."""

import pytest

import repro.metamodel as mm
from repro.errors import ModelError
from repro.hw import (
    AddressMap,
    Region,
    ip_library,
    make_arbiter,
    make_bus,
    make_dma,
    make_fifo,
    make_memory,
    make_soc,
    make_timer,
    make_traffic_generator,
    make_uart_tx,
)
from repro.profiles import create_soc_profile, has_stereotype
from repro.simulation import SystemSimulation
from repro.statemachines import StateMachine, StateMachineRuntime
from repro.validation import validate_model


class TestAddressMap:
    def test_decode(self):
        amap = AddressMap([Region(0, 0x100, "s0"),
                           Region(0x100, 0x100, "s1")])
        assert amap.decode(0x20).port == "s0"
        assert amap.decode(0x100).port == "s1"
        assert amap.decode(0x200) is None

    def test_overlap_rejected(self):
        amap = AddressMap([Region(0, 0x100, "s0")])
        with pytest.raises(ModelError):
            amap.add(Region(0x80, 0x100, "s1"))

    def test_zero_size_rejected(self):
        with pytest.raises(ModelError):
            AddressMap([Region(0, 0, "s0")])


class TestIpCores:
    def test_library_contents(self):
        library = ip_library()
        names = {c.name for c in library.packaged_elements}
        assert {"Fifo", "Sram", "Arbiter", "UartTx", "Timer", "Dma",
                "TrafficGen", "Pic"} == names

    def test_library_with_profile_stereotypes(self):
        profile = create_soc_profile()
        library = ip_library(profile)
        fifo = library.member("Fifo", mm.Component)
        assert has_stereotype(fifo, "IpCore")
        assert has_stereotype(fifo, "HwModule")  # via specialization

    def test_every_core_passes_validation(self):
        profile = create_soc_profile()
        library = ip_library(profile)
        report = validate_model(library)
        assert report.ok, [str(f) for f in report.errors]

    def test_fifo_order_and_capacity(self):
        fifo = make_fifo(depth=2)
        sink = []
        runtime = StateMachineRuntime(fifo.classifier_behavior,
                                      signal_sink=sink.append).start()
        runtime.send("Push", value=1)
        runtime.send("Push", value=2)
        runtime.send("Push", value=3)  # overflow
        assert sink[-1].signal == "Full"
        runtime.send("Next")
        runtime.send("Next")
        values = [s.arguments["value"] for s in sink
                  if s.signal == "Pop"]
        assert values == [1, 2]
        runtime.send("Next")
        assert sink[-1].signal == "Empty"

    def test_memory_read_write_and_bounds(self):
        memory = make_memory(size_bytes=16)
        sink = []
        runtime = StateMachineRuntime(memory.classifier_behavior,
                                      signal_sink=sink.append).start()
        runtime.send("Write", addr=4, value=99)
        runtime.send("Read", addr=4)
        assert sink[-1].signal == "ReadResp"
        assert sink[-1].arguments["value"] == 99
        runtime.send("Read", addr=999)
        assert sink[-1].signal == "Nak"
        runtime.send("Read", addr=8)  # never written -> 0
        assert sink[-1].arguments["value"] == 0

    def test_arbiter_round_robin_queue(self):
        arbiter = make_arbiter()
        sink = []
        runtime = StateMachineRuntime(arbiter.classifier_behavior,
                                      signal_sink=sink.append).start()
        runtime.send("Request", master=0)
        runtime.send("Request", master=1)
        runtime.send("Request", master=2)
        runtime.send("Release")
        runtime.send("Release")
        grants = [s.arguments["master"] for s in sink
                  if s.signal == "Grant"]
        assert grants == [0, 1, 2]
        runtime.send("Release")
        assert runtime.active_leaf_names() == ("Idle",)

    def test_timer_periodic_and_stop(self):
        timer = make_timer(period=10.0)
        sink = []
        runtime = StateMachineRuntime(timer.classifier_behavior,
                                      context={"count": 0},
                                      signal_sink=sink.append).start()
        runtime.advance_time(35.0)
        ticks = [s.arguments["count"] for s in sink if s.signal == "Tick"]
        assert ticks == [1, 2, 3]
        runtime.send("Stop")
        runtime.advance_time(50.0)
        assert len([s for s in sink if s.signal == "Tick"]) == 3

    def test_uart_defers_byte_while_shifting(self):
        uart = make_uart_tx(bit_time=1.0)  # frame = 10
        sink = []
        runtime = StateMachineRuntime(uart.classifier_behavior,
                                      signal_sink=sink.append).start()
        runtime.send("Send", byte=65)
        runtime.send("Send", byte=66)  # arrives mid-frame, deferred
        runtime.advance_time(10.0)
        assert [s.arguments["byte"] for s in sink] == [65]
        runtime.advance_time(10.0)
        assert [s.arguments["byte"] for s in sink] == [65, 66]


class TestBusAndSoc:
    def test_bus_decodes_and_rewrites_addresses(self):
        amap = AddressMap([Region(0x000, 0x100, "s0"),
                           Region(0x100, 0x100, "s1")])
        bus = make_bus("B", amap)
        sink = []
        runtime = StateMachineRuntime(bus.classifier_behavior,
                                      signal_sink=sink.append).start()
        runtime.send("Read", addr=0x120)
        assert sink[-1].target == "s1"
        assert sink[-1].arguments["addr"] == 0x20
        runtime.send("Read", addr=0x999)
        assert sink[-1].signal == "Nak"
        assert sink[-1].target == "m"

    def test_soc_end_to_end_traffic(self):
        cpu = make_traffic_generator(period=5.0, address_range=8192)
        sram = make_memory("Sram", size_bytes=4096)
        rom = make_memory("Rom", size_bytes=4096)
        top = make_soc("Soc", masters=[cpu],
                       slaves=[(sram, "bus", 0x0000, 4096),
                               (rom, "bus", 0x1000, 4096)])
        sim = SystemSimulation(top, quantum=1.0, default_latency=1.0)
        sim.run(until=300.0)
        ctx = sim.context_of("m0_trafficgen")
        assert ctx["issued"] > 30
        # every issued request except in-flight tail gets a response
        assert ctx["responses"] >= ctx["issued"] - 2
        stored = len(sim.context_of("s0_sram")["store"]) \
            + len(sim.context_of("s1_rom")["store"])
        assert stored > 0

    def test_soc_package_registration(self):
        pkg = mm.Package("sys")
        cpu = make_traffic_generator()
        mem = make_memory()
        top = make_soc("Soc", masters=[cpu],
                       slaves=[(mem, "bus", 0, 4096)], package=pkg)
        assert top.owner is pkg
        assert cpu.owner is pkg

    def test_dma_copies_through_memory(self):
        top = mm.Component("T")
        dma = make_dma()
        memory = make_memory("M", size_bytes=256)
        p_dma = top.add_part("dma", dma)
        p_mem = top.add_part("mem", memory)
        top.connect(dma.port("mem"), memory.port("bus"),
                    p_dma, p_mem, check=False)
        sim = SystemSimulation(top)
        for address in range(4):
            sim.send("mem", "Write", addr=address, value=100 + address)
        sim.send("dma", "Start", src=0, dst=16, length=4, delay=1.0)
        sim.run(until=100.0)
        store = sim.context_of("mem")["store"]
        assert [store[16 + i] for i in range(4)] == [100, 101, 102, 103]
