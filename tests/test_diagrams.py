"""Tests for diagram views and PlantUML rendering."""

import pytest

import repro.metamodel as mm
from repro import interactions as ixn
from repro import statemachines as st
from repro.activities import Activity
from repro.diagrams import (
    BEHAVIORAL_KINDS,
    DiagramKind,
    PHYSICAL_KINDS,
    STRUCTURAL_KINDS,
    activity_diagram,
    class_diagram,
    component_diagram,
    composite_structure_diagram,
    deployment_diagram,
    object_diagram,
    package_diagram,
    render,
    render_state_machine,
    sequence_diagram,
    state_machine_diagram,
    use_case_diagram,
)


class TestThirteenKinds:
    def test_all_thirteen_present(self):
        assert len(DiagramKind) == 13

    def test_paper_grouping_covers_all(self):
        grouped = set(STRUCTURAL_KINDS) | set(BEHAVIORAL_KINDS) \
            | set(PHYSICAL_KINDS)
        assert grouped == set(DiagramKind)


class TestExtraction:
    def test_class_diagram_collects_classifiers(self, simple_model):
        pkg = simple_model.member("core", mm.Package)
        diagram = class_diagram(pkg)
        names = {getattr(e, "name", "") for e in diagram.elements}
        assert {"IBus", "Cpu", "Mem"} <= names

    def test_object_diagram(self):
        model = mm.Model("m")
        pkg = model.create_package("p")
        cls = pkg.add(mm.UmlClass("C"))
        inst = pkg.add(mm.InstanceSpecification("c0", cls))
        diagram = object_diagram(pkg)
        assert inst in diagram.elements
        assert cls not in diagram.elements

    def test_package_diagram_nests(self):
        model = mm.Model("m")
        model.create_package("a").create_package("b")
        diagram = package_diagram(model)
        assert len(diagram) == 3

    def test_composite_structure(self):
        top = mm.Component("Top")
        inner = mm.Component("Inner")
        part = top.add_part("i", inner)
        diagram = composite_structure_diagram(top)
        assert part in diagram.elements

    def test_use_case_diagram(self):
        model = mm.Model("m")
        pkg = model.create_package("uc")
        actor = pkg.add(mm.Actor("User"))
        case = pkg.add(mm.UseCase("Boot"))
        diagram = use_case_diagram(pkg)
        assert {actor, case} <= set(diagram.elements)


class TestRendering:
    def test_class_diagram_plantuml(self, simple_model):
        pkg = simple_model.member("core", mm.Package)
        text = render(class_diagram(pkg))
        assert text.startswith("@startuml")
        assert text.endswith("@enduml")
        assert "interface IBus" in text
        assert "IBus <|.. Cpu" in text

    def test_generalization_rendered(self):
        model = mm.Model("m")
        pkg = model.create_package("p")
        base = pkg.add(mm.UmlClass("Base"))
        derived = pkg.add(mm.UmlClass("Derived"))
        derived.add_generalization(base)
        text = render(class_diagram(pkg))
        assert "Base <|-- Derived" in text

    def test_association_rendered(self):
        model = mm.Model("m")
        pkg = model.create_package("p")
        a = pkg.add(mm.UmlClass("A"))
        b = pkg.add(mm.UmlClass("B"))
        pkg.add(mm.associate(a, b, target_multiplicity=mm.MANY))
        text = render(class_diagram(pkg))
        assert '"*"' in text

    def test_state_machine_plantuml(self, toggle_machine):
        text = render_state_machine(toggle_machine)
        assert "[*] --> Off" in text
        assert "Off --> On : power" in text

    def test_composite_state_rendered(self):
        machine = st.StateMachine("m")
        region = machine.region
        init = region.add_initial()
        comp = region.add_state("Comp")
        region.add_transition(init, comp)
        inner = comp.add_region()
        i2 = inner.add_initial()
        inner.add_transition(i2, inner.add_state("Nested"))
        text = render_state_machine(machine)
        assert "state Comp {" in text
        assert "Nested" in text

    def test_guard_and_effect_in_label(self):
        machine = st.StateMachine("m")
        region = machine.region
        init = region.add_initial()
        a, b = region.add_state("A"), region.add_state("B")
        region.add_transition(init, a)
        region.add_transition(a, b, trigger="go", guard="x > 0",
                              effect="x = 0;")
        text = render_state_machine(machine)
        assert "go [x > 0] / x = 0;" in text

    def test_activity_plantuml(self):
        activity = Activity("boot")
        init = activity.add_initial()
        work = activity.add_action("work")
        final = activity.add_final()
        activity.chain(init, work, final)
        text = render(activity_diagram(activity))
        assert "state work" in text
        assert "(*) --> work" in text

    def test_sequence_plantuml(self):
        interaction = ixn.Interaction("hs")
        a = interaction.add_lifeline("a")
        b = interaction.add_lifeline("b")
        interaction.message("req", a, b)
        alt = interaction.alt()
        ok = alt.add_operand("ok")
        ok.add(ixn.Message("ack", b, a))
        fail = alt.add_operand("else")
        fail.add(ixn.Message("nak", b, a))
        text = render(sequence_diagram(interaction))
        assert "participant a" in text
        assert "a ->> b: req" in text
        assert "alt ok" in text
        assert "else else" in text
        assert text.count("end") >= 1

    def test_stereotypes_shown(self):
        from repro.profiles import apply_stereotype, create_soc_profile

        prof = create_soc_profile()
        model = mm.Model("m")
        pkg = model.create_package("p")
        cpu = pkg.add(mm.Component("Cpu"))
        apply_stereotype(cpu, prof.stereotype("Processor"))
        text = render(component_diagram(pkg))
        assert "<<Processor>>" in text


class TestDeploymentRendering:
    def test_nodes_artifacts_and_paths(self):
        model = mm.Model("m")
        pkg = model.create_package("dep")
        board = pkg.add(mm.Node("board"))
        chip = mm.Device("chip")
        board.add_node(chip)
        firmware = pkg.add(mm.Artifact("fw"))
        board.deploy(firmware)
        peer = pkg.add(mm.Node("soc2"))
        pkg.add(mm.CommunicationPath(board, peer, name="pcie"))
        loose = pkg.add(mm.Artifact("spare"))
        text = render(deployment_diagram(pkg))
        assert "node board {" in text
        assert "  artifact fw" in text
        assert text.count("artifact fw") == 1  # no duplicates
        assert "node chip" in text
        assert "board -- soc2 : pcie" in text
        assert "artifact spare" in text
