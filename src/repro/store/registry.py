"""A searchable registry of models known to an artifact store.

Workers (and users, through ``repro store ls``) need to *find* warm
artifacts, not just hit them by exact fingerprint: "the Top SoC model",
"everything carrying the «hwPart» stereotype", "models tailored by the
SoC profile".  :class:`ModelRegistry` indexes each registered model as a
``model`` artifact whose payload is the searchable record — name,
content fingerprint, per-machine subtree fingerprints, the stereotype
names applied anywhere in the tree, and the profile names in force —
and answers conjunctive name/stereotype/profile queries over those
records.

The index is itself stored content-addressed (keyed by the model
fingerprint), so re-registering an unchanged model is idempotent and
registering an edited model adds a *new* record; :meth:`search` returns
the most recently written record first.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..metamodel.element import Element
from ..metamodel.model import element_fingerprint, model_fingerprint
from .artifacts import ArtifactStore

#: Artifact kind under which registry records are stored.
MODEL_KIND = "model"


def _machine_index(root: Element) -> Dict[str, str]:
    """``{qualified machine name: subtree fingerprint}`` for a model."""
    from ..statemachines.kernel import StateMachine

    machines: Dict[str, str] = {}
    for element in root.all_owned():
        if isinstance(element, StateMachine):
            owner = element.owner
            owner_name = getattr(owner, "name", "") if owner is not None \
                else ""
            label = f"{owner_name}::{element.name}" if owner_name \
                else element.name
            machines[label] = element_fingerprint(element)
    return machines


def _stereotype_names(root: Element) -> List[str]:
    """Sorted stereotype names applied anywhere in the tree."""
    from ..profiles.core import applications_of

    names = set()
    for element in [root] + list(root.all_owned()):
        for application in applications_of(element):
            names.add(application.stereotype.name)
    return sorted(names)


class ModelRegistry:
    """Name/stereotype/profile index over a store's registered models."""

    def __init__(self, store: ArtifactStore):
        self.store = store

    def register(self, model: Element,
                 profiles: Sequence[Element] = ()) -> Dict[str, Any]:
        """Index a model; returns the stored record (idempotent)."""
        fingerprint = model_fingerprint(model)
        record = {
            "name": getattr(model, "name", ""),
            "fingerprint": fingerprint,
            "elements": sum(1 for _ in model.all_owned()),
            "machines": _machine_index(model),
            "stereotypes": _stereotype_names(model),
            "profiles": sorted(getattr(p, "name", "") for p in profiles),
        }
        key = self.store.make_key(MODEL_KIND, fingerprint)
        if self.store.contains(MODEL_KIND, key):
            cached = self.store.load(MODEL_KIND, key,
                                     inputs=(fingerprint,),
                                     label=record["name"])
            if cached is not None:
                return cached
        self.store.save(MODEL_KIND, key, record,
                        inputs=(fingerprint,),
                        meta={"name": record["name"]},
                        label=record["name"])
        return record

    def entries(self) -> List[Dict[str, Any]]:
        """Every readable registry record, most recently stored first."""
        summaries = sorted(self.store.ls(MODEL_KIND),
                           key=lambda entry: entry["age_s"])
        records = []
        for summary in summaries:
            if summary.get("corrupt"):
                continue
            record = self.store.load(MODEL_KIND, summary["key"])
            if record is not None:
                records.append(record)
        return records

    def search(self, name: Optional[str] = None,
               stereotype: Optional[str] = None,
               profile: Optional[str] = None) -> List[Dict[str, Any]]:
        """Conjunctive substring queries over the registered records."""
        matches = []
        for record in self.entries():
            if name is not None and name.lower() \
                    not in str(record.get("name", "")).lower():
                continue
            if stereotype is not None and not any(
                    stereotype.lower() in entry.lower()
                    for entry in record.get("stereotypes", ())):
                continue
            if profile is not None and not any(
                    profile.lower() in entry.lower()
                    for entry in record.get("profiles", ())):
                continue
            matches.append(record)
        return matches

    def __repr__(self) -> str:
        return f"<ModelRegistry over {self.store.root}>"
