"""repro.store: the content-addressed artifact store and build graph.

PR 8's refactor of the model-processing pipeline into explicit build
stages.  Each stage — PIM→PSM transform (:mod:`repro.mda.engine`),
per-machine flattening and dispatch-table compilation
(:mod:`repro.statemachines.flatten`), per-unit code generation
(:mod:`repro.codegen.pipeline`) — keys its output by the content
fingerprints of the model slice it reads plus its upstream artifacts,
persists it in an :class:`ArtifactStore`, and records a node in the
store's :class:`BuildGraph`.  Editing one state machine of a system
model therefore rebuilds only that machine's dependents; siblings are
served warm, byte-identically (the warm-start lockstep gate).

Activation
----------
Stages consult the process-wide *active store*:

>>> from repro.store import ArtifactStore, set_active_store
>>> set_active_store(ArtifactStore("/tmp/mystore"))   # doctest: +SKIP

``set_active_store(None)`` disables persistence (stages fall back to
their in-memory caches only).  When no store has been set explicitly
and the ``REPRO_STORE`` environment variable names a directory, the
first consumer auto-activates a store there — this is how CLI-spawned
and pool-forked campaign workers join their parent's store.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import StoreError
from .artifacts import (
    ENVELOPE_VERSION,
    STORE_ENV,
    ArtifactStore,
    canonical_json,
    default_store_root,
)
from .graph import BUILT, REUSED, BuildGraph, BuildNode
from .registry import MODEL_KIND, ModelRegistry

#: The process-wide active store; ``False`` = "not resolved yet" so the
#: env-var probe runs once, not on every cache lookup.
_ACTIVE = False


def set_active_store(store: Optional[ArtifactStore]
                     ) -> Optional[ArtifactStore]:
    """Install the store every pipeline stage consults; returns the
    previous one (None when persistence was off)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = store
    return previous if previous is not False else None


def get_active_store() -> Optional[ArtifactStore]:
    """The active store, auto-activating from ``$REPRO_STORE`` once."""
    global _ACTIVE
    if _ACTIVE is False:
        env = os.environ.get(STORE_ENV)
        if env:
            try:
                _ACTIVE = ArtifactStore(env)
            except StoreError:
                _ACTIVE = None
        else:
            _ACTIVE = None
    return _ACTIVE


@contextmanager
def using_store(store: Optional[ArtifactStore]) -> Iterator[
        Optional[ArtifactStore]]:
    """Scoped activation: restores the previous store on exit."""
    previous = set_active_store(store)
    try:
        yield store
    finally:
        set_active_store(previous)


__all__ = [
    "ArtifactStore", "BuildGraph", "BuildNode", "ModelRegistry",
    "BUILT", "REUSED", "ENVELOPE_VERSION", "MODEL_KIND", "STORE_ENV",
    "canonical_json", "default_store_root",
    "get_active_store", "set_active_store", "using_store",
]
