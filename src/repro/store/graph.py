"""The explicit build graph over pipeline stages.

Every store-mediated stage of the model-processing pipeline — PIM→PSM
transform, per-machine flattening, per-machine dispatch-table compile,
per-unit codegen — records a :class:`BuildNode` here: the artifact kind,
its content-addressed key, the input fingerprints it declared (the model
slice it read plus upstream artifact keys), and whether the artifact was
**built** (cold: the stage ran) or **reused** (warm: served from the
disk store).  The graph is what makes incremental recompilation
*checkable*: after editing exactly one state machine of a multi-part
model, the counters must show one ``built`` compile node and warm
reuses for every sibling — the PR 8 acceptance gate asserts exactly
that.

The graph is per-:class:`~repro.store.artifacts.ArtifactStore` instance
and in-memory only; it describes *this process's* build activity, not
the store's whole history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Node status values.
BUILT = "built"
REUSED = "reused"


@dataclass(frozen=True)
class BuildNode:
    """One stage execution: an artifact and the inputs that keyed it."""

    kind: str                       # "transform" | "flatten" | "compile" | ...
    key: str                        # content-addressed artifact key
    inputs: Tuple[str, ...]         # input fingerprints / upstream keys
    status: str                     # BUILT or REUSED
    label: str = ""                 # human handle (machine/model name)


@dataclass
class BuildGraph:
    """An append-only record of build activity with per-kind counters."""

    nodes: List[BuildNode] = field(default_factory=list)

    def record(self, kind: str, key: str, inputs: Tuple[str, ...],
               status: str, label: str = "") -> BuildNode:
        node = BuildNode(kind, key, tuple(inputs), status, label)
        self.nodes.append(node)
        return node

    # -- counters (the incremental-rebuild assertions) -------------------

    def built(self, kind: Optional[str] = None) -> int:
        """How many artifacts were cold-built (optionally of one kind)."""
        return sum(1 for node in self.nodes if node.status == BUILT
                   and (kind is None or node.kind == kind))

    def reused(self, kind: Optional[str] = None) -> int:
        """How many artifacts were served warm from the store."""
        return sum(1 for node in self.nodes if node.status == REUSED
                   and (kind is None or node.kind == kind))

    def counts(self) -> Dict[str, Dict[str, int]]:
        """``{kind: {"built": n, "reused": n}}`` over all recorded nodes."""
        table: Dict[str, Dict[str, int]] = {}
        for node in self.nodes:
            bucket = table.setdefault(node.kind,
                                      {"built": 0, "reused": 0})
            bucket[node.status] = bucket.get(node.status, 0) + 1
        return {kind: table[kind] for kind in sorted(table)}

    def dependents_of(self, fingerprint: str) -> Tuple[BuildNode, ...]:
        """Every node that declared ``fingerprint`` among its inputs."""
        return tuple(node for node in self.nodes
                     if fingerprint in node.inputs)

    def reset(self) -> None:
        """Forget recorded activity (counters restart at zero)."""
        self.nodes.clear()

    def explain(self) -> List[str]:
        """Human-readable one-line-per-node build log."""
        lines = []
        for node in self.nodes:
            label = f" {node.label}" if node.label else ""
            lines.append(f"{node.status:<6} {node.kind}{label} "
                         f"key={node.key[:12]} "
                         f"inputs={len(node.inputs)}")
        return lines

    def __repr__(self) -> str:
        return (f"<BuildGraph {len(self.nodes)} nodes "
                f"built={self.built()} reused={self.reused()}>")
