"""The content-addressed, disk-backed artifact store.

Artifacts are keyed by content fingerprints of their inputs (model
subtree digests plus upstream artifact keys) and persisted as
version-stamped, sorted-key JSON envelopes::

    {"version": 1, "kind": "compile", "key": "...", "inputs": [...],
     "meta": {...}, "payload": ..., "checksum": "..."}

Durability protocol (safe under concurrent fork workers):

* **writes** go to a unique temp file in the store's ``tmp/`` directory
  and land via ``os.replace`` — readers only ever see a complete
  envelope, and the last of two racing same-key writers wins with a
  valid file either way;
* **reads** re-verify the envelope (version stamp, kind/key match,
  payload checksum); anything truncated, garbled or from a future
  format counts a ``store.corrupt`` miss, evicts the bad file and falls
  through to a clean rebuild — corruption can cost time, never
  correctness.

The default location is ``~/.cache/repro`` (override with the
``REPRO_STORE`` environment variable or an explicit root — the CLI's
``--store DIR``).  Every load/save also records a node in the store's
:class:`~repro.store.graph.BuildGraph`, which is how the incremental
recompilation tests count rebuilds.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import StoreError
from ..perf import PERF
from .graph import BUILT, REUSED, BuildGraph

#: Envelope format version; bumping it invalidates every stored artifact.
ENVELOPE_VERSION = 1

#: Environment variable naming the store root (the CLI exports it so
#: spawned campaign workers resolve the same store as their parent).
STORE_ENV = "REPRO_STORE"


def default_store_root() -> Path:
    """``$REPRO_STORE`` when set, else ``~/.cache/repro``."""
    env = os.environ.get(STORE_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True, default=str)


def _checksum(payload: Any) -> str:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()


class ArtifactStore:
    """Content-addressed artifacts on disk, one JSON envelope per key."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root).expanduser() if root is not None \
            else default_store_root()
        self._objects = self.root / "objects"
        self._tmp = self.root / "tmp"
        try:
            self._objects.mkdir(parents=True, exist_ok=True)
            self._tmp.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"cannot create store at {self.root}: {exc}")
        #: build activity of *this process* against this store
        self.graph = BuildGraph()

    # -- keys ------------------------------------------------------------

    @staticmethod
    def make_key(*parts: str) -> str:
        """Content-addressed key over fingerprint/name parts."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update("\x1f".join(str(part) for part in parts)
                      .encode("utf-8", "surrogatepass"))
        return digest.hexdigest()

    def _path(self, kind: str, key: str) -> Path:
        if not kind or any(ch in kind for ch in "/\\."):
            raise StoreError(f"invalid artifact kind {kind!r}")
        if not key or any(ch in key for ch in "/\\."):
            raise StoreError(f"invalid artifact key {key!r}")
        return self._objects / kind / f"{key}.json"

    # -- load / save ------------------------------------------------------

    def load(self, kind: str, key: str,
             inputs: Iterable[str] = (),
             label: str = "") -> Optional[Any]:
        """The payload stored under (kind, key), or None.

        A hit records a ``reused`` build-graph node and refreshes the
        file's mtime (so :meth:`gc` approximates LRU).  A missing,
        truncated, garbled, mismatched or future-versioned envelope is a
        miss — corrupt files are evicted so the rebuild can replace
        them.
        """
        path = self._path(kind, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            PERF.incr("store.miss")
            return None
        except (OSError, ValueError):
            return self._corrupt(path)
        if (not isinstance(envelope, dict)
                or envelope.get("version") != ENVELOPE_VERSION
                or envelope.get("kind") != kind
                or envelope.get("key") != key
                or "payload" not in envelope
                or envelope.get("checksum")
                != _checksum(envelope["payload"])):
            return self._corrupt(path)
        PERF.incr("store.hit")
        try:
            os.utime(path)
        except OSError:
            pass
        self.graph.record(kind, key, tuple(inputs), REUSED, label)
        return envelope["payload"]

    def _corrupt(self, path: Path) -> None:
        PERF.incr("store.corrupt")
        PERF.incr("store.miss")
        try:
            path.unlink()
        except OSError:
            pass
        return None

    def save(self, kind: str, key: str, payload: Any,
             inputs: Iterable[str] = (),
             meta: Optional[Dict[str, Any]] = None,
             label: str = "") -> Path:
        """Persist a payload atomically; records a ``built`` node."""
        path = self._path(kind, key)
        envelope = {
            "version": ENVELOPE_VERSION,
            "kind": kind,
            "key": key,
            "inputs": sorted(str(item) for item in inputs),
            "meta": dict(meta or {}),
            "payload": payload,
            "checksum": _checksum(payload),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, tmp_name = tempfile.mkstemp(
            prefix=f"{key[:12]}.", suffix=".tmp", dir=self._tmp)
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, sort_keys=True, indent=1,
                          default=str)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        PERF.incr("store.write")
        self.graph.record(kind, key, tuple(inputs), BUILT, label)
        return path

    def contains(self, kind: str, key: str) -> bool:
        """True when an envelope file exists (without validating it)."""
        return self._path(kind, key).exists()

    # -- inspection (the ``repro store`` CLI surface) ---------------------

    def ls(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Envelope summaries, sorted by (kind, key).

        Unreadable envelopes are listed with ``"corrupt": True`` rather
        than skipped, so ``repro store ls`` surfaces damage.
        """
        entries: List[Dict[str, Any]] = []
        kinds = [kind] if kind is not None else sorted(
            p.name for p in self._objects.iterdir() if p.is_dir())
        for kind_name in kinds:
            kind_dir = self._objects / kind_name
            if not kind_dir.is_dir():
                continue
            for path in sorted(kind_dir.glob("*.json")):
                stat = path.stat()
                entry: Dict[str, Any] = {
                    "kind": kind_name,
                    "key": path.stem,
                    "bytes": stat.st_size,
                    "age_s": max(0.0, round(time.time() - stat.st_mtime,
                                            1)),
                }
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        envelope = json.load(handle)
                    entry["meta"] = envelope.get("meta", {})
                    entry["inputs"] = len(envelope.get("inputs", ()))
                except (OSError, ValueError):
                    entry["corrupt"] = True
                entries.append(entry)
        return entries

    def info(self) -> Dict[str, Any]:
        """Store-wide summary: root, artifact/byte counts per kind."""
        kinds: Dict[str, Dict[str, int]] = {}
        total_bytes = 0
        total = 0
        for entry in self.ls():
            bucket = kinds.setdefault(entry["kind"],
                                      {"artifacts": 0, "bytes": 0})
            bucket["artifacts"] += 1
            bucket["bytes"] += entry["bytes"]
            total += 1
            total_bytes += entry["bytes"]
        return {
            "root": str(self.root),
            "version": ENVELOPE_VERSION,
            "artifacts": total,
            "bytes": total_bytes,
            "kinds": kinds,
        }

    def gc(self, max_age_s: Optional[float] = None,
           kind: Optional[str] = None,
           dry_run: bool = False) -> List[Tuple[str, str]]:
        """Evict artifacts, returning the removed ``(kind, key)`` pairs.

        Policy: age-based LRU — an artifact's mtime refreshes on every
        warm load, so ``max_age_s`` evicts what no consumer has touched
        recently.  ``max_age_s=None`` evicts everything (of ``kind``
        when given).  Stray temp files older than an hour are always
        swept.
        """
        removed: List[Tuple[str, str]] = []
        now = time.time()
        for entry in self.ls(kind):
            if max_age_s is not None and entry["age_s"] <= max_age_s \
                    and not entry.get("corrupt"):
                continue
            removed.append((entry["kind"], entry["key"]))
            if not dry_run:
                try:
                    self._path(entry["kind"], entry["key"]).unlink()
                except OSError:
                    pass
        if not dry_run:
            for stray in self._tmp.glob("*.tmp"):
                try:
                    if now - stray.stat().st_mtime > 3600:
                        stray.unlink()
                except OSError:
                    pass
            PERF.incr("store.gc_removed", len(removed))
        return removed

    def __repr__(self) -> str:
        return f"<ArtifactStore {self.root}>"
