"""The built-in well-formedness rules for every diagram type.

``default_rules()`` assembles the standard rule set; ``validate_model``
runs it plus profile constraints and the behavioral validators (state
machine / activity / interaction ``validate()``), producing a single
:class:`~repro.validation.rules.Report`.
"""

from __future__ import annotations

from typing import Iterable, List

from .. import activities as ac
from .. import interactions as ixn
from .. import metamodel as mm
from .. import statemachines as st
from ..errors import ReproError
from ..profiles.core import validate_applications
from .rules import Finding, Report, Rule, RuleSet, Severity


# -- structural rules ---------------------------------------------------------

def _check_classifier_named(element: mm.Classifier) -> Iterable[str]:
    if not element.name:
        yield "classifier has no name"


def _check_unique_members(element: mm.Namespace) -> Iterable[str]:
    seen = {}
    for member in element.members:
        if not member.name:
            continue
        previous = seen.get(member.name)
        if previous is not None and type(previous) is type(member):
            yield (f"duplicate member name {member.name!r} "
                   f"({type(member).__name__})")
        seen[member.name] = member


def _check_abstract_not_instantiated(
        element: mm.InstanceSpecification) -> Iterable[str]:
    classifier = element.classifier
    if classifier is not None and classifier.is_abstract:
        yield (f"instance of abstract classifier {classifier.name!r}")


def _check_slot_multiplicity(element: mm.InstanceSpecification
                             ) -> Iterable[str]:
    for slot in element.slots:
        count = len(slot.values)
        if not slot.feature.multiplicity.accepts(count):
            yield (f"slot {slot.feature.name!r} holds {count} value(s), "
                   f"violating multiplicity {slot.feature.multiplicity}")


def _check_association_arity(element: mm.Association) -> Iterable[str]:
    if len(element.member_ends) < 2:
        yield f"association has {len(element.member_ends)} end(s), needs >= 2"
    for end in element.member_ends:
        if end.type is None:
            yield f"association end {end.name!r} is untyped"


def _check_attribute_typed(element: mm.Property) -> Iterable[str]:
    if isinstance(element, mm.Port):
        return
    if element.type is None and element.association is None:
        yield f"attribute {element.name!r} has no type"


def _check_operation_parameters(element: mm.Operation) -> Iterable[str]:
    names = [p.name for p in element.parameters if p.name]
    if len(names) != len(set(names)):
        yield f"operation {element.name!r} has duplicate parameter names"
    returns = [p for p in element.parameters
               if p.direction is mm.ParameterDirection.RETURN]
    if len(returns) > 1:
        yield f"operation {element.name!r} has {len(returns)} return parameters"


def _check_interface_operations_abstract(element: mm.Interface
                                         ) -> Iterable[str]:
    for operation in element.operations:
        if operation.body is not None:
            yield (f"interface operation {operation.name!r} has a method "
                   "body (interfaces are contracts)")


def _check_component_required_connected(element: mm.Component
                                        ) -> Iterable[str]:
    owner = element.owner
    if not isinstance(owner, mm.Package):
        return
    required = element.required_interfaces
    if not required:
        return
    # a required interface should be satisfied by a connector somewhere
    # in a sibling component's internal structure or the same package
    connected_ports = set()
    for sibling in owner.descendants_of_type(mm.Connector):
        for end in sibling.ends:
            connected_ports.add(id(end.port))
    for port in element.ports:
        if port.required and id(port) not in connected_ports:
            yield (f"port {port.name!r} requires "
                   f"{[i.name for i in port.required]} but is not wired")


def _check_connector_compatibility(element: mm.Connector) -> Iterable[str]:
    if element.kind is not mm.ConnectorKind.ASSEMBLY:
        return
    port_a, port_b = element.ends[0].port, element.ends[1].port
    if not (mm.can_connect(port_a, port_b)
            and mm.can_connect(port_b, port_a)):
        yield (f"assembly connector joins incompatible ports "
               f"{port_a.name!r} and {port_b.name!r}")


def _check_usecase_has_subject_or_actor(element: mm.UseCase
                                        ) -> Iterable[str]:
    if not element.subjects and not element.actors:
        yield "use case has neither subject nor actors"


def _check_deployment_manifests(element: mm.Artifact) -> Iterable[str]:
    if not element.manifestations:
        yield "artifact manifests no model element"


def _check_node_not_empty(element: mm.Node) -> Iterable[str]:
    if not element.deployments and not element.nested_nodes:
        yield "node hosts nothing (no deployments, no nested nodes)"


# -- behavioral rules wrapping the subsystem validators -----------------------

def _wrap_validator(element) -> Iterable[str]:
    try:
        element.validate()
    except ReproError as error:
        yield str(error)


def _check_state_machine_lint(element: st.StateMachine) -> Iterable[str]:
    try:
        element.validate()
    except ReproError:
        return  # structural validity reported by the wrapping rule
    report = st.analysis.lint(element)
    for state in report["unreachable_states"]:
        yield f"state {state.name!r} is unreachable"
    for first, second in report["nondeterministic_choices"]:
        yield f"nondeterministic pair {first!r} / {second!r}"
    for cycle in report["completion_livelocks"]:
        names = ", ".join(s.name for s in cycle)
        yield f"completion livelock through states: {names}"


def default_rules() -> RuleSet:
    """The built-in rule set covering all diagram types."""
    rules = RuleSet()
    rules.add(Rule("classifier-named", "classifiers should be named",
                   mm.Classifier, _check_classifier_named,
                   Severity.WARNING))
    rules.add(Rule("unique-members", "namespace member names are unique",
                   mm.Namespace, _check_unique_members))
    rules.add(Rule("no-abstract-instances",
                   "abstract classifiers cannot be instantiated",
                   mm.InstanceSpecification,
                   _check_abstract_not_instantiated))
    rules.add(Rule("slot-multiplicity",
                   "slot values respect feature multiplicity",
                   mm.InstanceSpecification, _check_slot_multiplicity))
    rules.add(Rule("association-arity", "associations have >= 2 typed ends",
                   mm.Association, _check_association_arity))
    rules.add(Rule("attribute-typed", "attributes should be typed",
                   mm.Property, _check_attribute_typed, Severity.WARNING))
    rules.add(Rule("operation-parameters",
                   "operation parameters are unique; one return",
                   mm.Operation, _check_operation_parameters))
    rules.add(Rule("interface-contract",
                   "interface operations carry no implementation",
                   mm.Interface, _check_interface_operations_abstract))
    rules.add(Rule("required-wired",
                   "required ports should be wired by a connector",
                   mm.Component, _check_component_required_connected,
                   Severity.WARNING))
    rules.add(Rule("connector-compatible",
                   "assembly connectors join compatible ports",
                   mm.Connector, _check_connector_compatibility))
    rules.add(Rule("usecase-participants",
                   "use cases have a subject or actors",
                   mm.UseCase, _check_usecase_has_subject_or_actor,
                   Severity.WARNING))
    rules.add(Rule("artifact-manifests",
                   "artifacts manifest a model element",
                   mm.Artifact, _check_deployment_manifests, Severity.INFO))
    rules.add(Rule("node-populated", "nodes host something",
                   mm.Node, _check_node_not_empty, Severity.INFO))
    rules.add(Rule("statemachine-structure",
                   "state machines are structurally valid",
                   st.StateMachine, _wrap_validator))
    rules.add(Rule("statemachine-lint",
                   "state machines have no unreachable states or "
                   "nondeterministic pairs",
                   st.StateMachine, _check_state_machine_lint,
                   Severity.WARNING))
    rules.add(Rule("activity-structure", "activities are structurally valid",
                   ac.Activity, _wrap_validator))
    rules.add(Rule("interaction-structure",
                   "interactions are structurally valid",
                   ixn.Interaction, _wrap_validator))
    return rules


def validate_model(scope: mm.Element,
                   rules: RuleSet = None,
                   check_invariants: bool = True) -> Report:
    """Run the (default) rule set, profile constraints and class
    invariants over ``scope``."""
    ruleset = rules if rules is not None else default_rules()
    report = ruleset.run(scope)
    for message in validate_applications(scope):
        report.findings.append(Finding(
            "profile-constraint", Severity.ERROR, scope.xmi_id,
            getattr(scope, "name", "") or "", message))
    if check_invariants:
        from .invariants import check_instances

        report.findings.extend(check_instances(scope))
    return report
