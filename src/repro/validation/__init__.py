"""Well-formedness validation (subsystem S12).

A rule framework plus the built-in rules for every diagram type, with
profile constraints folded into one report.
"""

from .rules import Finding, Report, Rule, RuleSet, Severity
from .checks import default_rules, validate_model
from .invariants import (
    Invariant,
    add_invariant,
    all_invariants_for,
    check_instances,
    check_object,
    invariants_of,
)

__all__ = [
    "Finding", "Report", "Rule", "RuleSet", "Severity",
    "default_rules", "validate_model",
    "Invariant", "add_invariant", "all_invariants_for",
    "check_instances", "check_object", "invariants_of",
]
