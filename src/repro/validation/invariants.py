"""Class invariants in ASL — the OCL role, played by the action language.

UML classes carry invariants ("constraints" in the paper's OMG
context).  Rather than implementing a second expression language, an
invariant here is an ASL boolean expression over the attributes of an
instance (``count <= limit``), attached to a classifier and evaluated
against every :class:`~repro.metamodel.InstanceSpecification` of that
classifier (or any subtype) in a model — and, for live execution,
against :class:`~repro.xuml.XObject` attribute states.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .. import asl
from ..errors import ValidationError
from ..metamodel.classifiers import Classifier
from ..metamodel.element import Element
from ..metamodel.instances import InstanceSpecification
from ..metamodel.values import OpaqueExpression
from .rules import Finding, Severity

#: Language tag marking an opaque expression as a class invariant.
INVARIANT_LANGUAGE = "asl-invariant"


class Invariant:
    """A named boolean condition over a classifier's instances."""

    def __init__(self, classifier: Classifier, expression: OpaqueExpression,
                 name: str):
        self.classifier = classifier
        self.expression = expression
        self.name = name

    @property
    def condition(self) -> str:
        """The ASL source of the condition."""
        return self.expression.body

    def holds_for(self, attributes: Dict[str, Any]) -> bool:
        """Evaluate against a plain attribute-value dict.

        Missing attributes fall back to the classifier's declared
        defaults; an attribute with neither value nor default makes the
        invariant *fail* (it constrains something unspecified).
        """
        environment = {}
        for attribute in self.classifier.all_attributes():
            if attribute.default_value is not None:
                environment[attribute.name] = attribute.default_value
        environment.update(attributes)
        environment["self"] = dict(environment)
        try:
            return bool(asl.evaluate(self.condition, environment))
        except Exception:  # noqa: BLE001 — any evaluation failure = violated
            return False

    def __repr__(self) -> str:
        return f"<Invariant {self.name}: [{self.condition}]>"


def add_invariant(classifier: Classifier, condition: str,
                  name: str = "") -> Invariant:
    """Attach an ASL invariant to a classifier.

    Stored as an owned :class:`OpaqueExpression` with the
    ``asl-invariant`` language tag — so invariants serialize through
    XMI with the model.  The condition is parsed eagerly so malformed
    invariants fail at declaration time.
    """
    try:
        asl.parse_expression(condition)
    except Exception as error:  # noqa: BLE001
        raise ValidationError(
            f"invariant condition does not parse: {error}")
    expression = OpaqueExpression(condition, INVARIANT_LANGUAGE)
    classifier._own(expression)
    label = name or f"inv{len(invariants_of(classifier))}"
    expression.name = label  # annotation only; OpaqueExpression is unnamed
    return Invariant(classifier, expression, label)


def invariants_of(classifier: Classifier) -> Tuple[Invariant, ...]:
    """All invariants declared on a classifier (not inherited)."""
    found = []
    for child in classifier.owned_elements:
        if isinstance(child, OpaqueExpression) \
                and child.language == INVARIANT_LANGUAGE:
            label = getattr(child, "name", "") or f"inv{len(found)}"
            found.append(Invariant(classifier, child, label))
    return tuple(found)


def all_invariants_for(classifier: Classifier) -> Tuple[Invariant, ...]:
    """Own invariants plus those inherited from general classifiers."""
    collected = list(invariants_of(classifier))
    for general in classifier.all_generals():
        collected.extend(invariants_of(general))
    return tuple(collected)


def check_instances(scope: Element) -> List[Finding]:
    """Evaluate every invariant against every matching instance."""
    findings: List[Finding] = []
    instances = list(scope.descendants_of_type(InstanceSpecification))
    if isinstance(scope, InstanceSpecification):
        instances.append(scope)
    for instance in instances:
        classifier = instance.classifier
        if classifier is None:
            continue
        for invariant in all_invariants_for(classifier):
            if not invariant.holds_for(instance.as_dict()):
                findings.append(Finding(
                    "class-invariant", Severity.ERROR,
                    instance.xmi_id, instance.name,
                    f"invariant {invariant.name!r} violated: "
                    f"[{invariant.condition}] with {instance.as_dict()}"))
    return findings


def check_object(obj: "Any") -> List[str]:
    """Evaluate invariants against a live xUML object.

    Returns violation messages; import-cycle-free duck interface: the
    object needs ``classifier`` and ``attributes``.
    """
    violations = []
    for invariant in all_invariants_for(obj.classifier):
        if not invariant.holds_for(obj.attributes):
            violations.append(
                f"invariant {invariant.name!r} violated on "
                f"{getattr(obj, 'name', '?')}: [{invariant.condition}]")
    return violations
