"""The well-formedness rule framework.

The paper insists "meaning must be given to all the relevant language
elements" — and meaning starts with well-formedness.  A :class:`Rule`
checks one property of one element kind; a :class:`RuleSet` runs rules
over a model scope and produces a :class:`Report` of findings with
severities.  Profile constraint violations
(:func:`repro.profiles.core.validate_applications`) are folded in by
:func:`repro.validation.checks.validate_model`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple, Type

from ..metamodel.element import Element


class Severity(enum.Enum):
    """How bad a finding is."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One rule violation."""

    rule_id: str
    severity: Severity
    element_id: str
    element_name: str
    message: str

    def __str__(self) -> str:
        return (f"[{self.severity.value}] {self.rule_id} @ "
                f"{self.element_name or self.element_id}: {self.message}")


class Rule:
    """A single well-formedness rule.

    ``check`` receives one element of type ``applies_to`` and yields
    human-readable violation messages (none = clean).
    """

    def __init__(self, rule_id: str, description: str,
                 applies_to: Type[Element],
                 check: Callable[[Element], Iterable[str]],
                 severity: Severity = Severity.ERROR):
        self.rule_id = rule_id
        self.description = description
        self.applies_to = applies_to
        self.check = check
        self.severity = severity

    def run(self, element: Element) -> List[Finding]:
        """Apply the rule to one element."""
        findings = []
        for message in self.check(element):
            findings.append(Finding(
                self.rule_id, self.severity, element.xmi_id,
                getattr(element, "name", "") or "", message))
        return findings

    def __repr__(self) -> str:
        return f"<Rule {self.rule_id} ({self.severity.value})>"


class Report:
    """The outcome of running a rule set over a scope."""

    def __init__(self, findings: List[Finding]):
        self.findings = list(findings)

    @property
    def errors(self) -> Tuple[Finding, ...]:
        """Findings with ERROR severity."""
        return tuple(f for f in self.findings
                     if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Finding, ...]:
        """Findings with WARNING severity."""
        return tuple(f for f in self.findings
                     if f.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when there are no errors (warnings allowed)."""
        return not self.errors

    def by_rule(self, rule_id: str) -> Tuple[Finding, ...]:
        """Findings produced by one rule."""
        return tuple(f for f in self.findings if f.rule_id == rule_id)

    def summary(self) -> str:
        """One-line summary for logs."""
        return (f"{len(self.errors)} error(s), {len(self.warnings)} "
                f"warning(s), {len(self.findings)} finding(s) total")

    def __repr__(self) -> str:
        return f"<Report {self.summary()}>"


class RuleSet:
    """An ordered collection of rules, runnable over a model scope."""

    def __init__(self, rules: Iterable[Rule] = ()):
        self.rules: List[Rule] = list(rules)

    def add(self, rule: Rule) -> "RuleSet":
        """Append a rule (chainable); rule ids must be unique."""
        if any(r.rule_id == rule.rule_id for r in self.rules):
            raise ValueError(f"duplicate rule id {rule.rule_id!r}")
        self.rules.append(rule)
        return self

    def rule(self, rule_id: str) -> Rule:
        """Lookup a rule by id."""
        for rule in self.rules:
            if rule.rule_id == rule_id:
                return rule
        raise KeyError(rule_id)

    def run(self, scope: Element) -> Report:
        """Run every rule over every element under ``scope``."""
        findings: List[Finding] = []
        elements = [scope] + list(scope.all_owned())
        for rule in self.rules:
            for element in elements:
                if isinstance(element, rule.applies_to):
                    findings.extend(rule.run(element))
        return Report(findings)

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return f"<RuleSet {len(self.rules)} rules>"
