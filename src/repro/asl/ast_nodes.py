"""Abstract syntax tree for the Action Specification Language (ASL).

The paper singles ASL out as the piece that "closes the last gap to
complete system specification": a notation and semantics for single
actions — operation calls, assignments — inside UML models.  This ASL
dialect covers the constructs named by the paper plus the control flow
needed for realistic method bodies and transition effects:

* assignments (plain, attribute, index targets)
* operation calls and built-in function calls
* ``if``/``elif``/``else``, ``while``, ``for .. in``
* ``return``, ``break``, ``continue``
* ``send Signal(arg=..., ...) to target`` — the xUML signal send

Nodes are frozen dataclasses, so structural equality works and the
``parse(unparse(ast)) == ast`` round-trip property can be tested
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class Node:
    """Base class for all AST nodes."""

    __slots__ = ()


class Expr(Node):
    """Base class for expressions."""

    __slots__ = ()


class Stmt(Node):
    """Base class for statements."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Literal(Expr):
    """A literal: integer, float, string, boolean or null (None)."""

    value: object


@dataclass(frozen=True)
class Name(Expr):
    """A variable reference."""

    identifier: str


@dataclass(frozen=True)
class Attribute(Expr):
    """Attribute access: ``target.name``."""

    target: Expr
    name: str


@dataclass(frozen=True)
class Index(Expr):
    """Subscript access: ``target[key]``."""

    target: Expr
    key: Expr


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operation: ``-x`` or ``not x``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operation with C-like precedence."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A call: ``callee(arg, ...)``; callee may be a Name or Attribute."""

    callee: Expr
    arguments: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class ListLiteral(Expr):
    """A list display: ``[a, b, c]``."""

    items: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class DictLiteral(Expr):
    """A dict display: ``{key: value, ...}`` (keys are expressions)."""

    items: Tuple[Tuple[Expr, Expr], ...] = ()


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Assign(Stmt):
    """Assignment to a name, attribute or index target."""

    target: Expr
    value: Expr


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """An expression evaluated for effect (typically a call)."""

    expression: Expr


@dataclass(frozen=True)
class If(Stmt):
    """Conditional with optional else branch (elif chains nest here)."""

    condition: Expr
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class While(Stmt):
    """Pre-tested loop."""

    condition: Expr
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class For(Stmt):
    """Iteration over a sequence: ``for v in expr { ... }``."""

    variable: str
    iterable: Expr
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class Return(Stmt):
    """Return from the enclosing operation (value optional)."""

    value: Optional[Expr] = None


@dataclass(frozen=True)
class Break(Stmt):
    """Exit the innermost loop."""


@dataclass(frozen=True)
class Continue(Stmt):
    """Jump to the next iteration of the innermost loop."""


@dataclass(frozen=True)
class Send(Stmt):
    """xUML signal send: ``send Name(k=v, ...) to target;``

    ``target`` is optional (broadcast / environment-directed send).
    """

    signal: str
    arguments: Tuple[Tuple[str, Expr], ...] = ()
    target: Optional[Expr] = None


@dataclass(frozen=True)
class Program(Node):
    """A sequence of statements (an ASL method body or effect)."""

    body: Tuple[Stmt, ...] = ()


# ---------------------------------------------------------------------------
# unparser — source text from an AST (used for round-trip tests and
# as the base of the code generators' expression translation)
# ---------------------------------------------------------------------------

_PRECEDENCE = {
    "or": 1, "and": 2,
    "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3, "in": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5, "%": 5,
}


def unparse_expression(expr: Expr) -> str:
    """Render an expression back to canonical ASL source."""
    return _render(expr, 0)


def _render(expr: Expr, parent_precedence: int) -> str:
    if isinstance(expr, Literal):
        value = expr.value
        if value is None:
            return "null"
        if value is True:
            return "true"
        if value is False:
            return "false"
        if isinstance(value, str):
            escaped = value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return repr(value)
    if isinstance(expr, Name):
        return expr.identifier
    if isinstance(expr, Attribute):
        return f"{_render(expr.target, 9)}.{expr.name}"
    if isinstance(expr, Index):
        return f"{_render(expr.target, 9)}[{_render(expr.key, 0)}]"
    if isinstance(expr, Call):
        args = ", ".join(_render(a, 0) for a in expr.arguments)
        return f"{_render(expr.callee, 9)}({args})"
    if isinstance(expr, ListLiteral):
        return "[" + ", ".join(_render(i, 0) for i in expr.items) + "]"
    if isinstance(expr, DictLiteral):
        pairs = ", ".join(f"{_render(k, 0)}: {_render(v, 0)}"
                          for k, v in expr.items)
        return "{" + pairs + "}"
    if isinstance(expr, Unary):
        operand = _render(expr.operand, 8)
        text = f"{expr.op} {operand}" if expr.op == "not" else f"{expr.op}{operand}"
        return f"({text})" if parent_precedence > 7 else text
    if isinstance(expr, Binary):
        precedence = _PRECEDENCE[expr.op]
        # comparisons are non-associative in the grammar: parenthesize
        # comparison operands of comparisons on both sides
        left_precedence = precedence + 1 if precedence == 3 else precedence
        left = _render(expr.left, left_precedence)
        right = _render(expr.right, precedence + 1)  # left-assoc
        text = f"{left} {expr.op} {right}"
        return f"({text})" if precedence < parent_precedence else text
    raise TypeError(f"cannot unparse {type(expr).__name__}")


def unparse(node: Node, indent: int = 0) -> str:
    """Render a program/statement back to canonical ASL source."""
    pad = "    " * indent
    if isinstance(node, Program):
        return "\n".join(unparse(s, indent) for s in node.body)
    if isinstance(node, Assign):
        return f"{pad}{unparse_expression(node.target)} = " \
               f"{unparse_expression(node.value)};"
    if isinstance(node, ExprStmt):
        return f"{pad}{unparse_expression(node.expression)};"
    if isinstance(node, Return):
        if node.value is None:
            return f"{pad}return;"
        return f"{pad}return {unparse_expression(node.value)};"
    if isinstance(node, Break):
        return f"{pad}break;"
    if isinstance(node, Continue):
        return f"{pad}continue;"
    if isinstance(node, Send):
        args = ", ".join(f"{k}={unparse_expression(v)}"
                         for k, v in node.arguments)
        text = f"{pad}send {node.signal}({args})"
        if node.target is not None:
            text += f" to {unparse_expression(node.target)}"
        return text + ";"
    if isinstance(node, If):
        text = (f"{pad}if ({unparse_expression(node.condition)}) {{\n"
                + "\n".join(unparse(s, indent + 1) for s in node.then_body)
                + f"\n{pad}}}")
        if node.else_body:
            text += (" else {\n"
                     + "\n".join(unparse(s, indent + 1) for s in node.else_body)
                     + f"\n{pad}}}")
        return text
    if isinstance(node, While):
        return (f"{pad}while ({unparse_expression(node.condition)}) {{\n"
                + "\n".join(unparse(s, indent + 1) for s in node.body)
                + f"\n{pad}}}")
    if isinstance(node, For):
        return (f"{pad}for {node.variable} in "
                f"{unparse_expression(node.iterable)} {{\n"
                + "\n".join(unparse(s, indent + 1) for s in node.body)
                + f"\n{pad}}}")
    raise TypeError(f"cannot unparse {type(node).__name__}")
