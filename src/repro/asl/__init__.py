"""ASL — the Action Specification Language (subsystem S6).

The paper: ASL "describes notation and semantics for single actions
like operation calls and assignments in UML models and thus closes the
last gap to complete system specification".  This package provides that
action language for the library: a lexer, a recursive-descent parser
producing frozen dataclass ASTs, an unparser (round-trip capable), and
a tree-walking interpreter with pluggable operation-call and
signal-send hooks.

ASL source appears in: operation bodies (``Operation.set_body``), state
machine guards/effects/entry/exit actions, activity node behaviors, and
opaque expressions — and the code generators translate the same ASTs
into VHDL/Verilog/SystemC/Python.
"""

from .ast_nodes import (
    Assign,
    Attribute,
    Binary,
    Break,
    Call,
    Continue,
    DictLiteral,
    Expr,
    ExprStmt,
    For,
    If,
    Index,
    ListLiteral,
    Literal,
    Name,
    Node,
    Program,
    Return,
    Send,
    Stmt,
    Unary,
    While,
    unparse,
    unparse_expression,
)
from .lexer import KEYWORDS, Token, tokenize
from .parser import parse, parse_expression
from .interpreter import (
    Interpreter,
    SentSignal,
    clear_caches,
    evaluate,
    execute,
    run,
)

__all__ = [
    "Assign", "Attribute", "Binary", "Break", "Call", "Continue", "Expr",
    "DictLiteral", "ExprStmt", "For", "If", "Index", "ListLiteral", "Literal", "Name",
    "Node", "Program", "Return", "Send", "Stmt", "Unary", "While",
    "unparse", "unparse_expression",
    "KEYWORDS", "Token", "tokenize",
    "parse", "parse_expression",
    "Interpreter", "SentSignal", "clear_caches", "evaluate", "execute",
    "run",
]
