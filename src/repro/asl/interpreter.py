"""Tree-walking interpreter for ASL.

The interpreter executes against a flat variable *environment* (a
dict), matching the xUML picture where actions read and write the
owning object's attributes.  Two extension points connect ASL to the
rest of the library:

* ``call_handler(name, args)`` resolves operation calls that are not
  built-ins — the xUML runtime plugs class operations in here.
* ``signal_sink(signal, arguments, target)`` receives ``send``
  statements — the state machine / simulation runtimes route these to
  event queues.

Expression caching: parsing dominates evaluation cost for the short
guard/effect snippets state machines run thousands of times, so parsed
programs are memoized per source text (bounded LRU).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import AslRuntimeError
from .ast_nodes import (
    Assign,
    Attribute,
    Binary,
    Break,
    Call,
    Continue,
    DictLiteral,
    Expr,
    ExprStmt,
    For,
    If,
    Index,
    ListLiteral,
    Literal,
    Name,
    Program,
    Return,
    Send,
    Stmt,
    Unary,
    While,
)
from .parser import parse, parse_expression

_MAX_CACHED_PROGRAMS = 4096
_program_cache: "OrderedDict[str, Program]" = OrderedDict()
_expression_cache: "OrderedDict[str, Expr]" = OrderedDict()


def _cached(cache: OrderedDict, key: str, build: Callable[[str], Any]) -> Any:
    hit = cache.get(key)
    if hit is not None:
        cache.move_to_end(key)
        return hit
    built = build(key)
    cache[key] = built
    if len(cache) > _MAX_CACHED_PROGRAMS:
        cache.popitem(last=False)
    return built


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Any):
        self.value = value


class SentSignal:
    """Record of a ``send`` executed by a program."""

    __slots__ = ("signal", "arguments", "target")

    def __init__(self, signal: str, arguments: Dict[str, Any], target: Any):
        self.signal = signal
        self.arguments = arguments
        self.target = target

    def __repr__(self) -> str:
        return f"<SentSignal {self.signal} {self.arguments!r}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SentSignal):
            return NotImplemented
        return (self.signal, self.arguments, self.target) == \
               (other.signal, other.arguments, other.target)


def _default_builtins() -> Dict[str, Callable]:
    return {
        "abs": abs,
        "min": min,
        "max": max,
        "len": len,
        "int": int,
        "float": float,
        "str": str,
        "bool": bool,
        "range": lambda *args: list(range(*args)),
        "append": lambda seq, item: (seq.append(item), seq)[1],
        "pop": lambda seq: seq.pop(0),
        "contains": lambda seq, item: item in seq,
        "sum": sum,
        "sorted": sorted,
    }


class Interpreter:
    """Executes ASL programs against an environment dict."""

    def __init__(self, environment: Optional[Dict[str, Any]] = None,
                 call_handler: Optional[Callable[[str, List[Any]], Any]] = None,
                 signal_sink: Optional[Callable[[SentSignal], None]] = None,
                 max_steps: int = 1_000_000):
        self.environment: Dict[str, Any] = environment if environment is not None else {}
        self.call_handler = call_handler
        self.signal_sink = signal_sink
        self.sent_signals: List[SentSignal] = []
        self.output: List[str] = []
        self.max_steps = max_steps
        self._steps = 0
        self._builtins = _default_builtins()
        self._builtins["print"] = self._print

    def _print(self, *args: Any) -> None:
        self.output.append(" ".join(str(a) for a in args))

    # -- program execution -----------------------------------------------

    def execute(self, source: str) -> Any:
        """Parse (cached) and run statements; returns the ``return`` value."""
        program = _cached(_program_cache, source, parse)
        return self.run_program(program)

    def run_program(self, program: Program) -> Any:
        """Run an already-parsed program; returns the ``return`` value."""
        try:
            for statement in program.body:
                self._exec(statement)
        except _ReturnSignal as ret:
            return ret.value
        except (_BreakSignal, _ContinueSignal):
            raise AslRuntimeError("break/continue outside a loop")
        return None

    def evaluate(self, source: str) -> Any:
        """Parse (cached) and evaluate a single expression."""
        expression = _cached(_expression_cache, source, parse_expression)
        return self._eval(expression)

    # -- statements ------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise AslRuntimeError(
                f"execution exceeded {self.max_steps} steps (runaway loop?)"
            )

    def _exec(self, statement: Stmt) -> None:
        self._tick()
        if isinstance(statement, Assign):
            self._assign(statement.target, self._eval(statement.value))
        elif isinstance(statement, ExprStmt):
            self._eval(statement.expression)
        elif isinstance(statement, If):
            branch = statement.then_body if self._truthy(
                self._eval(statement.condition)) else statement.else_body
            for nested in branch:
                self._exec(nested)
        elif isinstance(statement, While):
            while self._truthy(self._eval(statement.condition)):
                try:
                    for nested in statement.body:
                        self._exec(nested)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(statement, For):
            iterable = self._eval(statement.iterable)
            try:
                iterator = iter(iterable)
            except TypeError:
                raise AslRuntimeError(
                    f"for-loop target is not iterable: {iterable!r}")
            for item in iterator:
                self.environment[statement.variable] = item
                try:
                    for nested in statement.body:
                        self._exec(nested)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(statement, Return):
            value = self._eval(statement.value) if statement.value is not None \
                else None
            raise _ReturnSignal(value)
        elif isinstance(statement, Break):
            raise _BreakSignal()
        elif isinstance(statement, Continue):
            raise _ContinueSignal()
        elif isinstance(statement, Send):
            arguments = {key: self._eval(value)
                         for key, value in statement.arguments}
            target = self._eval(statement.target) \
                if statement.target is not None else None
            sent = SentSignal(statement.signal, arguments, target)
            self.sent_signals.append(sent)
            if self.signal_sink is not None:
                self.signal_sink(sent)
        else:
            raise AslRuntimeError(
                f"unknown statement {type(statement).__name__}")

    def _assign(self, target: Expr, value: Any) -> None:
        if isinstance(target, Name):
            self.environment[target.identifier] = value
        elif isinstance(target, Attribute):
            obj = self._eval(target.target)
            if isinstance(obj, dict):
                obj[target.name] = value
            else:
                setattr(obj, target.name, value)
        elif isinstance(target, Index):
            obj = self._eval(target.target)
            obj[self._eval(target.key)] = value
        else:
            raise AslRuntimeError(
                f"invalid assignment target {type(target).__name__}")

    # -- expressions -------------------------------------------------------

    def _eval(self, expression: Expr) -> Any:
        self._tick()
        if isinstance(expression, Literal):
            return expression.value
        if isinstance(expression, Name):
            name = expression.identifier
            if name in self.environment:
                return self.environment[name]
            if name in self._builtins:
                return self._builtins[name]
            raise AslRuntimeError(f"undefined variable {name!r}")
        if isinstance(expression, Attribute):
            obj = self._eval(expression.target)
            if isinstance(obj, dict):
                if expression.name in obj:
                    return obj[expression.name]
                raise AslRuntimeError(
                    f"object has no attribute {expression.name!r}")
            try:
                return getattr(obj, expression.name)
            except AttributeError as exc:
                raise AslRuntimeError(str(exc))
        if isinstance(expression, Index):
            obj = self._eval(expression.target)
            key = self._eval(expression.key)
            try:
                return obj[key]
            except (KeyError, IndexError, TypeError) as exc:
                raise AslRuntimeError(f"bad index {key!r}: {exc}")
        if isinstance(expression, ListLiteral):
            return [self._eval(item) for item in expression.items]
        if isinstance(expression, DictLiteral):
            return {self._eval(key): self._eval(value)
                    for key, value in expression.items}
        if isinstance(expression, Unary):
            operand = self._eval(expression.operand)
            if expression.op == "-":
                return -operand
            if expression.op == "not":
                return not self._truthy(operand)
            raise AslRuntimeError(f"unknown unary operator {expression.op!r}")
        if isinstance(expression, Binary):
            return self._binary(expression)
        if isinstance(expression, Call):
            return self._call(expression)
        raise AslRuntimeError(
            f"unknown expression {type(expression).__name__}")

    def _binary(self, expression: Binary) -> Any:
        op = expression.op
        if op == "and":
            left = self._eval(expression.left)
            return self._eval(expression.right) if self._truthy(left) else left
        if op == "or":
            left = self._eval(expression.left)
            return left if self._truthy(left) else self._eval(expression.right)
        left = self._eval(expression.left)
        right = self._eval(expression.right)
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if isinstance(left, int) and isinstance(right, int):
                    return left // right  # ASL '/' is integer division on ints
                return left / right
            if op == "%":
                return left % right
            if op == "==":
                return left == right
            if op == "!=":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
            if op == "in":
                return left in right
        except (TypeError, ZeroDivisionError) as exc:
            raise AslRuntimeError(f"operator {op!r} failed: {exc}")
        raise AslRuntimeError(f"unknown operator {op!r}")

    def _call(self, expression: Call) -> Any:
        arguments = [self._eval(arg) for arg in expression.arguments]
        callee = expression.callee
        if isinstance(callee, Name):
            name = callee.identifier
            if name in self.environment and callable(self.environment[name]):
                return self.environment[name](*arguments)
            if name in self._builtins:
                return self._builtins[name](*arguments)
            if self.call_handler is not None:
                return self.call_handler(name, arguments)
            raise AslRuntimeError(f"unknown operation {name!r}")
        # method-style call: evaluate target, then dispatch
        if isinstance(callee, Attribute):
            target = self._eval(callee.target)
            if isinstance(target, dict) and callable(target.get(callee.name)):
                return target[callee.name](*arguments)
            method = getattr(target, callee.name, None)
            if callable(method):
                return method(*arguments)
            if self.call_handler is not None:
                return self.call_handler(callee.name, [target] + arguments)
            raise AslRuntimeError(
                f"no such method {callee.name!r} on {type(target).__name__}")
        func = self._eval(callee)
        if callable(func):
            return func(*arguments)
        raise AslRuntimeError(f"{func!r} is not callable")

    @staticmethod
    def _truthy(value: Any) -> bool:
        return bool(value)


# ---------------------------------------------------------------------------
# module-level convenience API
# ---------------------------------------------------------------------------

def evaluate(source: str, environment: Optional[Dict[str, Any]] = None) -> Any:
    """Evaluate one ASL expression against ``environment``."""
    return Interpreter(dict(environment or {})).evaluate(source)


def execute(source: str, environment: Optional[Dict[str, Any]] = None,
            call_handler: Optional[Callable[[str, List[Any]], Any]] = None,
            signal_sink: Optional[Callable[[SentSignal], None]] = None,
            ) -> Dict[str, Any]:
    """Run ASL statements; returns the (mutated) environment."""
    interpreter = Interpreter(
        environment if environment is not None else {},
        call_handler=call_handler, signal_sink=signal_sink)
    interpreter.execute(source)
    return interpreter.environment


def run(source: str, environment: Optional[Dict[str, Any]] = None,
        **kwargs: Any) -> Any:
    """Run ASL statements; returns the program's ``return`` value."""
    interpreter = Interpreter(
        environment if environment is not None else {}, **kwargs)
    return interpreter.execute(source)


def clear_caches() -> None:
    """Drop the memoized parse results (mainly for benchmarks)."""
    _program_cache.clear()
    _expression_cache.clear()
