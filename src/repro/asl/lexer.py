"""Tokenizer for the Action Specification Language.

A conventional hand-written scanner: single pass, tracks line/column
for error messages, supports ``//`` line comments and ``/* */`` block
comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import AslSyntaxError

KEYWORDS = frozenset({
    "if", "else", "elif", "while", "for", "in", "return", "break",
    "continue", "send", "to", "and", "or", "not", "true", "false", "null",
    "var",
})

#: Multi-character operators, longest first so scanning is greedy.
_TWO_CHAR_OPS = ("==", "!=", "<=", ">=")
_ONE_CHAR_OPS = "+-*/%<>=()[]{},.;:"


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (1-based)."""

    kind: str       # 'int' | 'float' | 'string' | 'name' | 'keyword' | 'op' | 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> List[Token]:
    """Scan ASL source into a token list (ending with an ``eof`` token)."""
    tokens: List[Token] = []
    index, line, column = 0, 1, 1
    length = len(source)

    def error(message: str) -> AslSyntaxError:
        return AslSyntaxError(message, line, column)

    while index < length:
        char = source[index]

        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue

        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                raise error("unterminated block comment")
            for skipped in source[index:end + 2]:
                if skipped == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
            index = end + 2
            continue

        start_line, start_column = line, column

        if char.isdigit():
            end = index
            while end < length and source[end].isdigit():
                end += 1
            is_float = False
            if end < length and source[end] == "." and end + 1 < length \
                    and source[end + 1].isdigit():
                is_float = True
                end += 1
                while end < length and source[end].isdigit():
                    end += 1
            text = source[index:end]
            tokens.append(Token("float" if is_float else "int", text,
                                start_line, start_column))
            column += end - index
            index = end
            continue

        if char.isalpha() or char == "_":
            end = index
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[index:end]
            kind = "keyword" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, start_line, start_column))
            column += end - index
            index = end
            continue

        if char == '"':
            end = index + 1
            parts: List[str] = []
            while True:
                if end >= length:
                    raise error("unterminated string literal")
                current = source[end]
                if current == "\n":
                    raise error("newline inside string literal")
                if current == "\\":
                    if end + 1 >= length:
                        raise error("dangling escape in string literal")
                    escape = source[end + 1]
                    mapped = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(escape)
                    if mapped is None:
                        raise error(f"unknown escape \\{escape}")
                    parts.append(mapped)
                    end += 2
                    continue
                if current == '"':
                    end += 1
                    break
                parts.append(current)
                end += 1
            tokens.append(Token("string", "".join(parts),
                                start_line, start_column))
            column += end - index
            index = end
            continue

        matched_two = next((op for op in _TWO_CHAR_OPS
                            if source.startswith(op, index)), None)
        if matched_two is not None:
            tokens.append(Token("op", matched_two, start_line, start_column))
            index += 2
            column += 2
            continue

        if char in _ONE_CHAR_OPS:
            tokens.append(Token("op", char, start_line, start_column))
            index += 1
            column += 1
            continue

        raise error(f"unexpected character {char!r}")

    tokens.append(Token("eof", "", line, column))
    return tokens
