"""Recursive-descent parser for the Action Specification Language.

Grammar (EBNF, ``{}`` = repetition, ``[]`` = optional)::

    program     = { statement } ;
    statement   = assign | exprstmt | if | while | for
                | return | break | continue | send | "var" assign ;
    assign      = postfix "=" expression ";" ;
    if          = "if" "(" expression ")" block
                  { "elif" "(" expression ")" block }
                  [ "else" block ] ;
    while       = "while" "(" expression ")" block ;
    for         = "for" NAME "in" expression block ;
    send        = "send" NAME "(" [ NAME "=" expression
                  { "," NAME "=" expression } ] ")" [ "to" expression ] ";" ;
    block       = "{" { statement } "}" ;
    expression  = or ;  or = and {"or" and} ; and = cmp {"and" cmp} ;
    cmp         = add [ ("=="|"!="|"<"|"<="|">"|">="|"in") add ] ;
    add         = mul { ("+"|"-") mul } ;  mul = unary { ("*"|"/"|"%") unary } ;
    unary       = ("-"|"not") unary | postfix ;
    postfix     = primary { "." NAME | "[" expression "]"
                          | "(" [ expression {"," expression} ] ")" } ;
    primary     = INT | FLOAT | STRING | "true" | "false" | "null"
                | NAME | "(" expression ")" | "[" [ expr {"," expr} ] "]" ;
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import AslSyntaxError
from .ast_nodes import (
    Assign,
    Attribute,
    Binary,
    Break,
    Call,
    Continue,
    DictLiteral,
    Expr,
    ExprStmt,
    For,
    If,
    Index,
    ListLiteral,
    Literal,
    Name,
    Program,
    Return,
    Send,
    Stmt,
    Unary,
    While,
)
from .lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def error(self, message: str) -> AslSyntaxError:
        token = self.current
        return AslSyntaxError(message, token.line, token.column)

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            wanted = text or kind
            raise self.error(
                f"expected {wanted!r}, found {self.current.text or 'end of input'!r}"
            )
        return self.advance()

    # -- statements ---------------------------------------------------------

    def parse_program(self) -> Program:
        body: List[Stmt] = []
        while not self.check("eof"):
            body.append(self.parse_statement())
        return Program(tuple(body))

    def parse_block(self) -> Tuple[Stmt, ...]:
        self.expect("op", "{")
        body: List[Stmt] = []
        while not self.check("op", "}"):
            if self.check("eof"):
                raise self.error("unterminated block: missing '}'")
            body.append(self.parse_statement())
        self.expect("op", "}")
        return tuple(body)

    def parse_statement(self) -> Stmt:
        if self.accept("keyword", "var"):
            return self._finish_assignment(self.parse_postfix())
        if self.check("keyword", "if"):
            return self.parse_if()
        if self.check("keyword", "while"):
            return self.parse_while()
        if self.check("keyword", "for"):
            return self.parse_for()
        if self.accept("keyword", "return"):
            if self.accept("op", ";"):
                return Return(None)
            value = self.parse_expression()
            self.expect("op", ";")
            return Return(value)
        if self.accept("keyword", "break"):
            self.expect("op", ";")
            return Break()
        if self.accept("keyword", "continue"):
            self.expect("op", ";")
            return Continue()
        if self.check("keyword", "send"):
            return self.parse_send()
        # assignment or expression statement
        expression = self.parse_expression()
        if self.check("op", "="):
            return self._finish_assignment(expression)
        self.expect("op", ";")
        return ExprStmt(expression)

    def _finish_assignment(self, target: Expr) -> Assign:
        if not isinstance(target, (Name, Attribute, Index)):
            raise self.error("invalid assignment target")
        self.expect("op", "=")
        value = self.parse_expression()
        self.expect("op", ";")
        return Assign(target, value)

    def parse_if(self) -> If:
        self.expect("keyword", "if")
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        then_body = self.parse_block()
        else_body: Tuple[Stmt, ...] = ()
        if self.check("keyword", "elif"):
            # desugar: elif chain becomes a nested If in the else branch
            self.tokens[self.position] = Token(
                "keyword", "if", self.current.line, self.current.column)
            else_body = (self.parse_if(),)
        elif self.accept("keyword", "else"):
            else_body = self.parse_block()
        return If(condition, then_body, else_body)

    def parse_while(self) -> While:
        self.expect("keyword", "while")
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        return While(condition, self.parse_block())

    def parse_for(self) -> For:
        self.expect("keyword", "for")
        variable = self.expect("name").text
        self.expect("keyword", "in")
        iterable = self.parse_expression()
        return For(variable, iterable, self.parse_block())

    def parse_send(self) -> Send:
        self.expect("keyword", "send")
        signal = self.expect("name").text
        self.expect("op", "(")
        arguments: List[Tuple[str, Expr]] = []
        if not self.check("op", ")"):
            while True:
                key = self.expect("name").text
                self.expect("op", "=")
                arguments.append((key, self.parse_expression()))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        target: Optional[Expr] = None
        if self.accept("keyword", "to"):
            target = self.parse_expression()
        self.expect("op", ";")
        return Send(signal, tuple(arguments), target)

    # -- expressions ---------------------------------------------------------

    def parse_expression(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept("keyword", "or"):
            left = Binary("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_comparison()
        while self.accept("keyword", "and"):
            left = Binary("and", left, self.parse_comparison())
        return left

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if self.check("op", op):
                self.advance()
                return Binary(op, left, self.parse_additive())
        if self.accept("keyword", "in"):
            return Binary("in", left, self.parse_additive())
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.check("op", "+") or self.check("op", "-"):
            op = self.advance().text
            left = Binary(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.check("op", "*") or self.check("op", "/") \
                or self.check("op", "%"):
            op = self.advance().text
            left = Binary(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self.accept("op", "-"):
            return Unary("-", self.parse_unary())
        if self.accept("keyword", "not"):
            return Unary("not", self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expression = self.parse_primary()
        while True:
            if self.accept("op", "."):
                name = self.expect("name").text
                expression = Attribute(expression, name)
            elif self.accept("op", "["):
                key = self.parse_expression()
                self.expect("op", "]")
                expression = Index(expression, key)
            elif self.accept("op", "("):
                arguments: List[Expr] = []
                if not self.check("op", ")"):
                    while True:
                        arguments.append(self.parse_expression())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                expression = Call(expression, tuple(arguments))
            else:
                return expression

    def parse_primary(self) -> Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return Literal(int(token.text))
        if token.kind == "float":
            self.advance()
            return Literal(float(token.text))
        if token.kind == "string":
            self.advance()
            return Literal(token.text)
        if self.accept("keyword", "true"):
            return Literal(True)
        if self.accept("keyword", "false"):
            return Literal(False)
        if self.accept("keyword", "null"):
            return Literal(None)
        if token.kind == "name":
            self.advance()
            return Name(token.text)
        if self.accept("op", "("):
            inner = self.parse_expression()
            self.expect("op", ")")
            return inner
        if self.accept("op", "["):
            items: List[Expr] = []
            if not self.check("op", "]"):
                while True:
                    items.append(self.parse_expression())
                    if not self.accept("op", ","):
                        break
            self.expect("op", "]")
            return ListLiteral(tuple(items))
        if self.accept("op", "{"):
            pairs: List = []
            if not self.check("op", "}"):
                while True:
                    key = self.parse_expression()
                    self.expect("op", ":")
                    pairs.append((key, self.parse_expression()))
                    if not self.accept("op", ","):
                        break
            self.expect("op", "}")
            return DictLiteral(tuple(pairs))
        raise self.error(f"unexpected token {token.text or 'end of input'!r}")


def parse(source: str) -> Program:
    """Parse ASL statements into a :class:`Program`."""
    parser = _Parser(tokenize(source))
    return parser.parse_program()


def parse_expression(source: str) -> Expr:
    """Parse a single ASL expression (must consume all input)."""
    parser = _Parser(tokenize(source))
    expression = parser.parse_expression()
    parser.expect("eof")
    return expression
