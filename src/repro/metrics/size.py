"""Model size and complexity metrics.

These metrics quantify the designs the benchmarks generate and feed
the productivity-gap analysis (experiment D1): how much specification
does a UML model carry, and how complex is its behavior?
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .. import activities as ac
from .. import metamodel as mm
from .. import statemachines as st

#: Weights approximating "lines a designer would write" per element
#: kind — the basis of the model-LoC-equivalent measure.  Calibrated
#: against hand-written declarations (a class header ~2 lines, an
#: attribute ~1, a transition ~1, ...).
LOC_WEIGHTS: Dict[str, float] = {
    "Model": 1, "Package": 1, "UmlClass": 2, "Component": 2,
    "Interface": 2, "Signal": 1, "Enumeration": 1, "EnumerationLiteral": 1,
    "DataType": 1, "PrimitiveType": 1,
    "Property": 1, "Port": 1, "Operation": 2, "Parameter": 0.5,
    "Reception": 1, "Generalization": 1, "InterfaceRealization": 1,
    "Dependency": 0.5, "Association": 1, "Connector": 1,
    "ConnectorEnd": 0, "InstanceSpecification": 1, "Slot": 1, "Link": 1,
    "Actor": 1, "UseCase": 1, "Include": 0.5, "Extend": 0.5,
    "Artifact": 1, "Node": 1, "Device": 1, "ExecutionEnvironment": 1,
    "Deployment": 1, "Manifestation": 0.5, "CommunicationPath": 1,
    "StateMachine": 2, "Region": 1, "State": 1, "FinalState": 1,
    "Pseudostate": 1, "Transition": 1,
    "Activity": 2, "Action": 1, "SendSignalAction": 1,
    "AcceptEventAction": 1, "InitialNode": 0.5, "ActivityFinalNode": 0.5,
    "FlowFinalNode": 0.5, "ForkNode": 0.5, "JoinNode": 0.5,
    "DecisionNode": 0.5, "MergeNode": 0.5, "ControlFlow": 0.5,
    "ObjectFlow": 0.5, "InputPin": 0.5, "OutputPin": 0.5,
    "CentralBufferNode": 1, "ActivityParameterNode": 1, "ObjectNode": 1,
    "Interaction": 2, "Lifeline": 1, "Message": 1,
    "CombinedFragment": 1, "InteractionOperand": 1,
}

#: Default weight for element kinds not in the table.
DEFAULT_LOC_WEIGHT = 0.5


def element_counts(scope: mm.Element) -> Dict[str, int]:
    """Number of elements per concrete metaclass under ``scope``."""
    counts: Dict[str, int] = {}
    for element in scope.all_owned():
        key = type(element).__name__
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))


def model_size(scope: mm.Element) -> int:
    """Total owned element count."""
    return sum(1 for _ in scope.all_owned())


def model_loc_equivalent(scope: mm.Element) -> float:
    """The model's size in designer-line equivalents (see LOC_WEIGHTS).

    ASL bodies/effects count their actual line counts on top of the
    structural weights.
    """
    total = 0.0
    for element in scope.all_owned():
        total += LOC_WEIGHTS.get(type(element).__name__, DEFAULT_LOC_WEIGHT)
        for attr in ("entry", "exit", "do_activity", "effect", "guard",
                     "behavior"):
            value = getattr(element, attr, None)
            if isinstance(value, str):
                total += len([line for line in value.splitlines()
                              if line.strip()])
        if isinstance(element, mm.OpaqueExpression):
            total += len([line for line in element.body.splitlines()
                          if line.strip()])
    return total


def state_machine_cyclomatic(machine: st.StateMachine) -> int:
    """McCabe-style complexity: E - N + 2 per top region (floored at 1)."""
    transitions = len(machine.all_transitions())
    vertices = len(machine.all_vertices())
    regions = max(len(machine.regions), 1)
    return max(transitions - vertices + 2 * regions, 1)


def activity_branching(activity: ac.Activity) -> float:
    """Mean out-degree of decision/fork nodes (0 for linear activities)."""
    branch_nodes = [n for n in activity.nodes
                    if isinstance(n, (ac.DecisionNode, ac.ForkNode))]
    if not branch_nodes:
        return 0.0
    return sum(len(n.outgoing) for n in branch_nodes) / len(branch_nodes)


def inheritance_depth(classifier: mm.Classifier) -> int:
    """Depth of the inheritance tree above this classifier."""
    generals = classifier.generals
    if not generals:
        return 0
    return 1 + max(inheritance_depth(g) for g in generals)


def coupling(classifier: mm.Classifier) -> int:
    """Efferent coupling: distinct classifiers this one refers to."""
    referenced = set()
    for prop in classifier.attributes:
        if isinstance(prop.type, mm.Classifier):
            referenced.add(id(prop.type))
    for operation in classifier.operations:
        for parameter in operation.parameters:
            if isinstance(parameter.type, mm.Classifier):
                referenced.add(id(parameter.type))
    for general in classifier.generals:
        referenced.add(id(general))
    for realization in classifier.interface_realizations:
        referenced.add(id(realization.contract))
    for dependency in classifier.dependencies:
        if isinstance(dependency.supplier, mm.Classifier):
            referenced.add(id(dependency.supplier))
    referenced.discard(id(classifier))
    return len(referenced)


def summary(scope: mm.Element) -> Dict[str, float]:
    """A metric bundle for reports: sizes, LoC-equivalent, complexity."""
    machines = list(scope.descendants_of_type(st.StateMachine))
    activities = list(scope.descendants_of_type(ac.Activity))
    classifiers = list(scope.descendants_of_type(mm.Classifier))
    return {
        "elements": float(model_size(scope)),
        "model_loc": model_loc_equivalent(scope),
        "classifiers": float(len(classifiers)),
        "state_machines": float(len(machines)),
        "activities": float(len(activities)),
        "mean_cyclomatic": (
            sum(state_machine_cyclomatic(m) for m in machines)
            / len(machines) if machines else 0.0),
        "mean_branching": (
            sum(activity_branching(a) for a in activities)
            / len(activities) if activities else 0.0),
        "max_inheritance_depth": float(
            max((inheritance_depth(c) for c in classifiers), default=0)),
        "mean_coupling": (
            sum(coupling(c) for c in classifiers) / len(classifiers)
            if classifiers else 0.0),
    }
