"""Design metrics (subsystem S13): size, complexity, productivity, reuse."""

from .size import (
    DEFAULT_LOC_WEIGHT,
    LOC_WEIGHTS,
    activity_branching,
    coupling,
    element_counts,
    inheritance_depth,
    model_loc_equivalent,
    model_size,
    state_machine_cyclomatic,
    summary,
)
from .productivity import (
    AbstractionReport,
    ReuseReport,
    abstraction_report,
    generated_loc,
    productivity_index,
    reuse_report,
)

__all__ = [
    "DEFAULT_LOC_WEIGHT", "LOC_WEIGHTS", "activity_branching", "coupling",
    "element_counts", "inheritance_depth", "model_loc_equivalent",
    "model_size", "state_machine_cyclomatic", "summary",
    "AbstractionReport", "ReuseReport", "abstraction_report",
    "generated_loc", "productivity_index", "reuse_report",
]
