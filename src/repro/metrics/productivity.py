"""Design-productivity metrics: abstraction gap and reuse ratio.

The paper opens with the *design productivity gap*: complexity grows
faster than design productivity.  The two levers it proposes —
abstraction (model once, generate much) and reuse (integrate existing
IP) — are quantified here and measured by experiments D1 and D9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from .. import metamodel as mm
from .size import model_loc_equivalent


def generated_loc(text: str) -> int:
    """Count non-blank, non-comment-only lines of generated code."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith(("--", "//", "#", "*", "/*")):
            continue
        count += 1
    return count


@dataclass(frozen=True)
class AbstractionReport:
    """The D1 measurement for one design point."""

    model_elements: int
    model_loc: float
    generated: Dict[str, int]  # backend name -> generated LoC

    @property
    def total_generated(self) -> int:
        """Sum of generated lines across backends."""
        return sum(self.generated.values())

    @property
    def expansion_factor(self) -> float:
        """Generated LoC per model-LoC-equivalent (the abstraction win)."""
        if self.model_loc <= 0:
            return 0.0
        return self.total_generated / self.model_loc


def abstraction_report(model: mm.Element,
                       generated_texts: Dict[str, str]) -> AbstractionReport:
    """Measure the abstraction gap for one model and its generated code."""
    return AbstractionReport(
        model_elements=sum(1 for _ in model.all_owned()),
        model_loc=model_loc_equivalent(model),
        generated={backend: generated_loc(text)
                   for backend, text in generated_texts.items()},
    )


@dataclass(frozen=True)
class ReuseReport:
    """The D9 measurement for one assembled system."""

    total_parts: int
    library_parts: int
    distinct_library_types: int

    @property
    def reuse_ratio(self) -> float:
        """Fraction of parts instantiated from the IP library."""
        if self.total_parts == 0:
            return 0.0
        return self.library_parts / self.total_parts


def reuse_report(system: mm.Component,
                 library: mm.Package) -> ReuseReport:
    """Measure IP reuse: which parts of ``system`` come from ``library``."""
    library_types = set(map(id, library.descendants_of_type(mm.Classifier)))
    total = 0
    reused = 0
    reused_types = set()
    for part in system.parts:
        total += 1
        if id(part.type) in library_types:
            reused += 1
            reused_types.add(id(part.type))
    return ReuseReport(total, reused, len(reused_types))


def productivity_index(model_loc: float, generated: float,
                       hours_per_model_line: float = 0.1,
                       hours_per_target_line: float = 0.25) -> float:
    """Estimated effort ratio: hand-written target vs modelled design.

    A value > 1 means modelling wins; the defaults encode the common
    observation that a reviewed line of RTL costs more than a reviewed
    model element.
    """
    modelled_cost = model_loc * hours_per_model_line
    handwritten_cost = generated * hours_per_target_line
    if modelled_cost <= 0:
        return 0.0
    return handwritten_cost / modelled_cost
