"""Deterministic element identifier generation.

UML tools assign every model element an ``xmi:id``.  For reproducible
tests, benchmarks and diffs we generate *deterministic* ids: a process-
wide counter combined with a short type tag, e.g. ``Class_17``.  XMI
import preserves the original ids from the file instead.

The counter can be reset (:func:`reset_ids`) so that test cases and
benchmarks produce identical ids on every run.
"""

from __future__ import annotations

import itertools
import threading

_lock = threading.Lock()
_counter = itertools.count(1)


def next_id(type_tag: str) -> str:
    """Return a fresh deterministic id such as ``"Class_42"``.

    ``type_tag`` is conventionally the element's class name; it keeps
    serialized models human-readable.
    """
    with _lock:
        return f"{type_tag}_{next(_counter)}"


def reset_ids(start: int = 1) -> None:
    """Restart the id counter (tests/benchmarks call this for determinism)."""
    global _counter
    with _lock:
        _counter = itertools.count(start)
