"""Semantic flattening of hierarchical state machines.

A classical EDA transformation: a hierarchical/orthogonal statechart is
*flattened* into a plain finite state machine whose states are the
reachable active configurations.  The flat machine trades memory for
dispatch speed — stepping it is a single dict lookup, which is what a
hardware implementation (one-hot or encoded FSM) would synthesize to.

Flattening here is *semantic*: we run the real
:class:`~repro.statemachines.runtime.StateMachineRuntime` over every
(configuration, event) pair, so entry/exit ordering, completion chains
and pseudostate cascades are honoured by construction.  Guards are
evaluated against the fixed ``context`` supplied at flattening time, so
the result is exact for machines whose guards do not depend on mutable
variables (e.g. the protocol controllers used in the benchmarks).
Machines with time or change triggers cannot be flattened statically
and are rejected.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import StateMachineError
from .events import ChangeEvent, TimeEvent
from .kernel import StateMachine
from .runtime import StateMachineRuntime

#: A configuration key: frozen set of active state ids + terminated flag.
ConfigKey = Tuple[FrozenSet[str], bool]


class FlatStateMachine:
    """The flattened (configuration-level) finite state machine.

    ``step`` is a dictionary lookup; unknown events leave the
    configuration unchanged (matching the UML rule that unmatched,
    non-deferred events are discarded).
    """

    def __init__(self, initial: str,
                 transitions: Dict[Tuple[str, str], str],
                 state_labels: Dict[str, Tuple[str, ...]],
                 alphabet: Tuple[str, ...]):
        self.initial = initial
        self.transitions = transitions
        self.state_labels = state_labels
        self.alphabet = alphabet
        self.current = initial

    @property
    def states(self) -> Tuple[str, ...]:
        """All configuration names, sorted."""
        return tuple(sorted(self.state_labels))

    def reset(self) -> "FlatStateMachine":
        """Return to the initial configuration (chainable)."""
        self.current = self.initial
        return self

    def step(self, event_name: str) -> str:
        """Process one event; returns the new configuration name."""
        self.current = self.transitions.get((self.current, event_name),
                                            self.current)
        return self.current

    def run(self, events: Sequence[str]) -> str:
        """Process a sequence of events; returns the final configuration."""
        current = self.current
        table = self.transitions
        for name in events:
            current = table.get((current, name), current)
        self.current = current
        return current

    def leaf_names(self) -> Tuple[str, ...]:
        """The active leaf state names of the current configuration."""
        return self.state_labels[self.current]

    def __repr__(self) -> str:
        return (f"<FlatStateMachine {len(self.state_labels)} configs, "
                f"{len(self.transitions)} edges>")


def _snapshot_key(runtime: StateMachineRuntime) -> ConfigKey:
    return (frozenset(s.xmi_id for s in runtime._active),
            runtime.is_terminated)


def _config_name(runtime: StateMachineRuntime) -> str:
    if runtime.is_terminated:
        return "<terminated>"
    leaves = runtime.active_leaf_names()
    return "+".join(leaves) if leaves else "<empty>"


def default_alphabet(machine: StateMachine) -> Tuple[str, ...]:
    """All signal/call trigger names appearing in the machine, sorted."""
    names = set()
    for transition in machine.all_transitions():
        for event in transition.triggers:
            if isinstance(event, (TimeEvent, ChangeEvent)):
                continue
            names.add(event.name)
    return tuple(sorted(names))


def flatten(machine: StateMachine,
            alphabet: Optional[Sequence[str]] = None,
            context: Optional[Dict[str, Any]] = None,
            max_configurations: int = 100_000) -> FlatStateMachine:
    """Flatten ``machine`` into a :class:`FlatStateMachine`.

    ``alphabet`` defaults to every signal/call trigger name in the
    machine.  ``context`` is the fixed variable environment used for
    guard evaluation during exploration.
    """
    for transition in machine.all_transitions():
        for event in transition.triggers:
            if isinstance(event, (TimeEvent, ChangeEvent)):
                raise StateMachineError(
                    "machines with time or change triggers cannot be "
                    "flattened statically"
                )
    event_names = tuple(alphabet) if alphabet is not None \
        else default_alphabet(machine)

    runtime = StateMachineRuntime(machine, dict(context or {})).start()
    initial_key = _snapshot_key(runtime)
    names: Dict[ConfigKey, str] = {initial_key: _config_name(runtime)}
    labels: Dict[str, Tuple[str, ...]] = {
        names[initial_key]: runtime.active_leaf_names()
    }
    # checkpoint each configuration once; exploration restores instead
    # of replaying event paths (O(configs x alphabet) total sends)
    snapshots: Dict[ConfigKey, dict] = {initial_key: runtime.snapshot()}
    transitions: Dict[Tuple[str, str], str] = {}
    frontier: List[ConfigKey] = [initial_key]
    explored = set()

    while frontier:
        key = frontier.pop(0)
        if key in explored:
            continue
        explored.add(key)
        if len(names) > max_configurations:
            raise StateMachineError(
                f"flattening exceeded {max_configurations} configurations"
            )
        for event_name in event_names:
            runtime.restore(snapshots[key])
            runtime.send(event_name)
            new_key = _snapshot_key(runtime)
            if new_key not in names:
                names[new_key] = _config_name(runtime)
                labels[names[new_key]] = runtime.active_leaf_names()
                snapshots[new_key] = runtime.snapshot()
                frontier.append(new_key)
            if new_key != key:
                transitions[(names[key], event_name)] = names[new_key]

    return FlatStateMachine(names[initial_key], transitions, labels,
                            event_names)
