"""Semantic flattening and dispatch-table compilation of state machines.

Two related fast paths live here:

1. **Static flattening** (:func:`flatten`): a hierarchical/orthogonal
   statechart is *flattened* into a plain finite state machine whose
   states are the reachable active configurations.  The flat machine
   trades memory for dispatch speed — stepping it is a single dict
   lookup, which is what a hardware implementation (one-hot or encoded
   FSM) would synthesize to.  Flattening is *semantic*: we run the real
   :class:`~repro.statemachines.runtime.StateMachineRuntime` over every
   (configuration, event) pair, so entry/exit ordering, completion
   chains and pseudostate cascades are honoured by construction.
   Guards are evaluated against the fixed ``context`` supplied at
   flattening time; machines with time or change triggers cannot be
   flattened statically and are rejected.

2. **Dispatch-table compilation** (:func:`compile_machine` /
   :class:`CompiledRuntime`): the cosimulation fast path.  A flat
   (single-region, simple-state) machine is compiled once into per-state
   dispatch tables whose guards and effects are *precompiled Python
   closures* — ASL source is transpiled via
   :mod:`repro.codegen.transpile` and ``compile()``d to code objects, so
   executing an action is one ``eval``/``exec`` of tiny bytecode instead
   of a tree walk through a freshly constructed interpreter.  Unlike
   :func:`flatten`, the compiled form keeps the live ``context`` and the
   runtime clock, so data-dependent guards and ``after(n)`` time
   triggers work exactly as in the interpreter.  Behaviour is
   bit-identical to :class:`StateMachineRuntime` on the supported subset
   (verified by lockstep equivalence tests); machines outside the subset
   are reported by :func:`compile_fallback_reason` and the caller falls
   back to the interpreter.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..asl import SentSignal
from ..errors import AslRuntimeError, ReproError, StateMachineError
from ..perf import PERF
from .events import ChangeEvent, EventKind, EventOccurrence, TimeEvent
from .kernel import (
    Pseudostate,
    PseudostateKind,
    State,
    StateMachine,
    Transition,
    TransitionKind,
)
from .runtime import ELSE_GUARD, StateMachineRuntime

#: A configuration key: frozen set of active state ids + terminated flag.
ConfigKey = Tuple[FrozenSet[str], bool]


class FlatStateMachine:
    """The flattened (configuration-level) finite state machine.

    ``step`` is a dictionary lookup; unknown events leave the
    configuration unchanged (matching the UML rule that unmatched,
    non-deferred events are discarded).
    """

    __slots__ = ("initial", "transitions", "state_labels", "alphabet",
                 "current")

    def __init__(self, initial: str,
                 transitions: Dict[Tuple[str, str], str],
                 state_labels: Dict[str, Tuple[str, ...]],
                 alphabet: Tuple[str, ...]):
        self.initial = initial
        self.transitions = transitions
        self.state_labels = state_labels
        self.alphabet = alphabet
        self.current = initial

    @property
    def states(self) -> Tuple[str, ...]:
        """All configuration names, sorted."""
        return tuple(sorted(self.state_labels))

    def reset(self) -> "FlatStateMachine":
        """Return to the initial configuration (chainable)."""
        self.current = self.initial
        return self

    def step(self, event_name: str) -> str:
        """Process one event; returns the new configuration name."""
        self.current = self.transitions.get((self.current, event_name),
                                            self.current)
        return self.current

    def run(self, events: Sequence[str]) -> str:
        """Process a sequence of events; returns the final configuration."""
        current = self.current
        table = self.transitions
        for name in events:
            current = table.get((current, name), current)
        self.current = current
        return current

    def leaf_names(self) -> Tuple[str, ...]:
        """The active leaf state names of the current configuration."""
        return self.state_labels[self.current]

    def __repr__(self) -> str:
        return (f"<FlatStateMachine {len(self.state_labels)} configs, "
                f"{len(self.transitions)} edges>")


def _snapshot_key(runtime: StateMachineRuntime) -> ConfigKey:
    return (frozenset(s.xmi_id for s in runtime._active),
            runtime.is_terminated)


def _config_name(runtime: StateMachineRuntime) -> str:
    if runtime.is_terminated:
        return "<terminated>"
    leaves = runtime.active_leaf_names()
    return "+".join(leaves) if leaves else "<empty>"


def default_alphabet(machine: StateMachine) -> Tuple[str, ...]:
    """All signal/call trigger names appearing in the machine, sorted."""
    names = set()
    for transition in machine.all_transitions():
        for event in transition.triggers:
            if isinstance(event, (TimeEvent, ChangeEvent)):
                continue
            names.add(event.name)
    return tuple(sorted(names))


def flatten(machine: StateMachine,
            alphabet: Optional[Sequence[str]] = None,
            context: Optional[Dict[str, Any]] = None,
            max_configurations: int = 100_000) -> FlatStateMachine:
    """Flatten ``machine`` into a :class:`FlatStateMachine`.

    ``alphabet`` defaults to every signal/call trigger name in the
    machine.  ``context`` is the fixed variable environment used for
    guard evaluation during exploration.
    """
    for transition in machine.all_transitions():
        for event in transition.triggers:
            if isinstance(event, (TimeEvent, ChangeEvent)):
                raise StateMachineError(
                    "machines with time or change triggers cannot be "
                    "flattened statically"
                )
    event_names = tuple(alphabet) if alphabet is not None \
        else default_alphabet(machine)

    runtime = StateMachineRuntime(machine, dict(context or {})).start()
    initial_key = _snapshot_key(runtime)
    names: Dict[ConfigKey, str] = {initial_key: _config_name(runtime)}
    labels: Dict[str, Tuple[str, ...]] = {
        names[initial_key]: runtime.active_leaf_names()
    }
    # checkpoint each configuration once; exploration restores instead
    # of replaying event paths (O(configs x alphabet) total sends)
    snapshots: Dict[ConfigKey, dict] = {initial_key: runtime.snapshot()}
    transitions: Dict[Tuple[str, str], str] = {}
    frontier: List[ConfigKey] = [initial_key]
    explored = set()

    while frontier:
        key = frontier.pop(0)
        if key in explored:
            continue
        explored.add(key)
        if len(names) > max_configurations:
            raise StateMachineError(
                f"flattening exceeded {max_configurations} configurations"
            )
        for event_name in event_names:
            runtime.restore(snapshots[key])
            runtime.send(event_name)
            new_key = _snapshot_key(runtime)
            if new_key not in names:
                names[new_key] = _config_name(runtime)
                labels[names[new_key]] = runtime.active_leaf_names()
                snapshots[new_key] = runtime.snapshot()
                frontier.append(new_key)
            if new_key != key:
                transitions[(names[key], event_name)] = names[new_key]

    return FlatStateMachine(names[initial_key], transitions, labels,
                            event_names)


def _flat_to_payload(flat: FlatStateMachine) -> Dict[str, Any]:
    """A :class:`FlatStateMachine` as a JSON-clean store payload."""
    return {
        "flat_version": 1,
        "initial": flat.initial,
        "alphabet": list(flat.alphabet),
        "transitions": sorted(
            [source, event, target]
            for (source, event), target in flat.transitions.items()),
        "labels": {name: list(leaves)
                   for name, leaves in flat.state_labels.items()},
    }


def _flat_from_payload(payload: Any) -> Optional[FlatStateMachine]:
    """Rebuild a flat machine; None when the payload shape is off."""
    if not isinstance(payload, dict) \
            or payload.get("flat_version") != 1:
        return None
    try:
        transitions = {(source, event): target
                       for source, event, target
                       in payload["transitions"]}
        labels = {str(name): tuple(leaves)
                  for name, leaves in payload["labels"].items()}
        flat = FlatStateMachine(str(payload["initial"]), transitions,
                                labels, tuple(payload["alphabet"]))
    except (KeyError, TypeError, ValueError):
        return None
    if flat.initial not in flat.state_labels:
        return None
    return flat


def flatten_cached(machine: StateMachine,
                   alphabet: Optional[Sequence[str]] = None,
                   context: Optional[Dict[str, Any]] = None,
                   max_configurations: int = 100_000
                   ) -> FlatStateMachine:
    """Store-backed :func:`flatten`.

    With an active artifact store, the flattening of a machine is a
    per-machine ``flatten`` artifact keyed by the machine's subtree
    fingerprint plus the alphabet and guard context: warm processes
    skip configuration exploration entirely.  Without a store this is
    exactly :func:`flatten`.  Each call returns a fresh
    :class:`FlatStateMachine` positioned at its initial configuration.
    """
    from ..store import get_active_store
    store = get_active_store()
    if store is None:
        return flatten(machine, alphabet, context, max_configurations)

    from ..metamodel.model import element_fingerprint
    from ..store import canonical_json
    fingerprint = element_fingerprint(machine)
    extras = canonical_json({
        "alphabet": list(alphabet) if alphabet is not None else None,
        "context": sorted((dict(context or {})).items()),
    })
    store_key = store.make_key("flatten", fingerprint, extras)
    payload = store.load("flatten", store_key, inputs=(fingerprint,),
                         label=machine.name)
    if payload is not None:
        flat = _flat_from_payload(payload)
        if flat is not None:
            return flat
    flat = flatten(machine, alphabet, context, max_configurations)
    store.save("flatten", store_key, _flat_to_payload(flat),
               inputs=(fingerprint,),
               meta={"machine": machine.name,
                     "configurations": len(flat.state_labels)},
               label=machine.name)
    return flat


# ---------------------------------------------------------------------------
# Dispatch-table compilation (the cosimulation fast path)
# ---------------------------------------------------------------------------

#: Environment keys the interpreter never copies back into the context.
_SPECIALS = ("event", "event_name", "now")

#: Event kinds a compiled machine can dispatch directly.
_DISPATCHABLE = (EventKind.SIGNAL, EventKind.CALL)


def _asl_div(a, b):
    """ASL '/' floors on integer operands, divides otherwise."""
    if isinstance(a, int) and isinstance(b, int):
        return a // b
    return a / b


def _asl_attr(obj, name):
    if isinstance(obj, dict):
        if name in obj:
            return obj[name]
        raise AslRuntimeError(f"object has no attribute {name!r}")
    try:
        return getattr(obj, name)
    except AttributeError as exc:
        raise AslRuntimeError(str(exc))


def _asl_append(seq, item):
    seq.append(item)
    return seq


def _asl_pop(seq):
    return seq.pop(0)


def _asl_contains(seq, item):
    return item in seq


#: Globals every compiled action executes against.  ``__builtins__`` is
#: emptied so generated code resolves exactly the interpreter's builtin
#: set — an undefined ASL name raises instead of finding a Python
#: builtin the interpreter would not have.
_BASE_GLOBALS: Dict[str, Any] = {
    "__builtins__": {},
    "abs": abs, "min": min, "max": max, "len": len, "int": int,
    "float": float, "str": str, "bool": bool, "sum": sum,
    "sorted": sorted, "list": list, "range": range,
    "_asl_div": _asl_div, "_asl_attr": _asl_attr,
    "_asl_append": _asl_append, "_asl_pop": _asl_pop,
    "_asl_contains": _asl_contains,
}


def _wrap_asl_error(source: str, exc: Exception) -> AslRuntimeError:
    return AslRuntimeError(f"compiled action failed: {exc} (in {source!r})")


class CompilePlan:
    """The persistable transpile outcomes of one machine's compile.

    A plan maps every ASL guard/action source string of a machine to
    its transpiled Python source (or ``None`` when the source falls
    back to the tree-walking interpreter).  It is the content of the
    per-machine ``compile`` artifact in :mod:`repro.store`: warm
    compiles replay recorded outcomes — one ``compile()`` call per
    site — skipping ASL parsing and transpilation entirely, and are
    byte-identical to cold compiles because the executed Python source
    is literally the same string.
    """

    __slots__ = ("guards", "actions", "recording")

    PAYLOAD_VERSION = 1

    def __init__(self, guards: Optional[Dict[str, Optional[str]]] = None,
                 actions: Optional[Dict[str, Optional[str]]] = None,
                 recording: bool = False):
        self.guards: Dict[str, Optional[str]] = dict(guards or {})
        self.actions: Dict[str, Optional[str]] = dict(actions or {})
        self.recording = recording

    def to_payload(self) -> Dict[str, Any]:
        return {"plan_version": self.PAYLOAD_VERSION,
                "guards": self.guards, "actions": self.actions}

    @classmethod
    def from_payload(cls, payload: Any) -> Optional["CompilePlan"]:
        """Rebuild from a stored payload; None when the shape is off."""
        if not isinstance(payload, dict) \
                or payload.get("plan_version") != cls.PAYLOAD_VERSION:
            return None
        guards = payload.get("guards")
        actions = payload.get("actions")
        if not isinstance(guards, dict) or not isinstance(actions, dict):
            return None
        sources = list(guards.items()) + list(actions.items())
        if not all(isinstance(key, str)
                   and (value is None or isinstance(value, str))
                   for key, value in sources):
            return None
        return cls(guards, actions, recording=False)

    def __repr__(self) -> str:
        mode = "recording" if self.recording else "replay"
        return (f"<CompilePlan {mode} guards={len(self.guards)} "
                f"actions={len(self.actions)}>")


#: Sentinel: "this source has no recorded transpile outcome".
_UNPLANNED = object()


def _planned_source(plan: Optional[CompilePlan], table: str,
                    source: str):
    """A recorded transpile outcome, or ``_UNPLANNED``."""
    if plan is None or plan.recording:
        return _UNPLANNED
    return getattr(plan, table).get(source, _UNPLANNED)


def _record_source(plan: Optional[CompilePlan], table: str, source: str,
                   python_source: Optional[str]) -> None:
    if plan is not None and plan.recording:
        getattr(plan, table)[source] = python_source


def _compile_guard(guard, plan: Optional[CompilePlan] = None
                   ) -> Optional[Callable]:
    """Compile a guard into ``g(runtime, env, occurrence) -> bool``.

    Returns None for the always-true guard.  The ``env`` argument is the
    shared per-dispatch environment (guards cannot mutate the context,
    so one copy serves every candidate — exactly the interpreter's
    upfront guard phase).
    """
    if guard is None:
        return None
    if callable(guard):
        def run_callable(runtime, env, occurrence, _fn=guard):
            return bool(_fn(runtime.context, occurrence))
        return run_callable
    if not isinstance(guard, str):
        raise StateMachineError(
            f"unsupported guard type {type(guard).__name__}")
    if guard.strip() == ELSE_GUARD:
        def never(runtime, env, occurrence):
            return False
        return never
    python_source = _planned_source(plan, "guards", guard)
    if python_source is _UNPLANNED:
        try:
            from .. import asl
            from ..codegen.transpile import to_python_expression

            python_source = to_python_expression(
                asl.parse_expression(guard))
            if "self." in python_source:
                python_source = None
        except Exception:
            python_source = None
        _record_source(plan, "guards", guard, python_source)
    code = None
    if python_source is not None:
        try:
            code = compile(python_source, "<asl-guard>", "eval")
        except Exception:
            code = None
    if code is not None:
        def run_compiled(runtime, env, occurrence, _code=code, _src=guard):
            try:
                return bool(eval(_code, runtime._globals, env))
            except ReproError:
                raise
            except Exception as exc:
                raise _wrap_asl_error(_src, exc)
        return run_compiled

    def run_interpreted(runtime, env, occurrence, _src=guard):
        from .. import asl
        return bool(asl.evaluate(_src, env))
    return run_interpreted


def _compile_action(action, plan: Optional[CompilePlan] = None
                    ) -> Optional[Callable]:
    """Compile an effect/entry/exit into ``a(runtime, occurrence)``.

    ASL source is transpiled and ``compile()``d when every construct has
    a Python equivalent; otherwise the closure falls back to the tree-
    walking interpreter (identical semantics either way: fresh
    environment copy in, full copy-back out — temporaries intentionally
    leak into the context, matching the interpreter).
    """
    if action is None:
        return None
    if callable(action):
        def run_callable(runtime, occurrence, _fn=action):
            _fn(runtime.context, occurrence)
        return run_callable
    if not isinstance(action, str):
        raise StateMachineError(
            f"unsupported action type {type(action).__name__}")
    python_source = _planned_source(plan, "actions", action)
    if python_source is _UNPLANNED:
        try:
            from ..codegen.transpile import to_python_statements

            python_source = "\n".join(
                to_python_statements(action, set(), send_call="_send"))
            if "self." in python_source:
                python_source = None
        except Exception:
            python_source = None
        _record_source(plan, "actions", action, python_source)
    code = None
    if python_source is not None:
        try:
            code = compile(python_source, "<asl-effect>", "exec")
        except Exception:
            code = None
    if code is not None:
        def run_compiled(runtime, occurrence, _code=code, _src=action):
            env = dict(runtime.context)
            if occurrence is not None:
                env["event"] = dict(occurrence.parameters)
                env["event_name"] = occurrence.name
            else:
                env["event"] = {}
                env["event_name"] = ""
            env["now"] = runtime.time
            try:
                exec(_code, runtime._globals, env)
            except ReproError:
                raise
            except Exception as exc:
                raise _wrap_asl_error(_src, exc)
            context = runtime.context
            for key, value in env.items():
                if key not in _SPECIALS:
                    context[key] = value
        return run_compiled

    def run_interpreted(runtime, occurrence, _src=action):
        from .. import asl
        env = dict(runtime.context)
        if occurrence is not None:
            env["event"] = dict(occurrence.parameters)
            env["event_name"] = occurrence.name
        else:
            env["event"] = {}
            env["event_name"] = ""
        env["now"] = runtime.time
        asl.execute(_src, env, signal_sink=runtime.signal_sink)
        context = runtime.context
        for key, value in env.items():
            if key not in _SPECIALS:
                context[key] = value
    return run_interpreted


class CompiledTransition:
    """One row of a state's dispatch table."""

    __slots__ = ("internal", "target", "guard", "effect", "source_name")

    def __init__(self, internal: bool, target: Optional["CompiledState"],
                 guard: Optional[Callable], effect: Optional[Callable],
                 source_name: str):
        self.internal = internal
        self.target = target
        self.guard = guard
        self.effect = effect
        self.source_name = source_name

    def __repr__(self) -> str:
        kind = "internal" if self.internal else "external"
        target = self.target.name if self.target is not None else "?"
        return f"<CompiledTransition {kind} {self.source_name}->{target}>"


class CompiledState:
    """A state with precompiled entry/exit actions and dispatch tables."""

    __slots__ = ("name", "index", "entry", "do_activity", "exit", "by_key",
                 "by_timer", "timer_specs")

    def __init__(self, name: str, index: int = -1):
        self.name = name
        #: position in the owning machine's ``state_order`` (the
        #: index-addressable handle the SoA batched runtime stores in its
        #: active-state array instead of an object reference)
        self.index = index
        self.entry: Optional[Callable] = None
        self.do_activity: Optional[Callable] = None
        self.exit: Optional[Callable] = None
        #: (EventKind, event name) -> candidate transitions, declaration order
        self.by_key: Dict[Tuple[EventKind, str], Tuple[CompiledTransition, ...]] = {}
        #: id(TimeEvent) -> candidate transitions for that timer
        self.by_timer: Dict[int, Tuple[CompiledTransition, ...]] = {}
        #: (after, TimeEvent) in registration order (= declaration order)
        self.timer_specs: Tuple[Tuple[float, TimeEvent], ...] = ()

    def __repr__(self) -> str:
        return f"<CompiledState {self.name!r} keys={len(self.by_key)}>"


class CompiledMachine:
    """The immutable compile artifact: share one across many runtimes."""

    __slots__ = ("machine", "states", "state_order", "state_index",
                 "initial_state", "initial_effect")

    def __init__(self, machine: StateMachine,
                 states: Dict[str, CompiledState],
                 initial_state: CompiledState,
                 initial_effect: Optional[Callable]):
        self.machine = machine
        self.states = states
        #: states in declaration order — ``state_order[s.index] is s``,
        #: so an active configuration is addressable by a plain integer
        #: (what the batched SoA runtime keeps per lane)
        self.state_order: Tuple[CompiledState, ...] = tuple(
            sorted(states.values(), key=lambda s: s.index))
        #: state name -> index into :attr:`state_order`
        self.state_index: Dict[str, int] = {
            s.name: s.index for s in self.state_order}
        self.initial_state = initial_state
        self.initial_effect = initial_effect

    def runtime(self, context: Optional[Dict[str, Any]] = None,
                signal_sink=None) -> "CompiledRuntime":
        """Convenience: a fresh :class:`CompiledRuntime` over this table."""
        return CompiledRuntime(self, context=context, signal_sink=signal_sink)

    def __repr__(self) -> str:
        return (f"<CompiledMachine {self.machine.name!r} "
                f"states={len(self.states)}>")


def compile_fallback_reason(machine: StateMachine) -> Optional[str]:
    """Why ``machine`` cannot be compiled, or None when it can.

    The compilable subset is the flat-machine core the SoC IP library
    uses: one region, simple states, INITIAL as the only pseudostate,
    signal/call/time triggers, no deferral, no completion transitions.
    Everything else (deep history, orthogonal regions, unbounded
    deferral, change triggers, ...) answers with a reason string and the
    caller stays on the interpreter.
    """
    regions = machine.regions
    if len(regions) != 1:
        return f"machine has {len(regions)} top-level regions"
    try:
        machine.validate()
    except StateMachineError as exc:
        return f"machine fails validation: {exc}"
    for state in machine.all_states():
        if not state.is_simple:
            return f"composite state {state.name!r}"
        if state.deferrable:
            return f"state {state.name!r} defers events"
    for vertex in machine.all_vertices():
        if isinstance(vertex, Pseudostate) \
                and vertex.kind is not PseudostateKind.INITIAL:
            return f"pseudostate kind {vertex.kind.value!r}"
    for transition in machine.all_transitions():
        if transition.kind is TransitionKind.LOCAL:
            return "local transition kind"
        if isinstance(transition.target, Pseudostate):
            return "transition targets a pseudostate"
        if isinstance(transition.source, State) and transition.is_completion:
            return f"completion transition from {transition.source.name!r}"
        for event in transition.triggers:
            if isinstance(event, ChangeEvent):
                return "change trigger"
            if event.kind not in (EventKind.SIGNAL, EventKind.CALL,
                                  EventKind.TIME):
                return f"unsupported trigger kind {event.kind.value!r}"
        for spec in (transition.guard, transition.effect):
            if spec is not None and not callable(spec) \
                    and not isinstance(spec, str):
                return f"unsupported guard/effect type {type(spec).__name__}"
    return None


def compile_machine(machine: StateMachine,
                    plan: Optional[CompilePlan] = None) -> CompiledMachine:
    """Compile a flat machine into per-state dispatch tables.

    Raises :class:`StateMachineError` when the machine is outside the
    compilable subset (check :func:`compile_fallback_reason` first).
    ``plan`` replays (or, when recording, captures) transpile outcomes
    for the store-backed warm-compile path.
    """
    reason = compile_fallback_reason(machine)
    if reason is not None:
        raise StateMachineError(
            f"machine {machine.name!r} cannot be compiled: {reason}")

    with PERF.timed("sm.compile_s"):
        ordered = machine.all_transitions()
        cstates: Dict[int, CompiledState] = {}
        by_name: Dict[str, CompiledState] = {}
        for position, state in enumerate(machine.all_states()):
            cstate = CompiledState(state.name, position)
            cstate.entry = _compile_action(state.entry, plan)
            cstate.do_activity = _compile_action(state.do_activity, plan)
            cstate.exit = _compile_action(state.exit, plan)
            cstates[id(state)] = cstate
            by_name[state.name] = cstate

        for state in machine.all_states():
            cstate = cstates[id(state)]
            outgoing = [t for t in ordered if t.source is state]
            by_key: Dict[Tuple[EventKind, str], List[CompiledTransition]] = {}
            by_timer: Dict[int, List[CompiledTransition]] = {}
            timer_specs: List[Tuple[float, TimeEvent]] = []
            for transition in outgoing:
                compiled = CompiledTransition(
                    transition.kind is TransitionKind.INTERNAL,
                    cstates[id(transition.target)],
                    _compile_guard(transition.guard, plan),
                    _compile_action(transition.effect, plan),
                    state.name)
                for event in transition.triggers:
                    if isinstance(event, TimeEvent):
                        timer_specs.append((event.after, event))
                        by_timer.setdefault(id(event), []).append(compiled)
                    else:
                        key = (event.kind, event.name)
                        by_key.setdefault(key, []).append(compiled)
            cstate.by_key = {key: tuple(value)
                             for key, value in by_key.items()}
            cstate.by_timer = {key: tuple(value)
                               for key, value in by_timer.items()}
            cstate.timer_specs = tuple(timer_specs)

        region = machine.regions[0]
        initial = region.initial
        if initial is None:
            raise StateMachineError(
                f"machine {machine.name!r} has no initial pseudostate")
        initial_transition = initial.outgoing[0]
        initial_effect = _compile_action(initial_transition.effect, plan)
        initial_state = cstates[id(initial_transition.target)]

    PERF.incr("sm.machines_compiled")
    return CompiledMachine(machine, by_name, initial_state, initial_effect)


#: id(machine) -> (machine, generation, CompiledMachine).  The strong
#: machine reference keeps the id stable for the cache entry's lifetime.
_COMPILE_CACHE: Dict[int, Tuple[StateMachine, int, CompiledMachine]] = {}
_COMPILE_CACHE_MAX = 256


def compile_machine_cached(machine: StateMachine) -> CompiledMachine:
    """Memoized :func:`compile_machine`, invalidated by model mutation.

    Keyed on identity plus the owning tree's generation counter, so a
    machine edited after compilation recompiles while N identical part
    instances (and N campaign seeds over one parsed model) share a
    single dispatch table — the warm-compile path of batched execution
    and the pre-fork campaign warm-up.

    When an artifact store is active (:func:`repro.store.
    get_active_store`), in-memory misses consult the per-machine
    ``compile`` artifact keyed by the machine's subtree fingerprint:
    warm processes replay the stored :class:`CompilePlan` instead of
    re-transpiling, and cold compiles persist their plan for the next
    worker.  Editing one machine of a model changes only that machine's
    fingerprint, so siblings keep warm artifacts — the incremental
    recompilation path.
    """
    key = id(machine)
    generation = machine.root().generation
    hit = _COMPILE_CACHE.get(key)
    if hit is not None and hit[0] is machine and hit[1] == generation:
        PERF.incr("sm.compile_cache_hits")
        return hit[2]

    from ..store import get_active_store
    store = get_active_store()
    plan = None
    if store is not None:
        from ..metamodel.model import element_fingerprint
        fingerprint = element_fingerprint(machine)
        store_key = store.make_key("compile", fingerprint)
        payload = store.load("compile", store_key,
                             inputs=(fingerprint,), label=machine.name)
        plan = CompilePlan.from_payload(payload) \
            if payload is not None else None
        if plan is not None:
            PERF.incr("sm.compile_store_hits")
    if plan is not None:
        compiled = compile_machine(machine, plan=plan)
    elif store is not None:
        plan = CompilePlan(recording=True)
        compiled = compile_machine(machine, plan=plan)
        store.save("compile", store_key, plan.to_payload(),
                   inputs=(fingerprint,),
                   meta={"machine": machine.name,
                         "states": len(compiled.states)},
                   label=machine.name)
    else:
        compiled = compile_machine(machine)

    if len(_COMPILE_CACHE) >= _COMPILE_CACHE_MAX:
        _COMPILE_CACHE.clear()
    _COMPILE_CACHE[key] = (machine, generation, compiled)
    PERF.incr("sm.compile_cache_misses")
    return compiled


class CompiledRuntime:
    """Executes one compiled machine instance — interpreter-equivalent.

    Mirrors the :class:`StateMachineRuntime` surface the cosimulation
    harness uses (``start``/``dispatch``/``send``/``advance_time``/
    ``context``/``time``/``active_leaf_names``), with run-to-completion
    steps reduced to: dict lookup of the candidate list, upfront guard
    ``eval``s, then effect ``exec``s in declaration order until the
    first external firing.
    """

    __slots__ = ("compiled", "context", "time", "is_terminated",
                 "signal_sink", "trace_bus", "trace_part", "_state",
                 "_timers", "_timer_seq", "_queue", "_draining",
                 "_globals", "_started")

    def __init__(self, compiled: CompiledMachine,
                 context: Optional[Dict[str, Any]] = None,
                 signal_sink=None):
        self.compiled = compiled
        self.context: Dict[str, Any] = dict(context or {})
        self.time: float = 0.0
        self.is_terminated = False
        self.signal_sink = signal_sink
        # Trace-bus plumbing (set by the cosim harness); emit sites
        # mirror StateMachineRuntime exactly so interpreted and compiled
        # runs produce byte-identical trace streams.  Kinds are literal
        # strings: this module never imports repro.engine.
        self.trace_bus = None
        self.trace_part = ""
        self._state: Optional[CompiledState] = None
        #: live timers: (due, seq, TimeEvent) — all owned by _state
        self._timers: List[Tuple[float, int, TimeEvent]] = []
        self._timer_seq = 0
        self._queue: deque = deque()
        self._draining = False
        self._globals = dict(_BASE_GLOBALS)
        self._globals["_send"] = self._emit
        self._started = False

    # -- public API (parity with StateMachineRuntime) --------------------

    def start(self) -> "CompiledRuntime":
        """Enter the machine's default configuration (chainable)."""
        if self._started:
            raise StateMachineError("runtime already started")
        self._started = True
        effect = self.compiled.initial_effect
        if effect is not None:
            effect(self, None)
        self._enter(self.compiled.initial_state, None)
        return self

    def dispatch(self, occurrence: EventOccurrence) -> "CompiledRuntime":
        """Queue an event occurrence and run to completion (chainable)."""
        self._require_started()
        self._queue.append(occurrence)
        if self._draining:
            return self  # re-entrant dispatch from an action: queue only
        self._draining = True
        try:
            while self._queue:
                self._rtc(self._queue.popleft())
        finally:
            self._draining = False
        return self

    def send(self, name: str, **parameters: Any) -> "CompiledRuntime":
        """Shorthand: dispatch a signal occurrence by name."""
        return self.dispatch(EventOccurrence.signal(name, **parameters))

    def call(self, name: str, **parameters: Any) -> "CompiledRuntime":
        """Shorthand: dispatch a call occurrence by name."""
        return self.dispatch(EventOccurrence.call(name, **parameters))

    def advance_time(self, delta: float) -> "CompiledRuntime":
        """Advance the runtime clock, firing due time triggers in order."""
        self._require_started()
        if delta < 0:
            raise StateMachineError("time cannot move backwards")
        deadline = self.time + delta
        timers = self._timers
        while True:
            best = None
            for timer in timers:
                if timer[0] <= deadline and (best is None or timer < best):
                    best = timer
            if best is None:
                break
            timers.remove(best)
            self.time = best[0]
            event = best[2]
            self.dispatch(EventOccurrence(event.name, EventKind.TIME,
                                          source=event))
        self.time = deadline
        return self

    def step(self, until: float) -> "CompiledRuntime":
        """Advance to *absolute* time ``until`` (ExecutionEngine surface).

        Idempotent when the clock is already at or past ``until``.
        """
        if until > self.time:
            self.advance_time(until - self.time)
        return self

    # -- snapshot / restore (checkpointing, parity with the interpreter) --

    def checkpoint(self) -> Dict[str, Any]:
        """Alias of :meth:`snapshot` (ExecutionEngine surface)."""
        return self.snapshot()

    def snapshot(self) -> Dict[str, Any]:
        """Capture the full execution state (configuration, timers,
        context, clock).  Restore with :meth:`restore`."""
        return {
            "state": self._state.name if self._state is not None else None,
            "timers": list(self._timers),
            "timer_seq": self._timer_seq,
            "time": self.time,
            "terminated": self.is_terminated,
            "context": dict(self.context),
            "started": self._started,
            "queue": list(self._queue),
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        """Return to a state captured by :meth:`snapshot`."""
        name = snap["state"]
        self._state = self.compiled.states[name] if name is not None else None
        self._timers = list(snap["timers"])
        self._timer_seq = snap["timer_seq"]
        self.time = snap["time"]
        self.is_terminated = snap["terminated"]
        self.context = dict(snap["context"])
        self._started = snap["started"]
        self._queue = deque(snap.get("queue", ()))

    def active_leaf_names(self) -> Tuple[str, ...]:
        """Names of active leaf states (one for a flat machine)."""
        return (self._state.name,) if self._state is not None else ()

    def active_configuration(self) -> Tuple[str, ...]:
        """Canonical configuration names (ExecutionEngine surface)."""
        return self.active_leaf_names()

    def active_state_names(self) -> Tuple[str, ...]:
        """Alias of :meth:`active_leaf_names` for flat machines."""
        return self.active_leaf_names()

    def in_state(self, name: str) -> bool:
        """True when the named state is the active one."""
        return self._state is not None and self._state.name == name

    # -- machinery --------------------------------------------------------

    def _require_started(self) -> None:
        if not self._started:
            raise StateMachineError("call start() before dispatching events")

    def _emit(self, signal: str, target: Any = None, **arguments: Any) -> None:
        """Target of transpiled ``send`` statements."""
        if self.signal_sink is not None:
            self.signal_sink(SentSignal(signal, arguments, target))

    def _rtc(self, occurrence: EventOccurrence) -> bool:
        """One run-to-completion step; True when any transition fired."""
        bus = self.trace_bus
        tracing = bus is not None and bus.engine_active
        event_cause = None
        if tracing:
            record = bus.emit("event", self.time, self.trace_part,
                              {"event": occurrence.name})
            if bus.causal and record is not None:
                # this dispatch is now the cause of whatever it fires
                event_cause = record.ordinal
                bus.cause = event_cause
        state = self._state
        if state is None:
            return False
        if occurrence.kind is EventKind.TIME:
            candidates = state.by_timer.get(id(occurrence.source))
        else:
            candidates = state.by_key.get((occurrence.kind, occurrence.name))
        if not candidates:
            return False
        # Guard phase: every candidate's guard is evaluated upfront
        # against the unmodified context (interpreter semantics), so a
        # guard made false by an earlier effect in the same step still
        # admits its transition.
        if len(candidates) == 1 and candidates[0].guard is None:
            enabled = candidates
        else:
            env = dict(self.context)
            env["event"] = dict(occurrence.parameters)
            env["event_name"] = occurrence.name
            env["now"] = self.time
            enabled = [candidate for candidate in candidates
                       if candidate.guard is None
                       or candidate.guard(self, env, occurrence)]
        fired = False
        for candidate in enabled:
            fired = True
            if tracing:
                record = bus.emit("transition", self.time, self.trace_part,
                                  {"source": candidate.source_name,
                                   "target": candidate.target.name,
                                   "event": occurrence.name})
                if bus.causal and record is not None:
                    # exits, the effect's sends and the entry descend
                    # from this firing
                    bus.cause = record.ordinal
            effect = candidate.effect
            if candidate.internal:
                if effect is not None:
                    effect(self, occurrence)
                if event_cause is not None:
                    bus.cause = event_cause
                continue
            # external: exit source, run effect, enter target; remaining
            # candidates conflict with the exited scope and are skipped.
            exit_action = state.exit
            if exit_action is not None:
                exit_action(self, occurrence)
            if tracing:
                bus.emit("state_exit", self.time, self.trace_part,
                         {"state": state.name})
            self._timers.clear()
            if effect is not None:
                effect(self, occurrence)
            self._enter(candidate.target, occurrence)
            if event_cause is not None:
                bus.cause = event_cause
            break
        return fired

    def _enter(self, state: CompiledState,
               occurrence: Optional[EventOccurrence]) -> None:
        self._state = state
        bus = self.trace_bus
        if bus is not None and bus.engine_active:
            bus.emit("state_enter", self.time, self.trace_part,
                     {"state": state.name})
        if state.entry is not None:
            state.entry(self, occurrence)
        if state.do_activity is not None:
            state.do_activity(self, occurrence)
        if state.timer_specs:
            now = self.time
            for after, event in state.timer_specs:
                self._timer_seq += 1
                self._timers.append((now + after, self._timer_seq, event))

    def __repr__(self) -> str:
        name = self._state.name if self._state is not None else "(unstarted)"
        return (f"<CompiledRuntime {self.compiled.machine.name!r} "
                f"state={name} t={self.time}>")
