"""Behavior reuse: submachine inlining.

UML 2.0 lets a state reference another state machine (a *submachine
state*), which is how behavioral IP is reused — the paper's reuse
argument applied to behavior.  This module implements the standard
tool strategy: **inlining**.  :func:`inline_submachine` deep-copies a
reusable machine's region into a host state (via the XMI cloning
pipeline, so ids are freshened consistently), making the host state a
composite whose content is an independent copy of the library behavior.

Entry/exit points of the submachine become connectable vertices in the
host (looked up by name), so different call sites can wire different
entries — the UML submachine-state connection-point semantics, realized
statically.
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import _ids
from ..errors import StateMachineError
from ..metamodel.model import Model
from ..metamodel.classifiers import UmlClass
from .kernel import Pseudostate, PseudostateKind, Region, State, StateMachine


def clone_machine(machine: StateMachine) -> StateMachine:
    """Deep-copy a state machine with fresh, unique ids.

    Round-trips through XMI (structure-complete by construction), then
    re-ids every element so multiple clones can live in one model.
    """
    from ..xmi.reader import read_model
    from ..xmi.writer import write_model

    carrier = Model("_clone_carrier")
    host = UmlClass("_Host")
    carrier.add(host)
    if machine.owner is not None:
        # serialize the machine subtree only: temporary reparent is
        # invasive, so clone via a fresh carrier that references it
        text = _serialize_detached(machine)
    else:
        host.add_behavior(machine)
        text = write_model(carrier)
        host._disown(machine)
    document = read_model(text)
    cloned_host = document.model.member("_Host", UmlClass)
    clones = cloned_host.owned_of_type(StateMachine)
    if not clones:
        raise StateMachineError("clone round-trip lost the machine")
    clone = clones[0]
    cloned_host._disown(clone)
    for element in [clone] + list(clone.all_owned()):
        element.xmi_id = _ids.next_id(type(element)._id_tag)
    return clone


def _serialize_detached(machine: StateMachine) -> str:
    """Serialize an owned machine by temporarily lifting it out."""
    from ..xmi.writer import write_model

    owner = machine.owner
    owner._disown(machine)
    try:
        carrier = Model("_clone_carrier")
        host = UmlClass("_Host")
        carrier.add(host)
        host.add_behavior(machine)
        text = write_model(carrier)
        host._disown(machine)
    finally:
        owner._own(machine)
    return text


def inline_submachine(host_state: State, submachine: StateMachine,
                      region_name: str = "") -> Region:
    """Copy ``submachine``'s content into ``host_state`` as a new region.

    The submachine must have exactly one top region (the common case
    for reusable behaviors).  Returns the new region inside the host
    state; entry/exit-point pseudostates keep their names and can be
    wired by the caller via :func:`connection_point`.
    """
    if len(submachine.regions) != 1:
        raise StateMachineError(
            f"submachine {submachine.name!r} must have exactly one "
            f"region to inline, has {len(submachine.regions)}")
    clone = clone_machine(submachine)
    source_region = clone.regions[0]
    clone._disown(source_region)
    source_region.name = region_name or f"{submachine.name}_inlined"
    host_state._own(source_region)
    return source_region


def connection_point(host_state: State, name: str,
                     kind: Optional[PseudostateKind] = None) -> Pseudostate:
    """Find a named entry/exit point inside an inlined submachine."""
    wanted_kinds = (kind,) if kind is not None else (
        PseudostateKind.ENTRY_POINT, PseudostateKind.EXIT_POINT)
    for region in host_state.regions:
        for vertex in region.vertices:
            if isinstance(vertex, Pseudostate) \
                    and vertex.kind in wanted_kinds \
                    and vertex.name == name:
                return vertex
    raise StateMachineError(
        f"state {host_state.name!r} has no connection point {name!r}")
