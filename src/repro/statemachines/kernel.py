"""State machine metamodel: machines, regions, states, transitions.

Implements the UML 2.0 StateChart variant the paper references
([Harel/STATEMATE]): hierarchical composite states, orthogonal regions,
the full set of pseudostates, entry/exit/do behaviors and guarded,
triggered transitions.  Execution semantics live in
:mod:`repro.statemachines.runtime`.

Behaviors (entry/exit/do, transition effects) and guards may be either
ASL source strings (interpreted by :mod:`repro.asl`) or Python
callables — the runtime accepts both.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Tuple, Union

from ..errors import StateMachineError
from ..metamodel.element import Element
from ..metamodel.namespaces import NamedElement, Namespace, PackageableElement
from .events import ChangeEvent, Event, SignalEvent, TimeEvent

#: A guard or behavior: ASL source text or a Python callable.
ActionSpec = Union[str, Callable, None]


class PseudostateKind(enum.Enum):
    """The UML 2.0 pseudostate kinds."""

    INITIAL = "initial"
    CHOICE = "choice"
    JUNCTION = "junction"
    FORK = "fork"
    JOIN = "join"
    SHALLOW_HISTORY = "shallowHistory"
    DEEP_HISTORY = "deepHistory"
    ENTRY_POINT = "entryPoint"
    EXIT_POINT = "exitPoint"
    TERMINATE = "terminate"


class TransitionKind(enum.Enum):
    """UML transition kinds."""

    EXTERNAL = "external"
    INTERNAL = "internal"
    LOCAL = "local"


class Vertex(NamedElement):
    """Abstract node of the state machine graph."""

    _id_tag = "Vertex"

    @property
    def container(self) -> Optional["Region"]:
        """The region that owns this vertex."""
        owner = self.owner
        return owner if isinstance(owner, Region) else None

    @property
    def outgoing(self) -> Tuple["Transition", ...]:
        """Transitions leaving this vertex (searched across the machine)."""
        machine = self.machine
        if machine is None:
            return ()
        return tuple(t for t in machine.all_transitions() if t.source is self)

    @property
    def incoming(self) -> Tuple["Transition", ...]:
        """Transitions entering this vertex."""
        machine = self.machine
        if machine is None:
            return ()
        return tuple(t for t in machine.all_transitions() if t.target is self)

    @property
    def machine(self) -> Optional["StateMachine"]:
        """The owning state machine, however deeply nested."""
        node: Optional[Element] = self.owner
        while node is not None:
            if isinstance(node, StateMachine):
                return node
            node = node.owner
        return None

    def ancestor_states(self) -> Tuple["State", ...]:
        """Enclosing composite states, innermost first."""
        result: List[State] = []
        node: Optional[Element] = self.owner
        while node is not None and not isinstance(node, StateMachine):
            if isinstance(node, State):
                result.append(node)
            node = node.owner
        return tuple(result)


class Pseudostate(Vertex):
    """A transient vertex: initial, choice, fork, join, history, ..."""

    _id_tag = "Pseudostate"

    def __init__(self, kind: PseudostateKind, name: str = ""):
        super().__init__(name or kind.value)
        self.kind = kind

    def __repr__(self) -> str:
        return f"<Pseudostate {self.kind.value} {self.name!r}>"


class State(Vertex, Namespace):
    """A state: simple, composite (>=1 region) or orthogonal (>1 region).

    ``entry``/``exit``/``do_activity`` are ASL strings or callables.
    ``deferrable`` lists event names whose occurrences are deferred
    rather than discarded while this state is active.
    """

    _id_tag = "State"

    def __init__(self, name: str = "", entry: ActionSpec = None,
                 exit: ActionSpec = None, do_activity: ActionSpec = None):
        super().__init__(name)
        self.entry = entry
        self.exit = exit
        self.do_activity = do_activity
        self.deferrable: List[str] = []

    # -- composition ------------------------------------------------------

    @property
    def regions(self) -> Tuple["Region", ...]:
        """Nested regions (non-empty for composite states)."""
        return self.owned_of_type(Region)

    def add_region(self, name: str = "") -> "Region":
        """Add a nested region, making this state composite."""
        region = Region(name or f"region{len(self.regions)}")
        self._own(region)
        return region

    @property
    def is_composite(self) -> bool:
        """True when the state contains at least one region."""
        return bool(self.regions)

    @property
    def is_orthogonal(self) -> bool:
        """True when the state contains more than one region."""
        return len(self.regions) > 1

    @property
    def is_simple(self) -> bool:
        """True for a plain leaf state."""
        return not self.regions

    def defer(self, event_name: str) -> "State":
        """Mark occurrences of ``event_name`` as deferrable here (chainable)."""
        if event_name not in self.deferrable:
            self.deferrable.append(event_name)
            self._note_mutation()
        return self

    def __repr__(self) -> str:
        flavor = "orthogonal" if self.is_orthogonal else (
            "composite" if self.is_composite else "simple")
        return f"<State {self.name!r} ({flavor})>"


class FinalState(State):
    """Entering this state completes the enclosing region."""

    _id_tag = "FinalState"

    def add_region(self, name: str = "") -> "Region":
        raise StateMachineError("final states cannot contain regions")


class Transition(Element):
    """A directed arc between two vertices.

    ``triggers`` lists the declared events enabling this transition; an
    empty list makes it a *completion transition*.  ``guard`` is an ASL
    boolean expression or predicate; ``effect`` an ASL statement block
    or callable.
    """

    _id_tag = "Transition"

    def __init__(self, source: Vertex, target: Vertex,
                 triggers: Tuple[Event, ...] = (),
                 guard: ActionSpec = None,
                 effect: ActionSpec = None,
                 kind: TransitionKind = TransitionKind.EXTERNAL,
                 name: str = ""):
        super().__init__()
        self.name = name
        self.source = source
        self.target = target
        self.triggers: List[Event] = list(triggers)
        self.guard = guard
        self.effect = effect
        self.kind = kind
        if kind is TransitionKind.INTERNAL and source is not target:
            raise StateMachineError(
                "internal transitions must have source == target"
            )

    @property
    def is_completion(self) -> bool:
        """True for a triggerless (completion) transition."""
        return not self.triggers

    def __repr__(self) -> str:
        trig = ",".join(t.name for t in self.triggers) or "/"
        return (f"<Transition {self.source.name!r} --{trig}--> "
                f"{self.target.name!r}>")


class Region(NamedElement):
    """An orthogonal part of a state machine or composite state."""

    _id_tag = "Region"

    # -- vertices -----------------------------------------------------------

    @property
    def vertices(self) -> Tuple[Vertex, ...]:
        """Directly owned vertices."""
        return self.owned_of_type(Vertex)

    @property
    def states(self) -> Tuple[State, ...]:
        """Directly owned states (including final states)."""
        return self.owned_of_type(State)

    @property
    def transitions(self) -> Tuple[Transition, ...]:
        """Transitions owned by this region."""
        return self.owned_of_type(Transition)

    def add_state(self, name: str, entry: ActionSpec = None,
                  exit: ActionSpec = None,
                  do_activity: ActionSpec = None) -> State:
        """Create and own a simple state."""
        self._reject_duplicate(name)
        state = State(name, entry, exit, do_activity)
        self._own(state)
        return state

    def add_final(self, name: str = "final") -> FinalState:
        """Create and own a final state."""
        self._reject_duplicate(name)
        final = FinalState(name)
        self._own(final)
        return final

    def add_pseudostate(self, kind: PseudostateKind,
                        name: str = "") -> Pseudostate:
        """Create and own a pseudostate of the given kind."""
        if kind is PseudostateKind.INITIAL and self.initial is not None:
            raise StateMachineError(
                f"region {self.name!r} already has an initial pseudostate"
            )
        pseudo = Pseudostate(kind, name)
        self._own(pseudo)
        return pseudo

    def add_initial(self, name: str = "initial") -> Pseudostate:
        """Shorthand for adding the INITIAL pseudostate."""
        return self.add_pseudostate(PseudostateKind.INITIAL, name)

    def _reject_duplicate(self, name: str) -> None:
        if any(v.name == name for v in self.vertices):
            raise StateMachineError(
                f"region {self.name!r} already has a vertex named {name!r}"
            )

    @property
    def initial(self) -> Optional[Pseudostate]:
        """The INITIAL pseudostate of this region, if declared."""
        for vertex in self.vertices:
            if (isinstance(vertex, Pseudostate)
                    and vertex.kind is PseudostateKind.INITIAL):
                return vertex
        return None

    def history(self, deep: bool = False) -> Optional[Pseudostate]:
        """This region's (shallow or deep) history pseudostate, if any."""
        wanted = (PseudostateKind.DEEP_HISTORY if deep
                  else PseudostateKind.SHALLOW_HISTORY)
        for vertex in self.vertices:
            if isinstance(vertex, Pseudostate) and vertex.kind is wanted:
                return vertex
        return None

    def state(self, name: str) -> State:
        """Lookup an owned state by name."""
        return self.member(name, State)

    # -- transitions -----------------------------------------------------------

    def add_transition(self, source: Vertex, target: Vertex,
                       trigger: Union[Event, str, None] = None,
                       guard: ActionSpec = None,
                       effect: ActionSpec = None,
                       kind: TransitionKind = TransitionKind.EXTERNAL,
                       after: Optional[float] = None,
                       when: Optional[str] = None) -> Transition:
        """Create a transition owned by this region.

        ``trigger`` may be an :class:`Event`, a plain string (treated as
        a signal event name), or None for a completion transition.
        ``after=duration`` declares a time trigger; ``when=expr`` a
        change trigger.  The three trigger forms are mutually exclusive.
        """
        declared = [trigger is not None, after is not None, when is not None]
        if sum(declared) > 1:
            raise StateMachineError(
                "give at most one of trigger=, after=, when="
            )
        triggers: Tuple[Event, ...] = ()
        if trigger is not None:
            event = SignalEvent(trigger) if isinstance(trigger, str) else trigger
            triggers = (event,)
        elif after is not None:
            triggers = (TimeEvent(after),)
        elif when is not None:
            triggers = (ChangeEvent(when),)
        transition = Transition(source, target, triggers, guard, effect, kind)
        for event in triggers:
            if event.owner is None:
                transition._own(event)
        self._own(transition)
        return transition


class StateMachine(PackageableElement):
    """A behavior defined as a UML 2.0 state machine.

    Owns one or more top-level regions (more than one models an
    implicitly orthogonal machine).  Attach to a class via
    :meth:`repro.metamodel.UmlClass.add_behavior`.
    """

    _id_tag = "StateMachine"

    def __init__(self, name: str = ""):
        super().__init__(name)

    @property
    def regions(self) -> Tuple[Region, ...]:
        """Top-level regions."""
        return self.owned_of_type(Region)

    def add_region(self, name: str = "") -> Region:
        """Add a top-level region."""
        region = Region(name or f"region{len(self.regions)}")
        self._own(region)
        return region

    @property
    def region(self) -> Region:
        """The single top-level region (created on first access)."""
        regions = self.regions
        if not regions:
            return self.add_region("top")
        if len(regions) > 1:
            raise StateMachineError(
                f"machine {self.name!r} has {len(regions)} regions; "
                "use .regions"
            )
        return regions[0]

    # -- whole-machine queries ---------------------------------------------

    def all_regions(self) -> Tuple[Region, ...]:
        """Every region, including those nested in composite states."""
        return self.descendants_of_type(Region)

    def all_vertices(self) -> Tuple[Vertex, ...]:
        """Every vertex in the machine."""
        return self.descendants_of_type(Vertex)

    def all_states(self) -> Tuple[State, ...]:
        """Every state in the machine."""
        return self.descendants_of_type(State)

    def all_transitions(self) -> Tuple[Transition, ...]:
        """Every transition in the machine."""
        return self.descendants_of_type(Transition)

    def find_state(self, name: str) -> State:
        """Lookup any state in the machine by (unqualified) name."""
        for state in self.all_states():
            if state.name == name:
                return state
        raise StateMachineError(f"machine {self.name!r} has no state {name!r}")

    def validate(self) -> None:
        """Raise on basic structural defects.

        Checks: every non-empty region has an initial pseudostate whose
        single outgoing transition is triggerless and guard-free; join/
        fork arities; transitions stay inside the machine.
        """
        for region in self.all_regions():
            if region.states and region.initial is None:
                raise StateMachineError(
                    f"region {region.name!r} has states but no initial "
                    "pseudostate"
                )
            initial = region.initial
            if initial is not None:
                outs = initial.outgoing
                if len(outs) != 1:
                    raise StateMachineError(
                        f"initial pseudostate of region {region.name!r} "
                        f"must have exactly 1 outgoing transition, has {len(outs)}"
                    )
                if outs[0].triggers or outs[0].guard:
                    raise StateMachineError(
                        f"initial transition in region {region.name!r} must "
                        "be triggerless and unguarded"
                    )
        for vertex in self.all_vertices():
            if isinstance(vertex, Pseudostate):
                if vertex.kind is PseudostateKind.FORK and len(vertex.outgoing) < 2:
                    raise StateMachineError(
                        f"fork {vertex.name!r} needs >= 2 outgoing transitions"
                    )
                if vertex.kind is PseudostateKind.JOIN and len(vertex.incoming) < 2:
                    raise StateMachineError(
                        f"join {vertex.name!r} needs >= 2 incoming transitions"
                    )
        machine_elements = set(id(v) for v in self.all_vertices())
        for transition in self.all_transitions():
            if (id(transition.source) not in machine_elements
                    or id(transition.target) not in machine_elements):
                raise StateMachineError(
                    f"{transition!r} crosses out of machine {self.name!r}"
                )
