"""Structure-of-arrays storage for batches of identical compiled machines.

PR 1 made a single machine fast (dispatch tables, precompiled
closures); this module makes *N identical part instances* fast.  A SoC
model instantiates the same IP block many times — eight traffic
generators, eight memories — and every instance shares one
:class:`~repro.statemachines.flatten.CompiledMachine`.  Instead of N
:class:`~repro.statemachines.flatten.CompiledRuntime` objects, a
:class:`SoaLanes` keeps the per-instance execution state in parallel
arrays indexed by *lane*:

* ``state_idx[i]`` — the active state as an integer index into the
  shared ``CompiledMachine.state_order`` (index-addressable state);
* ``clock[i]`` / ``next_due[i]`` — the lane-local clock and its
  earliest timer deadline (``inf`` when no timer is armed), so a whole
  batch answers "anything due before t?" with one C-level ``min``;
* ``contexts[i]``, ``timers[i]``, ``queues[i]``, ... — the rest of the
  per-instance state, one slot per lane.

Semantics are *by construction* identical to ``CompiledRuntime``: the
lane operations run the very same precompiled guard/effect closures,
in the same order, with the same environment-copy discipline, and emit
the same trace events (kinds as literal strings — this module, like
``flatten``, never imports :mod:`repro.engine`).  The lockstep test
suite pins batched == compiled == interpreted byte-for-byte.

The closure calling convention (``guard(runtime, env, occurrence)`` /
``effect(runtime, occurrence)``) expects a runtime object carrying
``context``/``time``/``signal_sink``/``_globals``.  ``SoaLanes`` plays
that role itself as a *cursor*: before running a lane's closures it
points its ``context``/``time``/``signal_sink`` attributes at the
lane's slots.  Execution is single-threaded and lane dispatch never
nests (an effect's ``send`` only schedules — it never runs another
lane inline), so one cursor serves the whole batch.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..asl import SentSignal
from ..errors import StateMachineError
from .events import EventKind, EventOccurrence, TimeEvent
from .flatten import _BASE_GLOBALS, CompiledMachine, CompiledState

_INF = float("inf")


class SoaLanes:
    """Parallel-array execution state for N lanes of one compiled machine."""

    __slots__ = (
        "compiled", "trace_bus",
        # parallel per-lane arrays
        "state_idx", "clock", "next_due", "terminated", "started",
        "contexts", "sinks", "timers", "timer_seq", "queues", "draining",
        "parts", "initial_contexts",
        # cursor fields: valid only while a lane's closures execute
        "context", "time", "signal_sink",
        "_globals", "_states",
    )

    def __init__(self, compiled: CompiledMachine, trace_bus: Any = None):
        self.compiled = compiled
        self.trace_bus = trace_bus
        self.state_idx: List[int] = []      # -1 = no active state
        self.clock: List[float] = []
        self.next_due: List[float] = []
        self.terminated: List[bool] = []
        self.started: List[bool] = []
        self.contexts: List[Dict[str, Any]] = []
        self.sinks: List[Optional[Callable]] = []
        #: per lane: live timers as (due, seq, TimeEvent)
        self.timers: List[List[Tuple[float, int, TimeEvent]]] = []
        self.timer_seq: List[int] = []
        self.queues: List[deque] = []
        self.draining: List[bool] = []
        #: per lane: part name stamped on trace events
        self.parts: List[str] = []
        self.initial_contexts: List[Dict[str, Any]] = []
        self.context: Dict[str, Any] = {}
        self.time: float = 0.0
        self.signal_sink: Optional[Callable] = None
        self._globals = dict(_BASE_GLOBALS)
        self._globals["_send"] = self._emit
        self._states: Tuple[CompiledState, ...] = compiled.state_order

    @property
    def width(self) -> int:
        """Number of lanes in the batch."""
        return len(self.clock)

    def add_lane(self, context: Optional[Dict[str, Any]],
                 sink: Optional[Callable], part_name: str) -> int:
        """Append a fresh, unstarted lane; returns its index."""
        self.state_idx.append(-1)
        self.clock.append(0.0)
        self.next_due.append(_INF)
        self.terminated.append(False)
        self.started.append(False)
        self.contexts.append(dict(context or {}))
        self.sinks.append(sink)
        self.timers.append([])
        self.timer_seq.append(0)
        self.queues.append(deque())
        self.draining.append(False)
        self.parts.append(part_name)
        self.initial_contexts.append(dict(context or {}))
        return len(self.clock) - 1

    # -- batch-level fast paths -------------------------------------------

    def min_due(self) -> float:
        """Earliest timer deadline across every lane (``inf`` if none)."""
        return min(self.next_due) if self.next_due else _INF

    def bulk_clock(self, now: float) -> None:
        """Advance every lagging lane clock to ``now`` without stepping.

        Only valid when ``min_due() > now``: with no due timer, a
        serial per-lane ``step(now)`` would fire nothing and emit
        nothing, so a plain clock assignment is observably identical
        regardless of lane order.
        """
        clock = self.clock
        for i, t in enumerate(clock):
            if t < now:
                clock[i] = now

    # -- lane operations (CompiledRuntime semantics) ----------------------

    def start_lane(self, i: int) -> None:
        if self.started[i]:
            raise StateMachineError("runtime already started")
        self.started[i] = True
        self.context = self.contexts[i]
        self.time = self.clock[i]
        self.signal_sink = self.sinks[i]
        effect = self.compiled.initial_effect
        if effect is not None:
            effect(self, None)
        self._enter_lane(i, self.compiled.initial_state, None)
        self._recompute_due(i)

    def send_lane(self, i: int, signal: str,
                  arguments: Dict[str, Any]) -> None:
        """Deliver a signal occurrence and run the lane to completion."""
        self.dispatch_lane(
            i, EventOccurrence(signal, EventKind.SIGNAL, arguments))

    def dispatch_lane(self, i: int, occurrence: EventOccurrence) -> None:
        if not self.started[i]:
            raise StateMachineError("call start() before dispatching events")
        queue = self.queues[i]
        if self.draining[i]:
            queue.append(occurrence)
            return  # re-entrant dispatch from an action: queue only
        self.draining[i] = True
        try:
            if queue:  # leftovers (restored snapshot) go first, in order
                queue.append(occurrence)
            else:
                self._rtc_lane(i, occurrence)
            while queue:
                self._rtc_lane(i, queue.popleft())
        finally:
            self.draining[i] = False
            self._recompute_due(i)

    def advance_lane(self, i: int, deadline: float) -> None:
        """Advance lane ``i`` to *absolute* time ``deadline``, firing due
        timers in (due, seq) order — ``CompiledRuntime.step`` semantics."""
        if deadline <= self.clock[i]:
            return
        if not self.started[i]:
            raise StateMachineError("call start() before dispatching events")
        if self.next_due[i] > deadline:
            self.clock[i] = deadline
            return
        timers = self.timers[i]
        while True:
            best = None
            for timer in timers:
                if timer[0] <= deadline and (best is None or timer < best):
                    best = timer
            if best is None:
                break
            timers.remove(best)
            self.clock[i] = best[0]
            event = best[2]
            self.dispatch_lane(i, EventOccurrence(event.name, EventKind.TIME,
                                                  source=event))
            timers = self.timers[i]
        self.clock[i] = deadline
        self._recompute_due(i)

    # -- checkpoint / restore / reset -------------------------------------

    def checkpoint_lane(self, i: int) -> Dict[str, Any]:
        """One lane's state, in ``CompiledRuntime.snapshot`` form."""
        index = self.state_idx[i]
        return {
            "state": self._states[index].name if index >= 0 else None,
            "timers": list(self.timers[i]),
            "timer_seq": self.timer_seq[i],
            "time": self.clock[i],
            "terminated": self.terminated[i],
            "context": dict(self.contexts[i]),
            "started": self.started[i],
            "queue": list(self.queues[i]),
        }

    def restore_lane(self, i: int, snap: Dict[str, Any]) -> None:
        name = snap["state"]
        self.state_idx[i] = (self.compiled.state_index[name]
                             if name is not None else -1)
        self.timers[i] = list(snap["timers"])
        self.timer_seq[i] = snap["timer_seq"]
        self.clock[i] = snap["time"]
        self.terminated[i] = snap["terminated"]
        self.contexts[i] = dict(snap["context"])
        self.started[i] = snap["started"]
        self.queues[i] = deque(snap.get("queue", ()))
        self._recompute_due(i)

    def reset_lane(self, i: int) -> None:
        """Back to a pristine, unstarted lane (the restart path)."""
        self.state_idx[i] = -1
        self.clock[i] = 0.0
        self.next_due[i] = _INF
        self.terminated[i] = False
        self.started[i] = False
        self.contexts[i] = dict(self.initial_contexts[i])
        self.timers[i] = []
        self.timer_seq[i] = 0
        self.queues[i] = deque()
        self.draining[i] = False

    def active_lane_names(self, i: int) -> Tuple[str, ...]:
        index = self.state_idx[i]
        return (self._states[index].name,) if index >= 0 else ()

    # -- machinery ---------------------------------------------------------

    def _emit(self, signal: str, target: Any = None,
              **arguments: Any) -> None:
        """Target of transpiled ``send`` statements (cursor-routed)."""
        sink = self.signal_sink
        if sink is not None:
            sink(SentSignal(signal, arguments, target))

    def _rtc_lane(self, i: int, occurrence: EventOccurrence) -> bool:
        """One run-to-completion step for lane ``i`` (CompiledRuntime._rtc)."""
        now = self.clock[i]
        bus = self.trace_bus
        tracing = bus is not None and bus.engine_active
        part = self.parts[i]
        event_cause = None
        if tracing:
            record = bus.emit("event", now, part,
                              {"event": occurrence.name})
            if bus.causal and record is not None:
                # this dispatch is now the cause of whatever it fires
                event_cause = record.ordinal
                bus.cause = event_cause
        index = self.state_idx[i]
        if index < 0:
            return False
        state = self._states[index]
        if occurrence.kind is EventKind.TIME:
            candidates = state.by_timer.get(id(occurrence.source))
        else:
            candidates = state.by_key.get((occurrence.kind, occurrence.name))
        if not candidates:
            return False
        # point the closure cursor at this lane
        context = self.contexts[i]
        self.context = context
        self.time = now
        self.signal_sink = self.sinks[i]
        if len(candidates) == 1 and candidates[0].guard is None:
            enabled = candidates
        else:
            env = dict(context)
            env["event"] = dict(occurrence.parameters)
            env["event_name"] = occurrence.name
            env["now"] = now
            enabled = [candidate for candidate in candidates
                       if candidate.guard is None
                       or candidate.guard(self, env, occurrence)]
        fired = False
        for candidate in enabled:
            fired = True
            if tracing:
                record = bus.emit("transition", now, part,
                                  {"source": candidate.source_name,
                                   "target": candidate.target.name,
                                   "event": occurrence.name})
                if bus.causal and record is not None:
                    # exits, the effect's sends and the entry descend
                    # from this firing
                    bus.cause = record.ordinal
            effect = candidate.effect
            if candidate.internal:
                if effect is not None:
                    effect(self, occurrence)
                if event_cause is not None:
                    bus.cause = event_cause
                continue
            exit_action = state.exit
            if exit_action is not None:
                exit_action(self, occurrence)
            if tracing:
                bus.emit("state_exit", now, part, {"state": state.name})
            self.timers[i].clear()
            if effect is not None:
                effect(self, occurrence)
            self._enter_lane(i, candidate.target, occurrence)
            if event_cause is not None:
                bus.cause = event_cause
            break
        return fired

    def _enter_lane(self, i: int, state: CompiledState,
                    occurrence: Optional[EventOccurrence]) -> None:
        self.state_idx[i] = state.index
        bus = self.trace_bus
        if bus is not None and bus.engine_active:
            bus.emit("state_enter", self.clock[i], self.parts[i],
                     {"state": state.name})
        if state.entry is not None:
            state.entry(self, occurrence)
        if state.do_activity is not None:
            state.do_activity(self, occurrence)
        if state.timer_specs:
            now = self.clock[i]
            seq = self.timer_seq[i]
            timers = self.timers[i]
            for after, event in state.timer_specs:
                seq += 1
                timers.append((now + after, seq, event))
            self.timer_seq[i] = seq

    def _recompute_due(self, i: int) -> None:
        timers = self.timers[i]
        # (due, seq, event) tuples order by due first, so min() of the
        # tuples yields the earliest deadline without a genexpr
        self.next_due[i] = min(timers)[0] if timers else _INF

    def __repr__(self) -> str:
        return (f"<SoaLanes {self.compiled.machine.name!r} "
                f"lanes={len(self.clock)}>")
