"""Events and triggers for state machines.

UML distinguishes the *event type* declared on a transition trigger
(signal event, call event, time event, change event) from the *event
occurrence* dispatched at run time.  :class:`EventOccurrence` is the
runtime object; the ``*Event`` classes are the declared types.

Completion events are synthesized internally by the runtime when a
state finishes its doActivity / nested regions; they are matched by
triggerless transitions.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional

from ..metamodel.element import Element


class EventKind(enum.Enum):
    """Classification of event occurrences."""

    SIGNAL = "signal"
    CALL = "call"
    TIME = "time"
    CHANGE = "change"
    COMPLETION = "completion"


class Event(Element):
    """Abstract declared event type."""

    _id_tag = "Event"

    kind = EventKind.SIGNAL

    def __init__(self, name: str = ""):
        super().__init__()
        self.name = name

    def matches(self, occurrence: "EventOccurrence") -> bool:
        """True when the runtime occurrence satisfies this declared event."""
        return occurrence.kind is self.kind and occurrence.name == self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class SignalEvent(Event):
    """Receipt of an asynchronous signal with the given name."""

    _id_tag = "SignalEvent"
    kind = EventKind.SIGNAL


class CallEvent(Event):
    """Receipt of a (synchronous) operation call request."""

    _id_tag = "CallEvent"
    kind = EventKind.CALL


class TimeEvent(Event):
    """Expiry of a (relative) time duration after state entry.

    ``after`` is the duration in the runtime's time unit.  Absolute time
    events are not modelled; the paper's SoC context only needs relative
    timeouts (``after (n cycles)``).
    """

    _id_tag = "TimeEvent"
    kind = EventKind.TIME

    def __init__(self, after: float):
        super().__init__(f"after({after})")
        if after < 0:
            raise ValueError("time events need a non-negative duration")
        self.after = after

    def matches(self, occurrence: "EventOccurrence") -> bool:
        return occurrence.kind is EventKind.TIME and occurrence.source is self


class ChangeEvent(Event):
    """A boolean condition (ASL expression) became true.

    The runtime re-evaluates the condition after every run-to-completion
    step and synthesizes an occurrence on each false→true edge.
    """

    _id_tag = "ChangeEvent"
    kind = EventKind.CHANGE

    def __init__(self, condition: str):
        super().__init__(f"when({condition})")
        self.condition = condition

    def matches(self, occurrence: "EventOccurrence") -> bool:
        return occurrence.kind is EventKind.CHANGE and occurrence.source is self


class CompletionEvent(Event):
    """Synthetic event emitted when a state completes (internal use)."""

    _id_tag = "CompletionEvent"
    kind = EventKind.COMPLETION

    def __init__(self, state_id: str):
        super().__init__(f"completion({state_id})")
        self.state_id = state_id


class EventOccurrence:
    """A concrete event dispatched into a state machine execution.

    ``parameters`` carries the payload (signal attributes / call
    arguments) and is exposed to guards and effects as the ASL variable
    ``event``.
    """

    __slots__ = ("name", "kind", "parameters", "source")

    def __init__(self, name: str, kind: EventKind = EventKind.SIGNAL,
                 parameters: Optional[Dict[str, Any]] = None,
                 source: Optional[Event] = None):
        self.name = name
        self.kind = kind
        self.parameters = dict(parameters) if parameters else {}
        self.source = source

    @classmethod
    def signal(cls, name: str, **parameters: Any) -> "EventOccurrence":
        """Convenience constructor for a signal occurrence."""
        return cls(name, EventKind.SIGNAL, parameters)

    @classmethod
    def call(cls, name: str, **parameters: Any) -> "EventOccurrence":
        """Convenience constructor for a call occurrence."""
        return cls(name, EventKind.CALL, parameters)

    def __repr__(self) -> str:
        return f"<EventOccurrence {self.kind.value} {self.name!r}>"
