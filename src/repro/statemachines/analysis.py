"""Static analysis of state machines.

Checks a hardware designer would expect from an FSM linter: state
reachability, dead transitions, potential nondeterminism, and sink
(deadlock) states.  Built on :mod:`networkx` digraphs over the state
machine's vertex/transition structure.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from .events import ChangeEvent, TimeEvent
from .kernel import (
    FinalState,
    Pseudostate,
    PseudostateKind,
    State,
    StateMachine,
    Transition,
    Vertex,
)


def vertex_graph(machine: StateMachine) -> "nx.DiGraph":
    """The machine as a digraph: vertices are nodes, transitions edges.

    Containment is modelled with auxiliary edges from each composite
    state to its regions' initial pseudostates (entering the composite
    reaches the nested defaults), and from every nested vertex to its
    composite's outgoing scope (a nested active state can leave via the
    composite's transitions — reachability-wise the composite's edges
    apply).
    """
    graph = nx.DiGraph()
    for vertex in machine.all_vertices():
        graph.add_node(vertex.xmi_id, element=vertex)
    for transition in machine.all_transitions():
        graph.add_edge(transition.source.xmi_id, transition.target.xmi_id,
                       element=transition)
    for state in machine.all_states():
        for region in state.regions:
            initial = region.initial
            if initial is not None:
                graph.add_edge(state.xmi_id, initial.xmi_id, element=None)
            history = region.history(False) or region.history(True)
            if history is not None:
                graph.add_edge(state.xmi_id, history.xmi_id, element=None)
    return graph


def _entry_vertices(machine: StateMachine) -> List[Vertex]:
    return [region.initial for region in machine.regions
            if region.initial is not None]


def reachable_states(machine: StateMachine) -> Tuple[State, ...]:
    """States reachable from the machine's initial pseudostates."""
    graph = vertex_graph(machine)
    reached: Set[str] = set()
    for entry in _entry_vertices(machine):
        reached |= {entry.xmi_id} | nx.descendants(graph, entry.xmi_id)
    return tuple(s for s in machine.all_states() if s.xmi_id in reached)


def unreachable_states(machine: StateMachine) -> Tuple[State, ...]:
    """States no initial pseudostate can ever reach."""
    reached = {s.xmi_id for s in reachable_states(machine)}
    return tuple(s for s in machine.all_states() if s.xmi_id not in reached)


def dead_transitions(machine: StateMachine) -> Tuple[Transition, ...]:
    """Transitions whose source is unreachable (can never fire)."""
    unreachable = {s.xmi_id for s in unreachable_states(machine)}
    dead = []
    for transition in machine.all_transitions():
        if transition.source.xmi_id in unreachable:
            dead.append(transition)
    return tuple(dead)


def nondeterministic_choices(machine: StateMachine) -> Tuple[Tuple[Transition, Transition], ...]:
    """Pairs of same-source transitions that can both fire on one event.

    Reported when two transitions share a source and a trigger name and
    neither carries a guard — the classic unintentional-nondeterminism
    lint.  Guarded pairs are assumed disjoint (guards are not solved).
    """
    by_source: Dict[str, List[Transition]] = {}
    for transition in machine.all_transitions():
        by_source.setdefault(transition.source.xmi_id, []).append(transition)
    conflicts = []
    for transitions in by_source.values():
        for i, first in enumerate(transitions):
            for second in transitions[i + 1:]:
                if first.guard is not None or second.guard is not None:
                    continue
                first_names = {e.name for e in first.triggers}
                second_names = {e.name for e in second.triggers}
                if first.is_completion and second.is_completion:
                    conflicts.append((first, second))
                elif first_names & second_names:
                    conflicts.append((first, second))
    return tuple(conflicts)


def sink_states(machine: StateMachine) -> Tuple[State, ...]:
    """Non-final states with no outgoing transitions (behavioral deadlock).

    A nested state may still leave via an ancestor's transitions, so a
    state counts as a sink only when neither it nor any enclosing state
    has an outgoing transition.
    """
    sinks = []
    for state in machine.all_states():
        if isinstance(state, FinalState) or state.is_composite:
            continue
        scope = (state,) + state.ancestor_states()
        if not any(v.outgoing for v in scope):
            sinks.append(state)
    return tuple(sinks)


def can_terminate(machine: StateMachine) -> bool:
    """True when a TERMINATE pseudostate is reachable."""
    graph = vertex_graph(machine)
    terminators = [v for v in machine.all_vertices()
                   if isinstance(v, Pseudostate)
                   and v.kind is PseudostateKind.TERMINATE]
    if not terminators:
        return False
    reached: Set[str] = set()
    for entry in _entry_vertices(machine):
        reached |= {entry.xmi_id} | nx.descendants(graph, entry.xmi_id)
    return any(t.xmi_id in reached for t in terminators)


def uses_time(machine: StateMachine) -> bool:
    """True when any transition is triggered by a time event."""
    return any(isinstance(e, TimeEvent)
               for t in machine.all_transitions() for e in t.triggers)


def uses_change_events(machine: StateMachine) -> bool:
    """True when any transition is triggered by a change event."""
    return any(isinstance(e, ChangeEvent)
               for t in machine.all_transitions() for e in t.triggers)


def completion_livelocks(machine: StateMachine) -> Tuple[Tuple[State, ...], ...]:
    """Cycles of guardless completion transitions between simple states.

    Such a cycle is a guaranteed run-to-completion livelock: each state
    completes immediately on entry and chains to the next forever.  The
    runtime's ``max_chain`` guard catches it dynamically; this analysis
    finds it statically.
    """
    graph = nx.DiGraph()
    for transition in machine.all_transitions():
        source, target = transition.source, transition.target
        if (isinstance(source, State) and isinstance(target, State)
                and source.is_simple and target.is_simple
                and not isinstance(source, FinalState)
                and not isinstance(target, FinalState)
                and transition.is_completion
                and transition.guard is None):
            graph.add_edge(source.xmi_id, target.xmi_id)
    by_id = {s.xmi_id: s for s in machine.all_states()}
    cycles = []
    for component in nx.strongly_connected_components(graph):
        if len(component) > 1 or any(
                graph.has_edge(node, node) for node in component):
            cycles.append(tuple(sorted(
                (by_id[node] for node in component if node in by_id),
                key=lambda s: s.name)))
    return tuple(c for c in cycles if c)


def lint(machine: StateMachine) -> Dict[str, Tuple]:
    """Run every analysis; returns a report dict keyed by finding kind."""
    return {
        "unreachable_states": unreachable_states(machine),
        "dead_transitions": dead_transitions(machine),
        "nondeterministic_choices": nondeterministic_choices(machine),
        "sink_states": sink_states(machine),
        "completion_livelocks": completion_livelocks(machine),
    }


def is_clean(machine: StateMachine) -> bool:
    """True when :func:`lint` reports no findings."""
    return not any(lint(machine).values())
