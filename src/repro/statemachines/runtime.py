"""Run-to-completion execution of UML state machines.

:class:`StateMachineRuntime` interprets a
:class:`~repro.statemachines.kernel.StateMachine` with the STATEMATE /
UML 2.0 semantics the paper points at: run-to-completion event
processing, innermost-first conflict resolution, orthogonal-region
concurrency within a step, entry/exit action ordering, history
restoration, choice/junction/fork/join pseudostates, time events,
change events, event deferral and completion events.

Guards and actions may be Python callables ``f(ctx, event)`` or ASL
source strings interpreted by :mod:`repro.asl` against the runtime's
``context`` dictionary (the xUML link the paper describes).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import StateMachineError
from .events import (
    ChangeEvent,
    EventKind,
    EventOccurrence,
    TimeEvent,
)
from .kernel import (
    FinalState,
    Pseudostate,
    PseudostateKind,
    Region,
    State,
    StateMachine,
    Transition,
    TransitionKind,
    Vertex,
)

#: Guard value meaning "take this branch if nothing else fired" (choices).
ELSE_GUARD = "else"


class _Timer:
    """A scheduled relative time trigger."""

    __slots__ = ("due", "transition", "event", "state", "seq")

    def __init__(self, due: float, transition: Transition, event: TimeEvent,
                 state: State, seq: int):
        self.due = due
        self.transition = transition
        self.event = event
        self.state = state
        self.seq = seq


class StateMachineRuntime:
    """Executes one state machine instance.

    ``context`` is the variable environment shared by guards, effects
    and entry/exit actions; it plays the role of the owning object's
    attribute values in xUML.
    """

    def __init__(self, machine: StateMachine,
                 context: Optional[Dict[str, Any]] = None,
                 trace: bool = False,
                 max_chain: int = 10_000,
                 signal_sink=None):
        machine.validate()
        self.machine = machine
        self.signal_sink = signal_sink
        self.context: Dict[str, Any] = dict(context or {})
        self.time: float = 0.0
        self.is_terminated = False
        self._active: Set[State] = set()
        self._shallow_history: Dict[Region, State] = {}
        self._deep_history: Dict[Region, Tuple[State, ...]] = {}
        self._queue: deque = deque()
        self._deferred: List[EventOccurrence] = []
        self._timers: List[_Timer] = []
        self._timer_seq = 0
        self._completion_emitted: Set[State] = set()
        self._change_edges: Dict[str, bool] = {}
        self._change_events: List[ChangeEvent] = []
        self._trace_enabled = trace
        self.trace: List[Tuple[float, str, str]] = []
        # Trace-bus plumbing (set by the cosim harness).  Kinds are
        # literal strings so this module never imports repro.engine;
        # test_trace_bus pins them to the constants.  Emit sites mirror
        # CompiledRuntime exactly (byte-identical streams on the
        # compilable subset).
        self.trace_bus = None
        self.trace_part = ""
        self._max_chain = max_chain
        self._started = False
        self._draining = False
        self._exit_log: Optional[Set[State]] = None
        self._outgoing: Dict[int, List[Transition]] = {}
        self._incoming: Dict[int, List[Transition]] = {}
        for transition in machine.all_transitions():
            self._outgoing.setdefault(id(transition.source), []).append(transition)
            self._incoming.setdefault(id(transition.target), []).append(transition)
            for event in transition.triggers:
                if isinstance(event, ChangeEvent):
                    self._change_events.append(event)

    def _outgoing_of(self, vertex: Vertex) -> List[Transition]:
        return self._outgoing.get(id(vertex), [])

    def _incoming_of(self, vertex: Vertex) -> List[Transition]:
        return self._incoming.get(id(vertex), [])

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def start(self) -> "StateMachineRuntime":
        """Enter the machine's default configuration (chainable)."""
        if self._started:
            raise StateMachineError("runtime already started")
        self._started = True
        for region in self.machine.regions:
            self._enter_region_default(region, None)
        self._post_step_processing()
        self._drain()
        return self

    def dispatch(self, occurrence: EventOccurrence) -> "StateMachineRuntime":
        """Queue an event occurrence and run to completion (chainable)."""
        self._require_started()
        self._queue.append(occurrence)
        self._drain()
        return self

    def send(self, name: str, **parameters: Any) -> "StateMachineRuntime":
        """Shorthand: dispatch a signal occurrence by name."""
        return self.dispatch(EventOccurrence.signal(name, **parameters))

    def call(self, name: str, **parameters: Any) -> "StateMachineRuntime":
        """Shorthand: dispatch a call occurrence by name."""
        return self.dispatch(EventOccurrence.call(name, **parameters))

    def advance_time(self, delta: float) -> "StateMachineRuntime":
        """Advance the runtime clock, firing due time triggers in order."""
        self._require_started()
        if delta < 0:
            raise StateMachineError("time cannot move backwards")
        deadline = self.time + delta
        while True:
            due = [t for t in self._timers if t.due <= deadline]
            if not due:
                break
            timer = min(due, key=lambda t: (t.due, t.seq))
            self._timers.remove(timer)
            self.time = timer.due
            if timer.state in self._active and not self.is_terminated:
                occurrence = EventOccurrence(timer.event.name, EventKind.TIME,
                                             source=timer.event)
                self._queue.append(occurrence)
                self._drain()
        self.time = deadline
        return self

    def step(self, until: float) -> "StateMachineRuntime":
        """Advance to *absolute* time ``until`` (ExecutionEngine surface).

        Idempotent when the clock is already at or past ``until``.
        """
        if until > self.time:
            self.advance_time(until - self.time)
        return self

    @property
    def active_states(self) -> Tuple[State, ...]:
        """The active configuration, outermost first."""
        return tuple(sorted(self._active,
                            key=lambda s: (len(s.ancestor_states()), s.name)))

    def active_state_names(self) -> Tuple[str, ...]:
        """Names of active states, outermost first."""
        return tuple(s.name for s in self.active_states)

    def active_leaf_names(self) -> Tuple[str, ...]:
        """Names of active *leaf* states, sorted (a canonical snapshot)."""
        leaves = [s for s in self._active
                  if not any(child in self._active
                             for region in s.regions
                             for child in region.states)]
        return tuple(sorted(s.name for s in leaves))

    def active_configuration(self) -> Tuple[str, ...]:
        """Canonical configuration names (ExecutionEngine surface)."""
        return self.active_leaf_names()

    def in_state(self, name: str) -> bool:
        """True when a state with this name is active."""
        return any(s.name == name for s in self._active)

    @property
    def is_complete(self) -> bool:
        """True when every top-level region has reached a final state."""
        return all(self._region_complete(region)
                   for region in self.machine.regions)

    # ------------------------------------------------------------------
    # snapshot / restore (checkpointing, used by flatten and tests)
    # ------------------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Alias of :meth:`snapshot` (ExecutionEngine surface)."""
        return self.snapshot()

    def snapshot(self) -> Dict[str, Any]:
        """Capture the full execution state (configuration, history,
        timers, context, clock).  Restore with :meth:`restore`."""
        return {
            "active": frozenset(self._active),
            "shallow_history": dict(self._shallow_history),
            "deep_history": dict(self._deep_history),
            "completion_emitted": set(self._completion_emitted),
            "change_edges": dict(self._change_edges),
            "deferred": list(self._deferred),
            "timers": [(t.due, t.transition, t.event, t.state, t.seq)
                       for t in self._timers],
            "timer_seq": self._timer_seq,
            "time": self.time,
            "terminated": self.is_terminated,
            "context": dict(self.context),
            "started": self._started,
            "queue": list(self._queue),
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        """Return to a state captured by :meth:`snapshot`."""
        self._active = set(snap["active"])
        self._shallow_history = dict(snap["shallow_history"])
        self._deep_history = dict(snap["deep_history"])
        self._completion_emitted = set(snap["completion_emitted"])
        self._change_edges = dict(snap["change_edges"])
        self._deferred = list(snap["deferred"])
        self._timers = [_Timer(due, transition, event, state, seq)
                        for due, transition, event, state, seq
                        in snap["timers"]]
        self._timer_seq = snap["timer_seq"]
        self.time = snap["time"]
        self.is_terminated = snap["terminated"]
        self.context = dict(snap["context"])
        self._started = snap["started"]
        self._queue = deque(snap.get("queue", ()))

    # ------------------------------------------------------------------
    # run-to-completion machinery
    # ------------------------------------------------------------------

    def _require_started(self) -> None:
        if not self._started:
            raise StateMachineError("call start() before dispatching events")

    def _drain(self) -> None:
        if self._draining:
            return  # re-entrant dispatch from an action: queue only
        self._draining = True
        try:
            guard_count = 0
            while self._queue and not self.is_terminated:
                guard_count += 1
                if guard_count > self._max_chain:
                    raise StateMachineError(
                        "run-to-completion exceeded max_chain; "
                        "likely a livelock of completion/change events"
                    )
                occurrence = self._queue.popleft()
                fired = self._rtc_step(occurrence)
                if fired:
                    self._recall_deferred()
                elif self._is_deferred(occurrence):
                    self._deferred.append(occurrence)
                    self._log("defer", occurrence.name)
                self._post_step_processing()
        finally:
            self._draining = False

    def _rtc_step(self, occurrence: EventOccurrence) -> bool:
        """Process one occurrence; returns True if any transition fired."""
        self._log("event", occurrence.name)
        bus = self.trace_bus
        event_cause = None
        if bus is not None and bus.engine_active:
            record = bus.emit("event", self.time, self.trace_part,
                              {"event": occurrence.name})
            if bus.causal and record is not None:
                # this dispatch is now the cause of whatever it fires
                event_cause = record.ordinal
                bus.cause = event_cause
        candidates = self._enabled_transitions(occurrence)
        fired_any = False
        exited: Set[State] = set()
        self._exit_log = exited
        try:
            for transition in candidates:
                if self.is_terminated:
                    break
                if not self._transition_source_active(transition):
                    continue  # conflict: an earlier firing exited this scope
                if exited and self._conflicts_with_exited(transition, exited):
                    continue  # UML: innermost-first conflict resolution
                self._fire(transition, occurrence)
                fired_any = True
                if event_cause is not None:
                    # each firing is caused by the event, not by the
                    # previous firing (orthogonal regions)
                    bus.cause = event_cause
        finally:
            self._exit_log = None
        return fired_any

    def _conflicts_with_exited(self, transition: Transition,
                               exited: Set[State]) -> bool:
        """Would firing this transition exit a state already exited?"""
        lca = self._least_common_region(transition.source, transition.target)
        main = self._scope_vertex(transition.source, lca)
        scope: Set[State] = set()
        if isinstance(transition.source, State):
            scope.add(transition.source)
        if isinstance(main, State):
            scope.add(main)
            for element in main.all_owned():
                if isinstance(element, State):
                    scope.add(element)
        return bool(scope & exited)

    def _enabled_transitions(self, occurrence: EventOccurrence) -> List[Transition]:
        """Enabled transitions, innermost sources first (UML priority)."""
        scored: List[Tuple[int, int, Transition]] = []
        order = 0
        for state in sorted(self._active, key=lambda s: s.xmi_id):
            for transition in self._outgoing_of(state):
                if self._transition_enabled(transition, occurrence):
                    depth = len(state.ancestor_states())
                    scored.append((-depth, order, transition))
                    order += 1
        scored.sort(key=lambda item: (item[0], item[1]))
        return [t for _, _, t in scored]

    def _transition_enabled(self, transition: Transition,
                            occurrence: EventOccurrence) -> bool:
        target = transition.target
        if isinstance(target, Pseudostate) and target.kind is PseudostateKind.JOIN:
            return self._join_leg_enabled(transition, target, occurrence)
        if transition.is_completion:
            matches = (occurrence.kind is EventKind.COMPLETION
                       and occurrence.name
                       == f"completion({transition.source.xmi_id})")
            if not matches:
                return False
        else:
            if not any(event.matches(occurrence) for event in transition.triggers):
                return False
        return self._guard_passes(transition.guard, occurrence)

    def _join_leg_enabled(self, leg: Transition, join: Pseudostate,
                          occurrence: EventOccurrence) -> bool:
        """A leg into a join fires only when the whole join is ready.

        The join is ready when every incoming leg's source state is
        active.  The triggering event is matched against the join's
        *outgoing* transition when that one declares triggers, otherwise
        against the completion event of this leg's source (completion-
        style join).
        """
        sources = [t.source for t in self._incoming_of(join)
                   if isinstance(t.source, State)]
        if not sources or not all(s in self._active for s in sources):
            return False
        outgoing = self._outgoing_of(join)
        if len(outgoing) != 1:
            return False
        out = outgoing[0]
        if out.triggers:
            if not any(event.matches(occurrence) for event in out.triggers):
                return False
        else:
            matches = (occurrence.kind is EventKind.COMPLETION
                       and occurrence.name
                       == f"completion({leg.source.xmi_id})")
            if not matches:
                return False
        return (self._guard_passes(leg.guard, occurrence)
                and self._guard_passes(out.guard, occurrence))

    def _transition_source_active(self, transition: Transition) -> bool:
        source = transition.source
        if isinstance(source, State):
            return source in self._active
        return True

    def _fire(self, transition: Transition, occurrence: EventOccurrence) -> None:
        self._log("fire", repr(transition))
        bus = self.trace_bus
        if bus is not None and bus.engine_active:
            record = bus.emit("transition", self.time, self.trace_part,
                              {"source": transition.source.name,
                               "target": transition.target.name,
                               "event": occurrence.name})
            if bus.causal and record is not None:
                # exits, the effect's sends and entries descend from
                # this firing
                bus.cause = record.ordinal
        if transition.kind is TransitionKind.INTERNAL:
            self._run_action(transition.effect, occurrence)
            return

        source, target = transition.source, transition.target

        # Join: the compound transition exits the whole orthogonal state.
        if (isinstance(target, Pseudostate)
                and target.kind is PseudostateKind.JOIN):
            self._fire_join(target, occurrence, first_leg=transition)
            return

        lca = self._least_common_region(source, target)
        main_source = self._scope_vertex(source, lca)
        if transition.kind is TransitionKind.LOCAL and isinstance(source, State) \
                and self._is_ancestor_state(source, target):
            # local transition: do not exit the composite source itself
            self._exit_children_of(source, occurrence)
        elif isinstance(main_source, State) and main_source in self._active:
            self._deactivate(main_source, occurrence)
        elif isinstance(source, State) and source in self._active:
            self._deactivate(source, occurrence)

        self._run_action(transition.effect, occurrence)
        self._enter_target(target, occurrence)

    def _fire_join(self, join: Pseudostate, occurrence: EventOccurrence,
                   first_leg: Transition) -> None:
        """Fire a join: exit the orthogonal composite, follow the outgoing."""
        outgoing = self._outgoing_of(join)
        if len(outgoing) != 1:
            raise StateMachineError(
                f"join {join.name!r} must have exactly one outgoing transition"
            )
        # run the effects of all incoming legs (first the triggering one)
        legs = [first_leg] + [t for t in self._incoming_of(join)
                              if t is not first_leg]
        # exit the common orthogonal ancestor of the leg sources
        sources = [t.source for t in self._incoming_of(join)
                   if isinstance(t.source, State)]
        common = self._common_ancestor_state(sources)
        if common is not None and common in self._active:
            self._deactivate(common, occurrence)
        else:
            for leg_source in sources:
                if leg_source in self._active:
                    self._deactivate(leg_source, occurrence)
        for leg in legs:
            self._run_action(leg.effect, occurrence)
        out = outgoing[0]
        self._run_action(out.effect, occurrence)
        self._enter_target(out.target, occurrence)

    # -- entering ----------------------------------------------------------

    def _enter_target(self, vertex: Vertex, occurrence: Optional[EventOccurrence]) -> None:
        self._enter_ancestors(vertex, occurrence)
        if isinstance(vertex, Pseudostate):
            self._enter_pseudostate(vertex, occurrence)
        elif isinstance(vertex, State):
            self._activate(vertex, occurrence)
            for region in vertex.regions:
                self._enter_region_default(region, occurrence)

    def _enter_ancestors(self, vertex: Vertex,
                         occurrence: Optional[EventOccurrence],
                         extra_path_regions: Optional[set] = None) -> None:
        chain = [s for s in reversed(vertex.ancestor_states())
                 if s not in self._active]
        if not chain:
            return
        path_regions = {vertex.container}
        for ancestor in vertex.ancestor_states():
            path_regions.add(ancestor.container)
        if extra_path_regions:
            path_regions |= extra_path_regions
        for composite in chain:
            self._activate(composite, occurrence)
            for region in composite.regions:
                if region not in path_regions:
                    self._enter_region_default(region, occurrence)

    def _enter_region_default(self, region: Region,
                              occurrence: Optional[EventOccurrence]) -> None:
        initial = region.initial
        if initial is None:
            return
        transition = self._outgoing_of(initial)[0]
        self._run_action(transition.effect, occurrence)
        self._enter_target(transition.target, occurrence)

    def _enter_pseudostate(self, pseudo: Pseudostate,
                           occurrence: Optional[EventOccurrence]) -> None:
        kind = pseudo.kind
        if kind is PseudostateKind.TERMINATE:
            self.is_terminated = True
            self._log("terminate", pseudo.name)
            return
        if kind in (PseudostateKind.CHOICE, PseudostateKind.JUNCTION):
            transition = self._select_branch(pseudo, occurrence)
            self._run_action(transition.effect, occurrence)
            self._enter_target(transition.target, occurrence)
            return
        if kind is PseudostateKind.FORK:
            legs = sorted(self._outgoing_of(pseudo), key=lambda t: t.xmi_id)
            # Regions explicitly targeted by any leg must not receive a
            # default entry when the shared orthogonal state is entered.
            targeted_regions = set()
            for leg in legs:
                targeted_regions.update(self._region_chain(leg.target))
            for leg in legs:
                self._run_action(leg.effect, occurrence)
                self._enter_ancestors(leg.target, occurrence,
                                      extra_path_regions=targeted_regions)
                if isinstance(leg.target, Pseudostate):
                    self._enter_pseudostate(leg.target, occurrence)
                else:
                    self._activate(leg.target, occurrence)
                    for region in leg.target.regions:
                        self._enter_region_default(region, occurrence)
            return
        if kind in (PseudostateKind.SHALLOW_HISTORY, PseudostateKind.DEEP_HISTORY):
            self._enter_history(pseudo, occurrence)
            return
        if kind is PseudostateKind.EXIT_POINT:
            # leaving through an exit point exits the enclosing composite
            region = pseudo.container
            owner = region.owner if region is not None else None
            if isinstance(owner, State) and owner in self._active:
                self._deactivate(owner, occurrence)
        if kind in (PseudostateKind.ENTRY_POINT, PseudostateKind.EXIT_POINT,
                    PseudostateKind.INITIAL):
            outgoing = self._outgoing_of(pseudo)
            if len(outgoing) != 1:
                raise StateMachineError(
                    f"{kind.value} pseudostate {pseudo.name!r} needs exactly "
                    f"one outgoing transition, has {len(outgoing)}"
                )
            transition = outgoing[0]
            self._run_action(transition.effect, occurrence)
            self._enter_target(transition.target, occurrence)
            return
        raise StateMachineError(f"unhandled pseudostate kind {kind}")

    def _enter_history(self, pseudo: Pseudostate,
                       occurrence: Optional[EventOccurrence]) -> None:
        region = pseudo.container
        if region is None:
            raise StateMachineError("history pseudostate outside a region")
        if pseudo.kind is PseudostateKind.DEEP_HISTORY:
            remembered = self._deep_history.get(region)
            if remembered:
                for leaf in remembered:
                    self._enter_target(leaf, occurrence)
                return
        else:
            last = self._shallow_history.get(region)
            if last is not None:
                self._enter_target(last, occurrence)
                return
        # no memory: default transition from the history vertex, else initial
        outgoing = self._outgoing_of(pseudo)
        if outgoing:
            transition = outgoing[0]
            self._run_action(transition.effect, occurrence)
            self._enter_target(transition.target, occurrence)
        else:
            self._enter_region_default(region, occurrence)

    def _select_branch(self, pseudo: Pseudostate,
                       occurrence: Optional[EventOccurrence]) -> Transition:
        else_branch: Optional[Transition] = None
        for transition in self._outgoing_of(pseudo):
            if isinstance(transition.guard, str) and \
                    transition.guard.strip() == ELSE_GUARD:
                else_branch = transition
                continue
            if self._guard_passes(transition.guard, occurrence):
                return transition
        if else_branch is not None:
            return else_branch
        raise StateMachineError(
            f"no enabled branch at {pseudo.kind.value} {pseudo.name!r} "
            "(and no else branch)"
        )

    def _activate(self, state: State, occurrence: Optional[EventOccurrence]) -> None:
        if state in self._active:
            return
        self._active.add(state)
        self._log("enter", state.name)
        bus = self.trace_bus
        if bus is not None and bus.engine_active:
            bus.emit("state_enter", self.time, self.trace_part,
                     {"state": state.name})
        self._run_action(state.entry, occurrence)
        self._run_action(state.do_activity, occurrence)
        for transition in self._outgoing_of(state):
            for event in transition.triggers:
                if isinstance(event, TimeEvent):
                    self._timer_seq += 1
                    self._timers.append(_Timer(self.time + event.after,
                                               transition, event, state,
                                               self._timer_seq))

    # -- exiting ------------------------------------------------------------

    def _deactivate(self, state: State, occurrence: Optional[EventOccurrence]) -> None:
        self._exit_children_of(state, occurrence)
        self._run_action(state.exit, occurrence)
        self._active.discard(state)
        if self._exit_log is not None:
            self._exit_log.add(state)
        self._completion_emitted.discard(state)
        self._timers = [t for t in self._timers if t.state is not state]
        self._log("exit", state.name)
        bus = self.trace_bus
        if bus is not None and bus.engine_active:
            bus.emit("state_exit", self.time, self.trace_part,
                     {"state": state.name})
        # record shallow history on the containing region
        region = state.container
        if region is not None and region.history(deep=False) is not None:
            self._shallow_history[region] = state

    def _exit_children_of(self, state: State,
                          occurrence: Optional[EventOccurrence]) -> None:
        for region in state.regions:
            active_children = [s for s in region.states if s in self._active]
            if region.history(deep=True) is not None:
                leaves = tuple(
                    leaf for leaf in self._active
                    if state in leaf.ancestor_states() and leaf.is_simple
                )
                if leaves:
                    self._deep_history[region] = leaves
            for child in active_children:
                self._deactivate(child, occurrence)

    # -- completion / change / deferral --------------------------------------

    def _post_step_processing(self) -> None:
        self._emit_completion_events()
        self._emit_change_events()

    def _emit_completion_events(self) -> None:
        for state in list(self._active):
            if state in self._completion_emitted:
                continue
            if not self._state_complete(state):
                continue
            if not any(t.is_completion for t in self._outgoing_of(state)):
                continue
            self._completion_emitted.add(state)
            occurrence = EventOccurrence(f"completion({state.xmi_id})",
                                         EventKind.COMPLETION)
            self._queue.append(occurrence)
            self._log("completion", state.name)

    def _state_complete(self, state: State) -> bool:
        if state.is_simple:
            return True
        return all(self._region_complete(region) for region in state.regions)

    def _region_complete(self, region: Region) -> bool:
        return any(isinstance(s, FinalState) and s in self._active
                   for s in region.states)

    def _emit_change_events(self) -> None:
        for change in self._change_events:
            value = bool(self._guard_passes(change.condition, None))
            previous = self._change_edges.get(change.xmi_id, False)
            self._change_edges[change.xmi_id] = value
            if value and not previous:
                self._queue.append(EventOccurrence(change.name,
                                                   EventKind.CHANGE,
                                                   source=change))
                self._log("change", change.name)

    def _is_deferred(self, occurrence: EventOccurrence) -> bool:
        return any(occurrence.name in state.deferrable
                   for state in self._active)

    def _recall_deferred(self) -> None:
        if not self._deferred:
            return
        recalled, self._deferred = self._deferred, []
        for occurrence in reversed(recalled):
            self._queue.appendleft(occurrence)

    # -- scope helpers ----------------------------------------------------------

    def _region_chain(self, vertex: Vertex) -> List[Region]:
        chain: List[Region] = []
        container = vertex.container
        if container is not None:
            chain.append(container)
        for ancestor in vertex.ancestor_states():
            container = ancestor.container
            if container is not None:
                chain.append(container)
        return chain

    def _least_common_region(self, source: Vertex, target: Vertex) -> Optional[Region]:
        target_regions = set(map(id, self._region_chain(target)))
        for region in self._region_chain(source):
            if id(region) in target_regions:
                return region
        return None

    def _scope_vertex(self, vertex: Vertex, lca: Optional[Region]) -> Vertex:
        """The vertex or ancestor state of it sitting directly in ``lca``."""
        if lca is None:
            return vertex
        if vertex.container is lca:
            return vertex
        for ancestor in vertex.ancestor_states():
            if ancestor.container is lca:
                return ancestor
        return vertex

    @staticmethod
    def _is_ancestor_state(maybe_ancestor: State, vertex: Vertex) -> bool:
        return maybe_ancestor in vertex.ancestor_states()

    def _common_ancestor_state(self, states: Sequence[State]) -> Optional[State]:
        if not states:
            return None
        candidate_sets = [set(map(id, s.ancestor_states())) for s in states]
        common_ids = set.intersection(*candidate_sets) if candidate_sets else set()
        for ancestor in states[0].ancestor_states():  # innermost first
            if id(ancestor) in common_ids:
                return ancestor
        return None

    # -- guard / action evaluation ------------------------------------------

    def _guard_passes(self, guard, occurrence: Optional[EventOccurrence]) -> bool:
        if guard is None:
            return True
        if callable(guard):
            return bool(guard(self.context, occurrence))
        if isinstance(guard, str):
            if guard.strip() == ELSE_GUARD:
                return False
            return bool(self._eval_asl_expression(guard, occurrence))
        raise StateMachineError(f"unsupported guard type {type(guard).__name__}")

    def _run_action(self, action, occurrence: Optional[EventOccurrence]) -> None:
        if action is None:
            return
        if callable(action):
            action(self.context, occurrence)
            return
        if isinstance(action, str):
            self._exec_asl_statements(action, occurrence)
            return
        raise StateMachineError(f"unsupported action type {type(action).__name__}")

    def _asl_environment(self, occurrence: Optional[EventOccurrence]) -> Dict[str, Any]:
        env = dict(self.context)
        env["event"] = dict(occurrence.parameters) if occurrence else {}
        env["event_name"] = occurrence.name if occurrence else ""
        env["now"] = self.time
        return env

    def _eval_asl_expression(self, source: str,
                             occurrence: Optional[EventOccurrence]) -> Any:
        from .. import asl  # deferred: keeps package import order flexible

        return asl.evaluate(source, self._asl_environment(occurrence))

    def _exec_asl_statements(self, source: str,
                             occurrence: Optional[EventOccurrence]) -> None:
        from .. import asl

        env = self._asl_environment(occurrence)
        result_env = asl.execute(source, env, signal_sink=self.signal_sink)
        for key, value in result_env.items():
            if key in ("event", "event_name", "now"):
                continue
            self.context[key] = value

    # -- tracing -----------------------------------------------------------------

    def _log(self, kind: str, detail: str) -> None:
        if self._trace_enabled:
            self.trace.append((self.time, kind, detail))
