"""UML 2.0 state machines (subsystem S2).

The StateChart variant the paper references, with STATEMATE-flavoured
run-to-completion execution, hierarchical and orthogonal states, the
full pseudostate set, semantic flattening (hierarchy -> flat FSM, the
form hardware synthesizes) and static FSM lint analyses.
"""

from .events import (
    CallEvent,
    ChangeEvent,
    CompletionEvent,
    Event,
    EventKind,
    EventOccurrence,
    SignalEvent,
    TimeEvent,
)
from .kernel import (
    FinalState,
    Pseudostate,
    PseudostateKind,
    Region,
    State,
    StateMachine,
    Transition,
    TransitionKind,
    Vertex,
)
from .runtime import ELSE_GUARD, StateMachineRuntime
from .flatten import (
    CompiledMachine,
    CompiledRuntime,
    CompilePlan,
    FlatStateMachine,
    compile_fallback_reason,
    compile_machine,
    compile_machine_cached,
    default_alphabet,
    flatten,
    flatten_cached,
)
from .soa import SoaLanes
from .compose import clone_machine, connection_point, inline_submachine
from . import analysis

__all__ = [
    "CallEvent", "ChangeEvent", "CompletionEvent", "Event", "EventKind",
    "EventOccurrence", "SignalEvent", "TimeEvent",
    "FinalState", "Pseudostate", "PseudostateKind", "Region", "State",
    "StateMachine", "Transition", "TransitionKind", "Vertex",
    "ELSE_GUARD", "StateMachineRuntime",
    "CompiledMachine", "CompiledRuntime", "CompilePlan",
    "FlatStateMachine",
    "SoaLanes",
    "compile_fallback_reason", "compile_machine",
    "compile_machine_cached",
    "default_alphabet", "flatten", "flatten_cached",
    "clone_machine", "connection_point", "inline_submachine",
    "analysis",
]
