"""A UML-RT-style profile (capsules, protocols, RT ports).

The paper names UML-RT — the real-time profile that grew out of ROOM —
as the canonical example of tailoring UML to a domain.  This compact
rendition provides the three ROOM concepts that influenced UML 2.0's
composite structures:

* ``Capsule`` — an active class communicating only through ports;
* ``Protocol`` — a named set of incoming/outgoing signal names typed
  onto ports;
* ``RTPort`` — a port playing one end of a protocol, possibly
  *conjugated* (in/out sets swapped).

Constraint: conjugated and unconjugated RT ports of the same protocol
are compatible; same-orientation ports are not.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..metamodel.components import Port
from ..metamodel.element import Element
from .core import (
    Profile,
    StereotypeApplication,
    application_of,
    has_stereotype,
)


def _constraint_protocol_signals(element: Element,
                                 application: StereotypeApplication
                                 ) -> Optional[str]:
    incoming = application.value("incoming")
    outgoing = application.value("outgoing")
    if not incoming and not outgoing:
        return "protocol declares no signals"
    overlap = set(incoming) & set(outgoing)
    if overlap:
        return f"signals {sorted(overlap)} are both incoming and outgoing"
    return None


def create_rt_profile() -> Profile:
    """Build a fresh UML-RT-style profile instance."""
    profile = Profile("UML-RT")

    capsule = profile.define("Capsule", extends=("Class", "Component"))
    capsule.add_tag("priority", int, default=0)

    protocol = profile.define("Protocol", extends=("Interface", "Class"))
    protocol.add_tag("incoming", list, default=None, required=True)
    protocol.add_tag("outgoing", list, default=None, required=True)
    protocol.add_constraint(_constraint_protocol_signals)

    rt_port = profile.define("RTPort", extends=("Port",))
    rt_port.add_tag("protocol", str, required=True)
    rt_port.add_tag("conjugated", bool, default=False)
    rt_port.add_tag("wired", bool, default=True)

    return profile


def rt_ports_compatible(port_a: Port, port_b: Port) -> bool:
    """True when two RT ports can be wired: same protocol, opposite ends."""
    if not (has_stereotype(port_a, "RTPort")
            and has_stereotype(port_b, "RTPort")):
        return False
    app_a = application_of(port_a, "RTPort")
    app_b = application_of(port_b, "RTPort")
    if app_a.value("protocol") != app_b.value("protocol"):
        return False
    return bool(app_a.value("conjugated")) != bool(app_b.value("conjugated"))
