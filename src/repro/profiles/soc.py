"""The SoC profile: the domain-specific UML subset the paper calls for.

Section 4 of the paper: "the real world things that need to be
represented have to be identified and consistently put into the right
context as UML model elements".  This profile does that identification
for SoC design:

* structural stereotypes — ``HwModule``, ``IpCore``, ``Processor``,
  ``Memory``, ``HwBus``, ``Accelerator`` on components/classes;
* interface stereotypes — ``BusMaster``, ``BusSlave``, ``ClockInput``,
  ``ResetInput`` on ports;
* data stereotypes — ``Register`` on properties, with address map
  constraints;
* annotation stereotypes — ``ClockDomain`` on packages/classes,
  ``Timing`` on operations.

Plus the hardware primitive types (``Bit``, ``BitVector``, ``Word``)
and executable constraints (register widths, unique addresses, bus
width a power of two, hardware modules must be active classes) checked
by :func:`repro.profiles.core.validate_applications`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..metamodel.classifiers import UmlClass
from ..metamodel.element import Element
from ..metamodel.types import PrimitiveType
from .core import Profile, Stereotype, StereotypeApplication

#: Register access modes.
ACCESS_MODES = ("RO", "RW", "WO", "W1C")

#: Legal register widths in bits.
REGISTER_WIDTHS = (8, 16, 32, 64)


def _constraint_register(element: Element,
                         application: StereotypeApplication) -> Optional[str]:
    width = application.value("width")
    if width not in REGISTER_WIDTHS:
        return f"register width {width} not in {REGISTER_WIDTHS}"
    address = application.value("address")
    if address is None or address < 0:
        return "register needs a non-negative address"
    if address % (width // 8) != 0:
        return (f"address {address:#x} is not aligned to the register "
                f"width {width}")
    access = application.value("access")
    if access not in ACCESS_MODES:
        return f"access mode {access!r} not in {ACCESS_MODES}"
    return None


def _constraint_unique_register_addresses(
        element: Element,
        application: StereotypeApplication) -> Optional[str]:
    """Register addresses must be unique within the owning classifier."""
    from .core import applications_of, has_stereotype

    owner = element.owner
    if owner is None:
        return None
    mine = application.value("address")
    for sibling in owner.owned_elements:
        if sibling is element or not has_stereotype(sibling, "Register"):
            continue
        for other in applications_of(sibling):
            if other.stereotype.name == "Register" \
                    and other.value("address") == mine:
                return (f"address {mine:#x} collides with register "
                        f"{getattr(sibling, 'name', '?')!r}")
    return None


def _constraint_hw_module_active(element: Element,
                                 application: StereotypeApplication
                                 ) -> Optional[str]:
    if isinstance(element, UmlClass) and not element.is_active:
        return "hardware modules must be active classes"
    return None


def _constraint_bus_width(element: Element,
                          application: StereotypeApplication
                          ) -> Optional[str]:
    width = application.value("width")
    if width <= 0 or width & (width - 1):
        return f"bus width {width} must be a positive power of two"
    return None


def _constraint_memory_size(element: Element,
                            application: StereotypeApplication
                            ) -> Optional[str]:
    size = application.value("size_bytes")
    if size <= 0:
        return f"memory size must be positive, got {size}"
    return None


def _constraint_frequency(element: Element,
                          application: StereotypeApplication
                          ) -> Optional[str]:
    frequency = application.value("frequency_mhz")
    if frequency is not None and frequency <= 0:
        return f"frequency must be positive, got {frequency}"
    return None


def create_soc_profile() -> Profile:
    """Build a fresh SoC profile instance.

    Each call returns an independent profile (models serialize their
    profile alongside the model, so shared global state is avoided).
    """
    profile = Profile("SoC")

    # hardware primitive types
    for name in ("Bit", "BitVector", "Word", "Halfword", "Byte"):
        profile.add(PrimitiveType(name))

    hw_module = profile.define("HwModule", extends=("Class", "Component"))
    hw_module.add_tag("clock_domain", str, default="core")
    hw_module.add_tag("area_um2", float, default=0.0)
    hw_module.add_tag("power_mw", float, default=0.0)
    hw_module.add_constraint(_constraint_hw_module_active)

    ip_core = profile.define("IpCore", extends=("Component",))
    ip_core.specialize(hw_module)
    ip_core.add_tag("vendor", str, default="")
    ip_core.add_tag("version", str, default="1.0")
    ip_core.add_tag("configurable", bool, default=False)

    processor = profile.define("Processor", extends=("Component",))
    processor.specialize(hw_module)
    processor.add_tag("isa", str, default="rv32i")
    processor.add_tag("frequency_mhz", float, default=100.0)
    processor.add_constraint(_constraint_frequency)

    memory = profile.define("Memory", extends=("Component",))
    memory.specialize(hw_module)
    memory.add_tag("size_bytes", int, default=1024, required=True)
    memory.add_tag("latency_cycles", int, default=1)
    memory.add_constraint(_constraint_memory_size)

    accelerator = profile.define("Accelerator", extends=("Component",))
    accelerator.specialize(hw_module)
    accelerator.add_tag("function", str, default="")

    hw_bus = profile.define("HwBus", extends=("Component", "Association"))
    hw_bus.add_tag("width", int, default=32, required=True)
    hw_bus.add_tag("protocol", str, default="simple")
    hw_bus.add_tag("arbitration", str, default="fixed-priority")
    hw_bus.add_constraint(_constraint_bus_width)

    bus_master = profile.define("BusMaster", extends=("Port",))
    bus_master.add_tag("priority", int, default=0)

    profile.define("BusSlave", extends=("Port",))

    clock_input = profile.define("ClockInput", extends=("Port",))
    clock_input.add_tag("frequency_mhz", float, default=None)
    clock_input.add_constraint(_constraint_frequency)

    profile.define("ResetInput", extends=("Port",))

    register = profile.define("Register", extends=("Property",))
    register.add_tag("address", int, required=True)
    register.add_tag("width", int, default=32)
    register.add_tag("access", str, default="RW")
    register.add_tag("reset_value", int, default=0)
    register.add_constraint(_constraint_register)
    register.add_constraint(_constraint_unique_register_addresses)

    clock_domain = profile.define("ClockDomain",
                                  extends=("Package", "Class"))
    clock_domain.add_tag("frequency_mhz", float, default=100.0,
                         required=True)
    clock_domain.add_constraint(_constraint_frequency)

    timing = profile.define("Timing", extends=("Operation",))
    timing.add_tag("latency_cycles", int, default=1)
    timing.add_tag("pipelined", bool, default=False)

    software = profile.define("Software", extends=("Class", "Component"))
    software.add_tag("language", str, default="c")
    software.add_tag("rtos_task", bool, default=False)

    return profile


#: Stereotype names whose targets the MDA hardware mapping treats as
#: synthesizable hardware.
HARDWARE_STEREOTYPES = frozenset({
    "HwModule", "IpCore", "Processor", "Memory", "Accelerator", "HwBus",
})
