"""The UML profile mechanism: stereotypes, tagged values, application.

The paper: a profile "defines a relevant domain-specific UML subset
with semantic extensions for the supported model elements".  This
module implements that mechanism generically; the SoC profile
(:mod:`repro.profiles.soc`) and the UML-RT-style profile
(:mod:`repro.profiles.rt`) instantiate it.

A :class:`Stereotype` names the metaclasses it extends (by metamodel
class name, subclass-aware), declares typed tag definitions with
defaults, and may attach *constraint* callables — executable
well-formedness rules evaluated by :func:`validate_applications`.
Applications are stored on the target element (``element`` keeps its
applications alive for XMI round-trips).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..errors import ProfileError
from ..metamodel.element import Element
from ..metamodel.namespaces import NamedElement, Package, PackageableElement

#: A constraint: f(element, application) -> error message or None.
Constraint = Callable[[Element, "StereotypeApplication"], Optional[str]]


class TagDefinition(NamedElement):
    """A typed attribute of a stereotype (a 'tag')."""

    _id_tag = "TagDefinition"

    def __init__(self, name: str, tag_type: type = str,
                 default: Any = None, required: bool = False):
        super().__init__(name)
        self.tag_type = tag_type
        self.default = default
        self.required = required

    def check(self, value: Any) -> None:
        """Raise :class:`ProfileError` when ``value`` has the wrong type."""
        if value is None:
            if self.required:
                raise ProfileError(f"tag {self.name!r} is required")
            return
        if self.tag_type is float and isinstance(value, int):
            return  # ints are acceptable reals
        if not isinstance(value, self.tag_type):
            raise ProfileError(
                f"tag {self.name!r} expects {self.tag_type.__name__}, "
                f"got {type(value).__name__}")


class Stereotype(NamedElement):
    """A domain-specific extension of one or more metaclasses."""

    _id_tag = "Stereotype"

    def __init__(self, name: str, extends: Tuple[str, ...] = ("Element",)):
        super().__init__(name)
        self.extends = tuple(extends)
        self.constraints: List[Constraint] = []
        self._specializes: Optional[Stereotype] = None

    # -- tags ---------------------------------------------------------------

    @property
    def tags(self) -> Tuple[TagDefinition, ...]:
        """Own tag definitions plus inherited ones."""
        own = self.owned_of_type(TagDefinition)
        if self._specializes is None:
            return own
        own_names = {t.name for t in own}
        inherited = tuple(t for t in self._specializes.tags
                          if t.name not in own_names)
        return own + inherited

    def add_tag(self, name: str, tag_type: type = str, default: Any = None,
                required: bool = False) -> TagDefinition:
        """Declare a tag definition."""
        if any(t.name == name for t in self.tags):
            raise ProfileError(
                f"stereotype {self.name!r} already has tag {name!r}")
        tag = TagDefinition(name, tag_type, default, required)
        self._own(tag)
        return tag

    def tag(self, name: str) -> TagDefinition:
        """Lookup a tag definition by name."""
        for tag in self.tags:
            if tag.name == name:
                return tag
        raise ProfileError(f"stereotype {self.name!r} has no tag {name!r}")

    # -- inheritance -----------------------------------------------------------

    def specialize(self, general: "Stereotype") -> "Stereotype":
        """Declare this stereotype a specialization of ``general``."""
        ancestor: Optional[Stereotype] = general
        while ancestor is not None:
            if ancestor is self:
                raise ProfileError(
                    f"stereotype cycle through {self.name!r}")
            ancestor = ancestor._specializes
        self._specializes = general
        return self

    @property
    def specializes(self) -> Optional["Stereotype"]:
        """The generalized stereotype, if any."""
        return self._specializes

    def is_kind_of(self, other: "Stereotype") -> bool:
        """True when self is ``other`` or specializes it (transitively)."""
        node: Optional[Stereotype] = self
        while node is not None:
            if node is other:
                return True
            node = node._specializes
        return False

    # -- applicability ------------------------------------------------------------

    def applicable_to(self, element: Element) -> bool:
        """True when the element's metaclass (or a base) is extended."""
        metaclass_names = {cls.__name__ for cls in type(element).__mro__}
        # UmlClass is the Python-safe spelling of the UML metaclass 'Class'
        if "UmlClass" in metaclass_names:
            metaclass_names.add("Class")
        return bool(metaclass_names & set(self._all_extends()))

    def _all_extends(self) -> Tuple[str, ...]:
        collected = list(self.extends)
        node = self._specializes
        while node is not None:
            collected.extend(node.extends)
            node = node._specializes
        return tuple(collected)

    def add_constraint(self, constraint: Constraint) -> "Stereotype":
        """Attach an executable well-formedness constraint (chainable)."""
        self.constraints.append(constraint)
        return self

    def __repr__(self) -> str:
        return f"<Stereotype <<{self.name}>>>"


class StereotypeApplication(Element):
    """The application of a stereotype to a model element."""

    _id_tag = "StereotypeApplication"

    def __init__(self, stereotype: Stereotype, element: Element,
                 values: Optional[Dict[str, Any]] = None):
        super().__init__()
        self.stereotype = stereotype
        self.element = element
        self._values: Dict[str, Any] = {}
        declared = {tag.name: tag for tag in stereotype.tags}
        for key, value in (values or {}).items():
            if key not in declared:
                raise ProfileError(
                    f"stereotype {stereotype.name!r} has no tag {key!r}")
            declared[key].check(value)
            self._values[key] = value
        for tag in stereotype.tags:
            if tag.required and tag.name not in self._values:
                raise ProfileError(
                    f"applying <<{stereotype.name}>> requires tag "
                    f"{tag.name!r}")

    def value(self, tag_name: str) -> Any:
        """The tagged value (falling back to the tag's default)."""
        if tag_name in self._values:
            return self._values[tag_name]
        return self.stereotype.tag(tag_name).default

    def set_value(self, tag_name: str, value: Any) -> None:
        """Update a tagged value (type-checked)."""
        tag = self.stereotype.tag(tag_name)
        tag.check(value)
        self._values[tag_name] = value

    @property
    def values(self) -> Dict[str, Any]:
        """All explicit tagged values (defaults not materialized)."""
        return dict(self._values)

    def __repr__(self) -> str:
        return f"<<{self.stereotype.name}>> on {self.element!r}"


class Profile(Package):
    """A package of stereotypes defining a domain-specific UML subset."""

    _id_tag = "Profile"

    @property
    def stereotypes(self) -> Tuple[Stereotype, ...]:
        """Directly owned stereotypes."""
        return self.owned_of_type(Stereotype)

    def define(self, name: str,
               extends: Tuple[str, ...] = ("Element",)) -> Stereotype:
        """Create and own a stereotype."""
        if any(s.name == name for s in self.stereotypes):
            raise ProfileError(
                f"profile {self.name!r} already defines <<{name}>>")
        stereotype = Stereotype(name, extends)
        self._own(stereotype)
        return stereotype

    def stereotype(self, name: str) -> Stereotype:
        """Lookup a stereotype by name."""
        for stereotype in self.stereotypes:
            if stereotype.name == name:
                return stereotype
        raise ProfileError(f"profile {self.name!r} has no <<{name}>>")


# ---------------------------------------------------------------------------
# application helpers (applications live on the target element)
# ---------------------------------------------------------------------------

_APPLICATIONS_ATTR = "_stereotype_applications"


def apply_stereotype(element: Element, stereotype: Stereotype,
                     **values: Any) -> StereotypeApplication:
    """Apply a stereotype to an element with the given tagged values."""
    if not stereotype.applicable_to(element):
        raise ProfileError(
            f"<<{stereotype.name}>> extends {stereotype.extends}, "
            f"not {type(element).__name__}")
    existing = applications_of(element)
    if any(app.stereotype is stereotype for app in existing):
        raise ProfileError(
            f"<<{stereotype.name}>> is already applied to {element!r}")
    application = StereotypeApplication(stereotype, element, values)
    applications = getattr(element, _APPLICATIONS_ATTR, None)
    if applications is None:
        applications = []
        setattr(element, _APPLICATIONS_ATTR, applications)
    applications.append(application)
    return application


def unapply_stereotype(element: Element, stereotype: Stereotype) -> None:
    """Remove a stereotype application from an element."""
    applications = getattr(element, _APPLICATIONS_ATTR, [])
    for application in applications:
        if application.stereotype is stereotype:
            applications.remove(application)
            return
    raise ProfileError(
        f"<<{stereotype.name}>> is not applied to {element!r}")


def applications_of(element: Element) -> Tuple[StereotypeApplication, ...]:
    """All stereotype applications on an element."""
    return tuple(getattr(element, _APPLICATIONS_ATTR, ()))


def stereotypes_of(element: Element) -> Tuple[Stereotype, ...]:
    """The stereotypes applied to an element."""
    return tuple(app.stereotype for app in applications_of(element))


def has_stereotype(element: Element, name: str) -> bool:
    """True when a stereotype with this name is applied (kind-aware)."""
    for stereotype in stereotypes_of(element):
        node: Optional[Stereotype] = stereotype
        while node is not None:
            if node.name == name:
                return True
            node = node.specializes
    return False


def application_of(element: Element, name: str) -> StereotypeApplication:
    """The application of the named stereotype on the element."""
    for application in applications_of(element):
        node: Optional[Stereotype] = application.stereotype
        while node is not None:
            if node.name == name:
                return application
            node = node.specializes
    raise ProfileError(f"{element!r} has no <<{name}>> application")


def tagged_value(element: Element, stereotype_name: str,
                 tag_name: str) -> Any:
    """Shortcut: the tagged value of an applied stereotype."""
    return application_of(element, stereotype_name).value(tag_name)


def validate_applications(scope: Element) -> List[str]:
    """Run every constraint of every application under ``scope``.

    Returns the list of violation messages (empty = clean).
    """
    violations: List[str] = []
    elements = [scope] + list(scope.all_owned())
    for element in elements:
        for application in applications_of(element):
            stereotype: Optional[Stereotype] = application.stereotype
            while stereotype is not None:
                for constraint in stereotype.constraints:
                    message = constraint(element, application)
                    if message:
                        violations.append(
                            f"<<{application.stereotype.name}>> on "
                            f"{getattr(element, 'name', element.xmi_id)}: "
                            f"{message}")
                stereotype = stereotype.specializes
    return violations
