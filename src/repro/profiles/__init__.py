"""UML profiles (subsystem S5): the mechanism plus two domain profiles.

:mod:`repro.profiles.core` implements stereotypes/tagged values/
constraints; :mod:`repro.profiles.soc` is the SoC profile the paper
calls for; :mod:`repro.profiles.rt` is the UML-RT example it cites.
"""

from .core import (
    Constraint,
    Profile,
    Stereotype,
    StereotypeApplication,
    TagDefinition,
    application_of,
    applications_of,
    apply_stereotype,
    has_stereotype,
    stereotypes_of,
    tagged_value,
    unapply_stereotype,
    validate_applications,
)
from .soc import (
    ACCESS_MODES,
    HARDWARE_STEREOTYPES,
    REGISTER_WIDTHS,
    create_soc_profile,
)
from .rt import create_rt_profile, rt_ports_compatible

__all__ = [
    "Constraint", "Profile", "Stereotype", "StereotypeApplication",
    "TagDefinition", "application_of", "applications_of",
    "apply_stereotype", "has_stereotype", "stereotypes_of", "tagged_value",
    "unapply_stereotype", "validate_applications",
    "ACCESS_MODES", "HARDWARE_STEREOTYPES", "REGISTER_WIDTHS",
    "create_soc_profile",
    "create_rt_profile", "rt_ports_compatible",
]
