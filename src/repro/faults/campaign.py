"""Declarative fault-campaign specifications.

A :class:`FaultCampaign` is a named, seedable list of
:class:`FaultSpec` entries.  Each spec addresses a *fault site* — the
connector hop a routed signal takes, matched by sender part, sender
port, receiving part, connector name and/or signal name — plus a fault
*window* in simulated time, and describes one deterministic mutation of
the traffic crossing that site:

``drop``
    the signal never arrives;
``duplicate``
    the signal arrives twice (original order preserved);
``corrupt``
    one integer argument is XORed with a mask (a flipped wire);
``delay``
    extra latency is added (optionally with seeded jitter);
``reorder``
    consecutive matched signals swap arrival order.

Campaigns serialize to/from JSON so they can live next to a model file
and be replayed bit-identically (``simulate --faults campaign.json``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import FaultError

#: The supported fault kinds.
FAULT_KINDS = ("drop", "duplicate", "corrupt", "delay", "reorder")


class FaultSpec:
    """One fault site + kind + window.

    All site fields default to ``None`` meaning *match anything*; a spec
    with every field ``None`` matches every routed signal.  ``window``
    is a half-open ``[start, end)`` interval in simulated time.
    """

    __slots__ = ("kind", "part", "port", "peer", "connector", "signal",
                 "window", "probability", "max_count", "delay", "jitter",
                 "field", "xor", "name")

    def __init__(self, kind: str,
                 part: Optional[str] = None,
                 port: Optional[str] = None,
                 peer: Optional[str] = None,
                 connector: Optional[str] = None,
                 signal: Optional[str] = None,
                 window: Optional[Sequence[float]] = None,
                 probability: float = 1.0,
                 max_count: Optional[int] = None,
                 delay: float = 1.0,
                 jitter: float = 0.0,
                 field: Optional[str] = None,
                 xor: Optional[int] = None,
                 name: str = ""):
        if kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
        if window is not None:
            window = tuple(float(edge) for edge in window)
            if len(window) != 2 or window[0] > window[1]:
                raise FaultError(
                    f"fault window must be [start, end] with start <= end, "
                    f"got {window!r}")
        if not 0.0 <= probability <= 1.0:
            raise FaultError(
                f"fault probability must be in [0, 1], got {probability}")
        if max_count is not None and max_count <= 0:
            raise FaultError(f"max_count must be positive, got {max_count}")
        if delay < 0 or jitter < 0:
            raise FaultError("delay and jitter cannot be negative")
        if xor is not None and xor == 0:
            raise FaultError("a zero XOR mask corrupts nothing")
        self.kind = kind
        self.part = part
        self.port = port
        self.peer = peer
        self.connector = connector
        self.signal = signal
        self.window: Optional[Tuple[float, float]] = window
        self.probability = float(probability)
        self.max_count = max_count
        self.delay = float(delay)
        self.jitter = float(jitter)
        self.field = field
        self.xor = xor
        self.name = name or kind

    def matches(self, now: float, part: str, port: str, peer: str,
                connector: str, signal: str) -> bool:
        """True when this spec applies to a routed signal at ``now``."""
        if self.window is not None \
                and not self.window[0] <= now < self.window[1]:
            return False
        if self.part is not None and self.part != part:
            return False
        if self.port is not None and self.port != port:
            return False
        if self.peer is not None and self.peer != peer:
            return False
        if self.connector is not None and self.connector != connector:
            return False
        if self.signal is not None and self.signal != signal:
            return False
        return True

    def site(self) -> str:
        """A compact, stable label of the fault site for reports."""
        pieces = []
        for label, value in (("part", self.part), ("port", self.port),
                             ("peer", self.peer),
                             ("connector", self.connector),
                             ("signal", self.signal)):
            if value is not None:
                pieces.append(f"{label}={value}")
        return " ".join(pieces) if pieces else "*"

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-ready form (defaults omitted)."""
        data: Dict[str, Any] = {"kind": self.kind}
        for key in ("part", "port", "peer", "connector", "signal",
                    "max_count", "field", "xor"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        if self.window is not None:
            data["window"] = list(self.window)
        if self.probability != 1.0:
            data["probability"] = self.probability
        if self.kind == "delay":
            data["delay"] = self.delay
            if self.jitter:
                data["jitter"] = self.jitter
        if self.name != self.kind:
            data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        """Build a spec from a JSON object, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise FaultError(f"fault spec must be an object, got {data!r}")
        if "kind" not in data:
            raise FaultError(f"fault spec missing 'kind': {data!r}")
        known = {"kind", "part", "port", "peer", "connector", "signal",
                 "window", "probability", "max_count", "delay", "jitter",
                 "field", "xor", "name"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise FaultError(
                f"unknown fault spec key(s) {unknown} in {data!r}")
        return cls(**data)

    def __repr__(self) -> str:
        return f"<FaultSpec {self.name!r} {self.kind} at {self.site()}>"


class FaultCampaign:
    """A named, seeded collection of fault specs."""

    __slots__ = ("name", "seed", "faults")

    def __init__(self, faults: Sequence[FaultSpec] = (),
                 name: str = "campaign", seed: int = 0):
        self.name = name
        self.seed = int(seed)
        self.faults: List[FaultSpec] = list(faults)
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise FaultError(
                    f"campaign entries must be FaultSpec, got {spec!r}")

    def add(self, spec: FaultSpec) -> "FaultCampaign":
        """Append a spec (chainable)."""
        if not isinstance(spec, FaultSpec):
            raise FaultError(f"expected a FaultSpec, got {spec!r}")
        self.faults.append(spec)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "seed": self.seed,
                "faults": [spec.to_dict() for spec in self.faults]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultCampaign":
        if not isinstance(data, dict):
            raise FaultError(f"campaign must be an object, got {data!r}")
        unknown = sorted(set(data) - {"name", "seed", "faults"})
        if unknown:
            raise FaultError(f"unknown campaign key(s) {unknown}")
        raw_faults = data.get("faults", [])
        if not isinstance(raw_faults, list):
            raise FaultError("campaign 'faults' must be a list")
        return cls(faults=[FaultSpec.from_dict(entry)
                           for entry in raw_faults],
                   name=data.get("name", "campaign"),
                   seed=data.get("seed", 0))

    @classmethod
    def from_json(cls, text: str) -> "FaultCampaign":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"malformed campaign JSON: {exc}")
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "FaultCampaign":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        return (f"<FaultCampaign {self.name!r} seed={self.seed} "
                f"faults={len(self.faults)}>")
