"""Structured resilience reporting.

Every :class:`~repro.simulation.cosim.SystemSimulation` owns a
:class:`ResilienceReport` that accumulates what went wrong — injected
faults, part failures and the policy's answer (quarantine/restart),
kernel-level incidents (watchdog, livelock, deadlock, queue overflow) —
in a fully deterministic form: the same seeded campaign produces a
byte-identical :meth:`to_json` on every run, which is what the D11
determinism check asserts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List


class ResilienceReport:
    """Deterministic record of faults injected and failures survived."""

    __slots__ = ("injections", "part_failures", "quarantined", "restarts",
                 "kernel_incidents", "counts")

    def __init__(self) -> None:
        #: one record per injected fault, in injection order
        self.injections: List[Dict[str, Any]] = []
        #: one record per part effect/guard failure, in failure order
        self.part_failures: List[Dict[str, Any]] = []
        #: part name -> simulated time of quarantine
        self.quarantined: Dict[str, float] = {}
        #: part name -> number of restarts performed
        self.restarts: Dict[str, int] = {}
        #: kernel-level events (watchdog, livelock, deadlock, overflow)
        self.kernel_incidents: List[Dict[str, Any]] = []
        #: aggregate counters per fault kind / policy action
        self.counts: Dict[str, int] = {}

    # -- recording ---------------------------------------------------------

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment an aggregate counter."""
        self.counts[counter] = self.counts.get(counter, 0) + amount

    def record_injection(self, time: float, spec_name: str, kind: str,
                         site: str, signal: str, detail: str = "") -> None:
        record = {"t": time, "spec": spec_name, "kind": kind,
                  "site": site, "signal": signal}
        if detail:
            record["detail"] = detail
        self.injections.append(record)
        self.bump(kind)

    def record_part_failure(self, time: float, part: str, error: str,
                            action: str) -> None:
        self.part_failures.append(
            {"t": time, "part": part, "error": error, "action": action})
        self.bump(f"part_{action}")

    def record_quarantine(self, time: float, part: str) -> None:
        if part not in self.quarantined:
            self.quarantined[part] = time

    def record_restart(self, part: str) -> None:
        self.restarts[part] = self.restarts.get(part, 0) + 1

    def record_kernel_incident(self, time: float, kind: str,
                               detail: str) -> None:
        self.kernel_incidents.append(
            {"t": time, "kind": kind, "detail": detail})
        self.bump("kernel_incident")

    # -- reading -----------------------------------------------------------

    @property
    def total_injections(self) -> int:
        return len(self.injections)

    def to_dict(self) -> Dict[str, Any]:
        """A deterministic, JSON-ready summary (no wall-clock data)."""
        return {
            "injections": list(self.injections),
            "part_failures": list(self.part_failures),
            "quarantined": dict(sorted(self.quarantined.items())),
            "restarts": dict(sorted(self.restarts.items())),
            "kernel_incidents": list(self.kernel_incidents),
            "counts": dict(sorted(self.counts.items())),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Capture the report for checkpoint/restore round-trips."""
        return {
            "injections": list(self.injections),
            "part_failures": list(self.part_failures),
            "quarantined": dict(self.quarantined),
            "restarts": dict(self.restarts),
            "kernel_incidents": list(self.kernel_incidents),
            "counts": dict(self.counts),
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        self.injections = list(snap["injections"])
        self.part_failures = list(snap["part_failures"])
        self.quarantined = dict(snap["quarantined"])
        self.restarts = dict(snap["restarts"])
        self.kernel_incidents = list(snap["kernel_incidents"])
        self.counts = dict(snap["counts"])

    def __repr__(self) -> str:
        return (f"<ResilienceReport injections={len(self.injections)} "
                f"failures={len(self.part_failures)} "
                f"quarantined={len(self.quarantined)}>")
