"""Structured resilience reporting.

Every :class:`~repro.simulation.cosim.SystemSimulation` owns a
:class:`ResilienceReport` that accumulates what went wrong — injected
faults, part failures and the policy's answer
(quarantine/restart/restore), kernel-level incidents (watchdog,
livelock, deadlock, queue overflow) — in a fully deterministic form:
the same seeded campaign produces a byte-identical :meth:`to_json` on
every run, which is what the D11 determinism check asserts.

Multi-seed aggregation (PR 5): :meth:`ResilienceReport.merge` combines
the reports of independent runs — e.g. every seed of a fault campaign
sweep — into one report whose serialization is *order-independent*:
record lists are re-sorted by their canonical JSON form, counters are
summed key-sorted, quarantine times keep the earliest.  Merging the
same set of per-seed reports in any order (serial, parallel completion
order, resumed-from-journal) yields byte-identical JSON, which is what
the campaign runner's determinism contract rests on.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional


def _record_key(record: Dict[str, Any]) -> str:
    """Total order over heterogeneous records: canonical JSON."""
    return json.dumps(record, sort_keys=True, default=str)


class ResilienceReport:
    """Deterministic record of faults injected and failures survived."""

    __slots__ = ("injections", "part_failures", "quarantined", "restarts",
                 "restores", "kernel_incidents", "counts")

    def __init__(self) -> None:
        #: one record per injected fault, in injection order
        self.injections: List[Dict[str, Any]] = []
        #: one record per part effect/guard failure, in failure order
        self.part_failures: List[Dict[str, Any]] = []
        #: part name -> simulated time of quarantine
        self.quarantined: Dict[str, float] = {}
        #: part name -> number of restarts performed
        self.restarts: Dict[str, int] = {}
        #: part name -> number of rollback restores performed
        self.restores: Dict[str, int] = {}
        #: kernel-level events (watchdog, livelock, deadlock, overflow)
        self.kernel_incidents: List[Dict[str, Any]] = []
        #: aggregate counters per fault kind / policy action
        self.counts: Dict[str, int] = {}

    # -- recording ---------------------------------------------------------

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment an aggregate counter."""
        self.counts[counter] = self.counts.get(counter, 0) + amount

    def record_injection(self, time: float, spec_name: str, kind: str,
                         site: str, signal: str, detail: str = "") -> None:
        record = {"t": time, "spec": spec_name, "kind": kind,
                  "site": site, "signal": signal}
        if detail:
            record["detail"] = detail
        self.injections.append(record)
        self.bump(kind)

    def record_part_failure(self, time: float, part: str, error: str,
                            action: str) -> None:
        self.part_failures.append(
            {"t": time, "part": part, "error": error, "action": action})
        self.bump(f"part_{action}")

    def record_quarantine(self, time: float, part: str) -> None:
        if part not in self.quarantined:
            self.quarantined[part] = time

    def record_restart(self, part: str) -> None:
        self.restarts[part] = self.restarts.get(part, 0) + 1

    def record_restore(self, part: str) -> None:
        self.restores[part] = self.restores.get(part, 0) + 1

    def record_kernel_incident(self, time: float, kind: str,
                               detail: str) -> None:
        self.kernel_incidents.append(
            {"t": time, "kind": kind, "detail": detail})
        self.bump("kernel_incident")

    # -- reading -----------------------------------------------------------

    @property
    def total_injections(self) -> int:
        return len(self.injections)

    def to_dict(self) -> Dict[str, Any]:
        """A deterministic, JSON-ready summary (no wall-clock data)."""
        return {
            "injections": list(self.injections),
            "part_failures": list(self.part_failures),
            "quarantined": dict(sorted(self.quarantined.items())),
            "restarts": dict(sorted(self.restarts.items())),
            "restores": dict(sorted(self.restores.items())),
            "kernel_incidents": list(self.kernel_incidents),
            "counts": dict(sorted(self.counts.items())),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResilienceReport":
        """Rebuild a report from its :meth:`to_dict` form (e.g. a
        campaign-journal row); missing keys default to empty."""
        report = cls()
        report.injections = list(data.get("injections", ()))
        report.part_failures = list(data.get("part_failures", ()))
        report.quarantined = dict(data.get("quarantined", {}))
        report.restarts = dict(data.get("restarts", {}))
        report.restores = dict(data.get("restores", {}))
        report.kernel_incidents = list(data.get("kernel_incidents", ()))
        report.counts = dict(data.get("counts", {}))
        return report

    # -- multi-seed aggregation --------------------------------------------

    def merge(self, other: "ResilienceReport") -> "ResilienceReport":
        """A new report aggregating this one with ``other``.

        The merge is commutative and associative: record lists are
        concatenated and re-sorted by canonical JSON, per-part counters
        sum, quarantine keeps the earliest time.  Folding any
        permutation of the same reports therefore serializes
        byte-identically — campaign results merge order-independently.
        """
        merged = ResilienceReport()
        merged.injections = sorted(self.injections + other.injections,
                                   key=_record_key)
        merged.part_failures = sorted(
            self.part_failures + other.part_failures, key=_record_key)
        merged.kernel_incidents = sorted(
            self.kernel_incidents + other.kernel_incidents,
            key=_record_key)
        merged.quarantined = dict(self.quarantined)
        for part, when in other.quarantined.items():
            mine = merged.quarantined.get(part)
            merged.quarantined[part] = when if mine is None \
                else min(mine, when)
        for source in (self, other):
            for part, count in source.restarts.items():
                merged.restarts[part] = \
                    merged.restarts.get(part, 0) + count
            for part, count in source.restores.items():
                merged.restores[part] = \
                    merged.restores.get(part, 0) + count
            for counter, amount in source.counts.items():
                merged.counts[counter] = \
                    merged.counts.get(counter, 0) + amount
        return merged

    @classmethod
    def merged(cls, reports: Iterable["ResilienceReport"]
               ) -> "ResilienceReport":
        """Fold :meth:`merge` over an iterable (empty ⇒ empty report)."""
        result: Optional[ResilienceReport] = None
        for report in reports:
            result = report if result is None else result.merge(report)
        return result if result is not None else cls()

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Capture the report for checkpoint/restore round-trips."""
        return {
            "injections": list(self.injections),
            "part_failures": list(self.part_failures),
            "quarantined": dict(self.quarantined),
            "restarts": dict(self.restarts),
            "restores": dict(self.restores),
            "kernel_incidents": list(self.kernel_incidents),
            "counts": dict(self.counts),
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        self.injections = list(snap["injections"])
        self.part_failures = list(snap["part_failures"])
        self.quarantined = dict(snap["quarantined"])
        self.restarts = dict(snap["restarts"])
        self.restores = dict(snap.get("restores", {}))
        self.kernel_incidents = list(snap["kernel_incidents"])
        self.counts = dict(snap["counts"])

    def __repr__(self) -> str:
        return (f"<ResilienceReport injections={len(self.injections)} "
                f"failures={len(self.part_failures)} "
                f"quarantined={len(self.quarantined)}>")
