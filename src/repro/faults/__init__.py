"""Fault injection & resilience (subsystem S11, PR 2).

The answer to the "hole in the head" critique of executable UML for
SoCs: early simulation is only a credible verification argument if the
model can be exercised under *adversarial* conditions — lost, delayed,
duplicated and corrupted bus transactions, hung cores, IRQ storms.

* :class:`FaultCampaign` / :class:`FaultSpec` — declarative, seedable,
  JSON-serializable fault descriptions addressed by part/port/connector
  and windowed in simulated time.
* :class:`FaultInjector` — deterministic application of a campaign over
  the cosimulation routing layer.
* :class:`ResilienceReport` — structured, byte-deterministic record of
  injections, part failures, quarantines, restarts, restores and
  kernel incidents; merges order-independently across seeds.
* :func:`run_campaign` / :class:`CampaignSpec` — crash-tolerant,
  resumable multi-seed sweep runner (process pool, watchdog + retry,
  append-only journal; PR 5).

Kernel-side robustness (watchdog, livelock/deadlock detection, bounded
queues) lives in :mod:`repro.simulation.kernel`; the graceful part
degradation policies live in :mod:`repro.simulation.cosim`.
"""

from .campaign import FAULT_KINDS, FaultCampaign, FaultSpec
from .injector import FaultInjector
from .report import ResilienceReport
from .runner import (
    CampaignResult,
    CampaignSpec,
    backoff_delay,
    read_journal,
    run_campaign,
    run_seed,
)

__all__ = [
    "FAULT_KINDS",
    "FaultCampaign",
    "FaultSpec",
    "FaultInjector",
    "ResilienceReport",
    "CampaignResult",
    "CampaignSpec",
    "backoff_delay",
    "read_journal",
    "run_campaign",
    "run_seed",
]
