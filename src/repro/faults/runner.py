"""Crash-tolerant, resumable multi-seed campaign runner (PR 5).

A fault campaign only earns statistical weight when it is swept over
many RNG seeds — and a multi-hour sweep only earns trust when it
survives the sweep *itself* failing: a hung worker, an OOM-killed
process, a Ctrl-C half-way through.  This module fans the seeds of one
:class:`~repro.faults.FaultCampaign` across worker processes and makes
the sweep as robust as the models it is torturing:

* **per-run watchdog** — each seed gets ``run_timeout`` wall-clock
  seconds; a hung worker is SIGKILLed and the seed retried;
* **bounded retry with exponential backoff** — infrastructure failures
  (crashed or killed workers, missing results) are retried up to
  ``max_retries`` times; deterministic in-simulation errors are *not*
  retried — they are results;
* **crash isolation** — a dying worker records a failure row and the
  campaign continues with the remaining seeds;
* **append-only journal** — every completed seed is appended to a JSONL
  journal as it finishes, so an interrupted sweep resumes with
  ``resume=True`` re-running only the missing seeds;
* **order-independent aggregation** — per-seed
  :class:`~repro.faults.ResilienceReport` and
  :class:`~repro.observability.CoverageReport` rows merge via their
  commutative/associative ``merge``, so serial, parallel and resumed
  sweeps over the same seeds serialize byte-identically;
* **graceful degradation** — without usable process support (or with
  ``workers <= 1``) the sweep runs serially in-process through the
  exact same journal/merge path;
* **seed vectorization** — ``run_campaign(vectorize=True)`` parses and
  compiles the model once, then interleaves *all* seeds through one
  process: one :class:`~repro.simulation.SystemSimulation` per seed
  over the shared top, each with its own injector RNG and trace
  ordinal stream, advanced in segments so the compiled dispatch tables
  stay hot across seeds.  Rows are byte-identical to a serial sweep.

Before forking workers the parent warms the model and compile caches
(:func:`_warm_spec`), so on fork-capable hosts every child inherits
the parsed top and hot dispatch tables instead of re-paying the
compile cost per seed.

Workers hand results back through temp files renamed into place (never
queues or pipes, which a SIGKILL can corrupt mid-message): a result
file that exists is complete, a missing one means the worker died.

The ``REPRO_CAMPAIGN_TEST_KILL`` environment variable
(``"<seed>"`` or ``"<seed>:<max_attempt>"``) makes the worker for that
seed SIGKILL itself through the given attempt — the CI smoke test uses
it to prove the kill/retry/resume path on demand.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import FaultError, ReproError
from ..perf import PERF
from .campaign import FaultCampaign
from .report import ResilienceReport

#: Default number of infrastructure retries per seed.
DEFAULT_MAX_RETRIES = 2

#: Default backoff base (seconds); attempt n waits base * 2**(n-1).
DEFAULT_RETRY_BACKOFF = 0.25

#: Environment hook: kill the worker for one seed (test/CI only).
TEST_KILL_ENV = "REPRO_CAMPAIGN_TEST_KILL"


def backoff_delay(base: float, attempt: int, token: Any = 0) -> float:
    """Exponential backoff with deterministic, seeded jitter.

    ``base * 2**(attempt-1)`` is the nominal window; the returned delay
    is that window scaled into ``[0.5, 1.5)`` by a jitter fraction
    hashed from ``(token, attempt)``.  Pure exponential backoff
    synchronizes: when many workers fail at the same instant (a full
    machine stall, a killed pool) they all retry at the same instant
    too, stampeding whatever made them fail.  Hashing the retry token
    (a seed, a job id) spreads the herd across the window — and because
    the jitter is a hash, not ``random()``, the schedule is reproducible
    run to run, which keeps retry timing out of result bytes and makes
    backoff behavior unit-testable.
    """
    window = base * (2 ** (attempt - 1))
    digest = hashlib.blake2b(f"{token}:{attempt}".encode("utf-8"),
                             digest_size=8).digest()
    fraction = int.from_bytes(digest, "big") / 2.0 ** 64
    return window * (0.5 + fraction)


class CampaignSpec:
    """Everything a worker needs to run one seed, as plain data.

    The model under test comes from exactly one of two sources:
    ``model`` + ``top`` (an XMI file and the qualified name of the top
    component) or ``builder`` (a ``"package.module:function"`` dotted
    path to a zero-argument factory returning the top
    :class:`~repro.metamodel.Component`).  The spec round-trips through
    :meth:`to_dict`/:meth:`from_dict` so it can cross a process
    boundary and head the resume journal.
    """

    __slots__ = ("model", "top", "builder", "campaign", "seeds", "until",
                 "quantum", "compiled", "engine", "on_part_error",
                 "checkpoint_interval", "max_restarts", "max_restores",
                 "coverage", "name", "properties", "on_violation", "obs")

    def __init__(self,
                 seeds: Sequence[int],
                 model: Optional[str] = None,
                 top: Optional[str] = None,
                 builder: Optional[str] = None,
                 campaign: Optional[str] = None,
                 until: float = 100.0,
                 quantum: float = 1.0,
                 compiled: bool = False,
                 engine: Optional[str] = None,
                 on_part_error: str = "raise",
                 checkpoint_interval: Optional[float] = None,
                 max_restarts: int = 3,
                 max_restores: int = 3,
                 coverage: bool = False,
                 name: str = "campaign",
                 properties: Optional[Any] = None,
                 on_violation: str = "incident",
                 obs: bool = False):
        if (model is None) == (builder is None):
            raise FaultError(
                "campaign spec needs exactly one model source: "
                "model=<xmi path> (with top=) or "
                "builder='module:function'")
        if model is not None and not top:
            raise FaultError(
                "campaign spec with model= also needs top= "
                "(qualified component name)")
        if builder is not None and ":" not in builder:
            raise FaultError(
                f"builder must be 'package.module:function', "
                f"got {builder!r}")
        seeds = [int(seed) for seed in seeds]
        if not seeds:
            raise FaultError("campaign spec needs at least one seed")
        if len(set(seeds)) != len(seeds):
            raise FaultError(f"duplicate seeds in {seeds}")
        if engine not in (None, "interpreted", "compiled", "batched"):
            raise FaultError(
                f"unknown engine {engine!r}: pick interpreted, "
                "compiled or batched")
        self.model = model
        self.top = top
        self.builder = builder
        self.campaign = campaign
        self.seeds = seeds
        self.until = float(until)
        self.quantum = float(quantum)
        self.compiled = bool(compiled)
        self.engine = engine
        self.on_part_error = on_part_error
        self.checkpoint_interval = checkpoint_interval
        self.max_restarts = int(max_restarts)
        self.max_restores = int(max_restores)
        self.coverage = bool(coverage)
        self.name = name
        #: temporal-property suite checked on every seed: a path to a
        #: ``props.json`` file or an inline suite dict (both plain data,
        #: so the spec still crosses process boundaries and journals).
        if properties is not None \
                and not isinstance(properties, (str, dict)):
            raise FaultError(
                "campaign spec properties= must be a props.json path "
                f"or a suite dict, got {type(properties).__name__}")
        self.properties = properties
        from ..properties.checker import VIOLATION_POLICIES

        if on_violation not in VIOLATION_POLICIES:
            raise FaultError(
                f"on_violation must be one of {VIOLATION_POLICIES}, "
                f"got {on_violation!r}")
        self.on_violation = on_violation
        #: full observability collection (PR 9): every seed also runs
        #: with coverage, the profiler and the causal index attached,
        #: and its row carries ``profile`` + ``causal_edges`` for the
        #: cross-seed :class:`~repro.observability.ObservabilityReport`.
        self.obs = bool(obs)

    # -- plumbing ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        return cls(**data)

    def build_top(self):
        """Materialize the top component in this process."""
        if self.builder is not None:
            import importlib

            module_name, _, function_name = self.builder.partition(":")
            module = importlib.import_module(module_name)
            factory = getattr(module, function_name, None)
            if factory is None:
                raise FaultError(
                    f"builder {self.builder!r}: module "
                    f"{module_name!r} has no {function_name!r}")
            return factory()
        from .. import metamodel as mm
        from .. import xmi

        document = xmi.read_file(self.model)
        if document.model is None:
            raise FaultError(f"{self.model} contains no model")
        return document.model.resolve(self.top, mm.Component)

    def load_campaign(self) -> Optional[FaultCampaign]:
        if self.campaign is None:
            return None
        return FaultCampaign.from_file(self.campaign)

    def load_properties(self):
        """Materialize the property suite (None when not configured)."""
        if self.properties is None:
            return None
        from ..properties import coerce_suite

        return coerce_suite(self.properties)

    def __repr__(self) -> str:
        source = self.builder or f"{self.model}::{self.top}"
        return (f"<CampaignSpec {self.name!r} {source} "
                f"seeds={len(self.seeds)}>")


# ---------------------------------------------------------------------------
# model warm-up (shared across seeds, inherited across forks)
# ---------------------------------------------------------------------------

#: single-entry memo: spec model source -> (top component, campaign).
_MODEL_CACHE: Dict[Tuple[Any, ...], Tuple[Any, Optional[FaultCampaign]]] = {}


def _warm_model(spec: CampaignSpec) -> Tuple[Any, Optional[FaultCampaign]]:
    """Materialize (once) the top component and fault campaign.

    Every seed of a sweep runs the same model, so parsing the XMI (or
    calling the builder) per seed is pure overhead.  The memo holds one
    entry — campaigns don't interleave model sources — and lives at
    module level so that a parent process warming it *before* forking
    workers hands every child the already-parsed model for free.

    Sharing is sound because simulations never write to the model:
    engines copy their initial contexts out of the attribute defaults,
    and the fault injector keeps its per-run state (RNG, fired counts)
    on itself, not on the campaign.
    """
    key = (spec.model, spec.top, spec.builder, spec.campaign)
    hit = _MODEL_CACHE.get(key)
    if hit is None:
        PERF.incr("campaign.model_builds")
        hit = (spec.build_top(), spec.load_campaign())
        _MODEL_CACHE.clear()
        _MODEL_CACHE[key] = hit
    else:
        PERF.incr("campaign.model_warm_hits")
    return hit


#: single-entry memo: property source -> compiled PropertySuite.
_SUITE_CACHE: Dict[Any, Any] = {}


def _warm_suite(spec: CampaignSpec):
    """Materialize (once) the property suite for a sweep.

    Compiling a suite enumerates interaction trace sets into prefix
    tries; like the model, that work is identical for every seed.  The
    shared suite is sound because per-run monitor state lives on each
    simulation's :class:`~repro.properties.PropertyChecker`, never on
    the :class:`~repro.properties.Property` objects.
    """
    if spec.properties is None:
        return None
    key = (spec.properties if isinstance(spec.properties, str)
           else json.dumps(spec.properties, sort_keys=True, default=str))
    hit = _SUITE_CACHE.get(key)
    if hit is None:
        hit = spec.load_properties()
        _SUITE_CACHE.clear()
        _SUITE_CACHE[key] = hit
    return hit


def _warm_spec(spec: CampaignSpec) -> None:
    """Pre-fork warm-up: parse the model and compile every compilable
    classifier behavior in the parent, so forked workers (and the
    vectorized runner) start with hot dispatch-table caches."""
    top, _campaign = _warm_model(spec)
    _warm_suite(spec)
    if not (spec.compiled or spec.engine in ("compiled", "batched")):
        return
    from ..statemachines.flatten import (compile_fallback_reason,
                                         compile_machine_cached)
    from ..statemachines.kernel import StateMachine

    seen = set()
    for part in top.parts:
        behavior = getattr(part.type, "classifier_behavior", None)
        if not isinstance(behavior, StateMachine) \
                or id(behavior) in seen:
            continue
        seen.add(id(behavior))
        if compile_fallback_reason(behavior) is None:
            compile_machine_cached(behavior)


# ---------------------------------------------------------------------------
# one seed, one process (or inline)
# ---------------------------------------------------------------------------

def _collect_row(simulation, spec: CampaignSpec, seed: int,
                 sim_error: str) -> Dict[str, Any]:
    """Distil one finished simulation into its plain-data journal row."""
    row: Dict[str, Any] = {"seed": seed}
    row["messages_delivered"] = simulation.messages_delivered
    row["messages_dropped"] = simulation.messages_dropped
    row["quarantined"] = sorted(simulation.quarantined_parts)
    row["resilience"] = simulation.resilience.to_dict()
    if spec.coverage or spec.obs:
        row["coverage"] = \
            simulation.observability.coverage_report().to_dict()
    if spec.obs:
        row["profile"] = simulation.observability.profile_lines("time")
        row["causal_edges"] = \
            simulation.observability.causal.edge_counts()
    if simulation.property_checker is not None:
        row["properties"] = simulation.property_report().to_dict()
    if sim_error:
        row["sim_error"] = sim_error
    return row


def run_seed(spec: CampaignSpec, seed: int,
             observer=None) -> Dict[str, Any]:
    """Run one seed of the campaign and return its plain-data row.

    Everything in the row is derived from simulated state, so the same
    (spec, seed) pair produces a byte-identical row in any process, on
    any engine, on any attempt — which is what makes retry and resume
    sound.  A deterministic in-simulation error (a part raising under
    ``on_part_error="raise"``, a kernel watchdog, …) is captured in the
    row as ``sim_error``, not raised: it *is* the result of that seed.

    ``observer`` (optional) is called once with the live simulation
    before the run starts — the telemetry hook.  It must not subscribe
    anything to the trace bus (that would shift ordinals and break
    cross-mode row identity); the PR 9 heartbeat thread only *reads*
    ``simulation.simulator.events_processed``.
    """
    from ..simulation import SystemSimulation

    top, campaign = _warm_model(spec)
    suite = _warm_suite(spec)
    sim_error = ""
    with SystemSimulation(top, quantum=spec.quantum,
                          compile=spec.compiled,
                          engine=spec.engine,
                          faults=campaign, fault_seed=seed,
                          on_part_error=spec.on_part_error,
                          max_restarts=spec.max_restarts,
                          max_restores=spec.max_restores,
                          checkpoint_interval=spec.checkpoint_interval,
                          coverage=spec.coverage or spec.obs,
                          profile=spec.obs,
                          causality=spec.obs,
                          properties=suite,
                          on_violation=spec.on_violation) as simulation:
        if observer is not None:
            observer(simulation)
        try:
            simulation.run(until=spec.until)
        except ReproError as error:
            sim_error = f"{type(error).__name__}: {error}"
        row = _collect_row(simulation, spec, seed, sim_error)
    return row


def _maybe_test_kill(seed: int, attempt: int) -> None:
    """CI/test hook: SIGKILL this worker for one configured seed."""
    directive = os.environ.get(TEST_KILL_ENV, "")
    if not directive:
        return
    target, _, through = directive.partition(":")
    try:
        if int(target) != seed:
            return
        max_attempt = int(through) if through else 1
    except ValueError:
        return
    if attempt <= max_attempt:
        os.kill(os.getpid(), signal.SIGKILL)


def _worker_main(spec_data: Dict[str, Any], seed: int, attempt: int,
                 result_path: str,
                 telemetry_fd: Optional[int] = None) -> None:
    """Process entry: run one seed, hand the row back via the
    rename-into-place file protocol (a present file is a complete
    file; a missing one means this worker died).

    ``telemetry_fd`` is the write end of the parent's beat pipe
    (inherited across fork; with a spawn start method the fd does not
    survive and every write degrades to silence — results are
    unaffected, only the live progress display goes quiet).
    """
    _maybe_test_kill(seed, attempt)
    heartbeat = None
    ok = False
    try:
        if telemetry_fd is not None:
            from ..observability.campaign import WorkerHeartbeat

            def _observer(simulation, _seed=seed, _fd=telemetry_fd):
                nonlocal heartbeat
                kernel = simulation.simulator
                heartbeat = WorkerHeartbeat(
                    _fd, _seed,
                    lambda: getattr(kernel, "events_processed", 0))
        else:
            _observer = None
        row = run_seed(CampaignSpec.from_dict(spec_data), seed,
                       observer=_observer)
        payload = {"ok": True, "row": row}
        ok = True
    except BaseException as error:  # noqa: BLE001 - must report, not die
        payload = {"ok": False,
                   "error": f"{type(error).__name__}: {error}"}
    finally:
        if heartbeat is not None:
            heartbeat.close(ok=ok)
    scratch = f"{result_path}.tmp"
    with open(scratch, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, default=str)
    os.replace(scratch, result_path)
    if not payload["ok"]:
        raise SystemExit(1)


# ---------------------------------------------------------------------------
# the journal
# ---------------------------------------------------------------------------

def _journal_append(handle, record: Dict[str, Any]) -> None:
    handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
    handle.flush()


def read_journal(path: str) -> Tuple[Optional[Dict[str, Any]],
                                     Dict[int, Dict[str, Any]],
                                     List[Dict[str, Any]]]:
    """Parse a campaign journal into (header, ok rows by seed, failures).

    A truncated final line (the writer was killed mid-append) is
    dropped — everything before it is still trustworthy, which is the
    whole point of an append-only journal — but no longer *silently*:
    every torn record bumps the ``journal.torn_records`` counter in
    :data:`~repro.perf.PERF`, so a sweep that resumed past damage
    shows it in ``--stats`` / Prometheus output instead of hiding it.
    """
    header: Optional[Dict[str, Any]] = None
    completed: Dict[int, Dict[str, Any]] = {}
    failures: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                PERF.incr("journal.torn_records")
                break  # torn tail write; ignore the rest
            status = record.get("status")
            if status == "header":
                header = record
            elif status == "ok":
                completed[int(record["seed"])] = record["row"]
            elif status == "failed":
                failures.append(record)
    return header, completed, failures


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------

class CampaignResult:
    """The merged outcome of a multi-seed sweep.

    ``to_dict`` contains only simulation-derived, deterministically
    ordered data — no worker counts, wall-clock times or completion
    order — so a parallel, a serial and a resumed sweep over the same
    seeds serialize byte-identically.
    """

    __slots__ = ("name", "rows", "failures", "resumed_seeds",
                 "workers_used", "mode")

    def __init__(self, name: str, rows: Sequence[Dict[str, Any]],
                 failures: Sequence[Dict[str, Any]] = (),
                 resumed_seeds: Sequence[int] = (),
                 workers_used: int = 1, mode: str = "serial"):
        self.name = name
        #: per-seed rows, sorted by seed
        self.rows: List[Dict[str, Any]] = \
            sorted(rows, key=lambda row: row["seed"])
        #: permanent infrastructure failures ({"seed","attempts","error"})
        self.failures: List[Dict[str, Any]] = \
            sorted(failures, key=lambda row: row["seed"])
        #: seeds skipped because the journal already had their rows
        self.resumed_seeds: List[int] = sorted(resumed_seeds)
        self.workers_used = workers_used
        self.mode = mode

    @property
    def completed_seeds(self) -> List[int]:
        return [row["seed"] for row in self.rows]

    @property
    def failed_seeds(self) -> List[int]:
        return [row["seed"] for row in self.failures]

    @property
    def ok(self) -> bool:
        return not self.failures

    def resilience(self) -> ResilienceReport:
        """All per-seed resilience reports merged (order-independent)."""
        return ResilienceReport.merged(
            ResilienceReport.from_dict(row["resilience"])
            for row in self.rows)

    def coverage(self):
        """All per-seed coverage reports merged, or ``None``."""
        from ..observability import CoverageReport

        reports = [CoverageReport.from_dict(row["coverage"])
                   for row in self.rows if "coverage" in row]
        return CoverageReport.merged(reports) if reports else None

    def properties(self) -> Optional[Dict[str, Any]]:
        """Per-property pass rates and time-to-violation across seeds.

        Aggregated with
        :func:`repro.properties.aggregate_reports` — order-independent
        and keyed by seed, so serial, parallel, vectorized and resumed
        sweeps produce the identical artifact.  ``None`` when no row
        carries property verdicts.
        """
        per_seed = {row["seed"]: row["properties"]
                    for row in self.rows if "properties" in row}
        if not per_seed:
            return None
        from ..properties import aggregate_reports

        return aggregate_reports(per_seed)

    @property
    def property_violations(self) -> int:
        """Total property violations recorded across all seeds."""
        return sum(row["properties"].get("total_violations", 0)
                   for row in self.rows if "properties" in row)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "campaign": self.name,
            "completed": list(self.rows),
            "failures": [
                {"seed": row["seed"], "attempts": row["attempts"],
                 "error": row["error"]} for row in self.failures],
            "resilience": self.resilience().to_dict(),
        }
        merged_coverage = self.coverage()
        if merged_coverage is not None:
            data["coverage"] = merged_coverage.to_dict()
        merged_properties = self.properties()
        if merged_properties is not None:
            data["properties"] = merged_properties
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:
        return (f"<CampaignResult {self.name!r} ok={len(self.rows)} "
                f"failed={len(self.failures)} mode={self.mode}>")


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------

def _processes_usable() -> bool:
    """Can this host actually fork/spawn worker processes?"""
    try:
        import multiprocessing

        multiprocessing.get_context()
    except (ImportError, OSError, ValueError):
        return False
    return True


def _make_context():
    import multiprocessing

    try:
        # fork shares the imported model modules; cheapest on Linux
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def run_campaign(spec: CampaignSpec,
                 workers: int = 0,
                 journal: Optional[str] = None,
                 resume: bool = False,
                 run_timeout: Optional[float] = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                 vectorize: bool = False,
                 progress: Any = None,
                 ) -> CampaignResult:
    """Sweep every seed of ``spec``, robustly.

    ``workers`` > 1 fans seeds over that many processes (0/1, or a host
    without multiprocessing, runs serially in-process; the parent warms
    the model and compile caches before forking so children inherit
    them).  ``vectorize=True`` instead interleaves all seeds through
    one process over a single parsed/compiled model — usually the
    fastest option when per-seed runs are short, and byte-identical to
    a serial sweep.  ``journal`` appends a JSONL row per finished seed;
    ``resume=True`` first reads it back and re-runs only the seeds
    without an ``ok`` row.  The returned :class:`CampaignResult`
    serializes identically however the sweep was executed or
    interrupted, as long as the same seeds completed.

    ``progress`` controls live telemetry (PR 9): ``True`` builds a
    :class:`~repro.observability.CampaignTelemetry` that renders onto
    stderr when (and only when) it is a TTY; a ``CampaignTelemetry``
    instance is used as given; ``None``/``False`` disables it.
    Telemetry flows over an OS pipe, never the trace bus, so enabling
    it cannot change any row or merged report byte.
    """
    if run_timeout is not None and run_timeout <= 0:
        raise FaultError(f"run_timeout must be positive, got {run_timeout}")
    if max_retries < 0:
        raise FaultError(f"max_retries cannot be negative, got {max_retries}")
    if vectorize and workers > 1:
        raise FaultError(
            "vectorize=True runs all seeds in-process; "
            "it cannot be combined with workers > 1")
    completed: Dict[int, Dict[str, Any]] = {}
    resumed: List[int] = []
    if journal and resume and os.path.exists(journal):
        header, journaled, _ = read_journal(journal)
        if header is not None and header.get("spec") != spec.to_dict():
            raise FaultError(
                f"journal {journal!r} was written for a different "
                f"campaign spec; refusing to resume into it")
        for seed in spec.seeds:
            if seed in journaled:
                completed[seed] = journaled[seed]
                resumed.append(seed)
    todo = [seed for seed in spec.seeds if seed not in completed]
    telemetry = None
    if progress is not None and progress is not False:
        from ..observability.campaign import CampaignTelemetry

        telemetry = (progress if isinstance(progress, CampaignTelemetry)
                     else CampaignTelemetry(len(spec.seeds),
                                            name=spec.name))
        for seed in resumed:
            telemetry.seed_done(seed)
    journal_handle = None
    if journal:
        fresh = not (resume and os.path.exists(journal))
        journal_handle = open(journal, "w" if fresh else "a",
                              encoding="utf-8")
        if fresh:
            _journal_append(journal_handle,
                            {"status": "header", "spec": spec.to_dict()})
    try:
        parallel = (not vectorize and workers > 1 and len(todo) > 1
                    and _processes_usable())
        if parallel:
            _warm_spec(spec)  # children fork with hot model/compile caches
            rows, failures = _run_parallel(
                spec, todo, workers, journal_handle, run_timeout,
                max_retries, retry_backoff, telemetry)
        elif vectorize:
            rows, failures = _run_vectorized(spec, todo, journal_handle,
                                             telemetry)
        else:
            rows, failures = _run_serial(spec, todo, journal_handle,
                                         telemetry)
    finally:
        if journal_handle is not None:
            journal_handle.close()
        if telemetry is not None:
            telemetry.finish()
    rows.extend(completed.values())
    mode = ("parallel" if parallel
            else "vectorized" if vectorize else "serial")
    return CampaignResult(spec.name, rows, failures=failures,
                          resumed_seeds=resumed,
                          workers_used=workers if parallel else 1,
                          mode=mode)


def _run_serial(spec: CampaignSpec, todo: Sequence[int], journal_handle,
                telemetry=None
                ) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """The degraded (and reference) path: every seed inline."""
    rows: List[Dict[str, Any]] = []
    for seed in todo:
        kernel_box: List[Any] = []
        observer = None
        if telemetry is not None:
            telemetry.seed_started(seed)
            telemetry.render()
            observer = lambda sim: kernel_box.append(sim.simulator)  # noqa: E731
        row = run_seed(spec, seed, observer=observer)
        rows.append(row)
        if telemetry is not None:
            events = (getattr(kernel_box[0], "events_processed", 0)
                      if kernel_box else 0)
            telemetry.seed_done(seed, events)
            telemetry.render()
        if journal_handle is not None:
            _journal_append(journal_handle,
                            {"status": "ok", "seed": seed, "attempt": 1,
                             "row": row})
    return rows, []


#: Number of time segments the vectorized runner interleaves seeds over.
VECTOR_SEGMENTS = 8


def _run_vectorized(spec: CampaignSpec, todo: Sequence[int], journal_handle,
                    telemetry=None
                    ) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """All seeds interleaved through one process over one parsed model.

    One :class:`~repro.simulation.SystemSimulation` per seed is built
    over the *shared* warm top — each with its own kernel, trace bus
    (own ordinal stream) and fault-injector RNG — then all of them are
    advanced in lockstep over :data:`VECTOR_SEGMENTS` fixed time
    boundaries.  Interleaving keeps every seed's working set warm in
    the shared compiled dispatch tables, which is where the campaign
    wins its wall-clock over a fork-per-seed pool on short runs.

    Per-seed semantics replicate :func:`run_seed` exactly — the same
    ``_arm_run``/kernel-run/``_finish_run`` sequence, the same error
    capture (a deterministic in-simulation error deactivates only its
    own seed and lands in that row's ``sim_error``) — so the rows, and
    therefore the merged report, are byte-identical to a serial sweep.
    """
    from ..simulation import SystemSimulation

    _warm_spec(spec)
    top, campaign = _warm_model(spec)
    suite = _warm_suite(spec)
    #: [seed, simulation, sim_error] — error marks the lane finished
    lanes: List[List[Any]] = []
    try:
        for seed in todo:
            simulation = SystemSimulation(
                top, quantum=spec.quantum,
                compile=spec.compiled,
                engine=spec.engine,
                faults=campaign, fault_seed=seed,
                on_part_error=spec.on_part_error,
                max_restarts=spec.max_restarts,
                max_restores=spec.max_restores,
                checkpoint_interval=spec.checkpoint_interval,
                coverage=spec.coverage or spec.obs,
                profile=spec.obs,
                causality=spec.obs,
                properties=suite,
                on_violation=spec.on_violation)
            simulation._arm_run(spec.until)
            lanes.append([seed, simulation, ""])
            if telemetry is not None:
                telemetry.seed_started(seed)
        PERF.incr("campaign.vectorized_seeds", len(lanes))
        for segment in range(1, VECTOR_SEGMENTS + 1):
            boundary = spec.until * segment / VECTOR_SEGMENTS
            for lane in lanes:
                if lane[2]:
                    continue
                try:
                    lane[1].simulator.run(until=boundary)
                except ReproError as error:
                    lane[1]._handle_run_error(error)
                    lane[2] = f"{type(error).__name__}: {error}"
                if telemetry is not None:
                    telemetry.beat(
                        lane[0], getattr(lane[1].simulator,
                                         "events_processed", 0))
        for lane in lanes:
            if lane[2]:
                continue
            try:
                lane[1]._finish_run(spec.until)
            except ReproError as error:
                lane[1]._handle_run_error(error)
                lane[2] = f"{type(error).__name__}: {error}"
        rows: List[Dict[str, Any]] = []
        for seed, simulation, sim_error in lanes:
            row = _collect_row(simulation, spec, seed, sim_error)
            rows.append(row)
            if telemetry is not None:
                telemetry.seed_done(
                    seed, getattr(simulation.simulator,
                                  "events_processed", 0))
            if journal_handle is not None:
                _journal_append(journal_handle,
                                {"status": "ok", "seed": seed,
                                 "attempt": 1, "row": row})
    finally:
        for _seed, simulation, _error in lanes:
            simulation.close()
    return rows, []


def _run_parallel(spec: CampaignSpec, todo: Sequence[int], workers: int,
                  journal_handle, run_timeout: Optional[float],
                  max_retries: int, retry_backoff: float,
                  telemetry=None,
                  ) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    import tempfile

    context = _make_context()
    spec_data = spec.to_dict()
    telemetry_fd = (telemetry.open_pipe()
                    if telemetry is not None else None)
    rows: List[Dict[str, Any]] = []
    failures: List[Dict[str, Any]] = []
    #: (seed, attempt, ready_at) — backoff holds a seed until ready_at
    pending: List[Tuple[int, int, float]] = \
        [(seed, 1, 0.0) for seed in todo]
    #: process -> (seed, attempt, result_path, deadline)
    running: Dict[Any, Tuple[int, int, str, Optional[float]]] = {}
    last_error: Dict[int, str] = {}

    def record_failure(seed: int, attempt: int, error: str) -> None:
        last_error[seed] = error
        if journal_handle is not None:
            _journal_append(journal_handle,
                            {"status": "failed", "seed": seed,
                             "attempt": attempt, "error": error})
        if attempt <= max_retries:
            ready_at = time.monotonic() \
                + backoff_delay(retry_backoff, attempt, token=seed)
            pending.append((seed, attempt + 1, ready_at))
        else:
            failures.append({"seed": seed, "attempts": attempt,
                             "error": error})
            if telemetry is not None:
                telemetry.seed_failed(seed)

    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as scratch:
        while pending or running:
            now = time.monotonic()
            # launch whatever is ready while worker slots are free
            ready = [item for item in pending if item[2] <= now]
            for item in ready[:max(0, workers - len(running))]:
                pending.remove(item)
                seed, attempt, _ = item
                result_path = os.path.join(
                    scratch, f"seed{seed}-try{attempt}.json")
                process = context.Process(
                    target=_worker_main,
                    args=(spec_data, seed, attempt, result_path,
                          telemetry_fd),
                    daemon=True)
                process.start()
                deadline = (now + run_timeout
                            if run_timeout is not None else None)
                running[process] = (seed, attempt, result_path, deadline)
            # reap finished / overdue workers
            now = time.monotonic()
            for process in list(running):
                seed, attempt, result_path, deadline = running[process]
                if process.is_alive():
                    if deadline is not None and now > deadline:
                        process.kill()
                        process.join()
                        running.pop(process)
                        record_failure(
                            seed, attempt,
                            f"run timeout: seed {seed} exceeded "
                            f"{run_timeout}s wall clock")
                    continue
                process.join()
                running.pop(process)
                payload = None
                if os.path.exists(result_path):
                    try:
                        with open(result_path, "r",
                                  encoding="utf-8") as handle:
                            payload = json.load(handle)
                    except ValueError:
                        payload = None
                if payload is not None and payload.get("ok"):
                    row = payload["row"]
                    rows.append(row)
                    if telemetry is not None:
                        telemetry.seed_done(seed)
                    if journal_handle is not None:
                        _journal_append(journal_handle,
                                        {"status": "ok", "seed": seed,
                                         "attempt": attempt, "row": row})
                elif payload is not None:
                    record_failure(seed, attempt,
                                   payload.get("error", "worker error"))
                else:
                    record_failure(
                        seed, attempt,
                        f"worker died (exit code {process.exitcode}) "
                        f"before writing a result")
            if telemetry is not None:
                telemetry.poll()
            if pending or running:
                time.sleep(0.02)
    # a seed that eventually succeeded should not linger as a failure
    succeeded = {row["seed"] for row in rows}
    failures = [entry for entry in failures
                if entry["seed"] not in succeeded]
    return rows, failures


def merge_rows(rows: Iterable[Dict[str, Any]]) -> ResilienceReport:
    """Convenience: merge bare per-seed rows (journal or result form)."""
    return ResilienceReport.merged(
        ResilienceReport.from_dict(row["resilience"]) for row in rows)
