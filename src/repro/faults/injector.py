"""Deterministic fault injection over the cosimulation routing layer.

The :class:`FaultInjector` wraps the connector hop of every routed
signal in a :class:`~repro.simulation.cosim.SystemSimulation`: the
harness hands each (sender part, sender port, peer part, connector,
signal) tuple to :meth:`route` *instead of* scheduling the delivery
directly, and the injector decides — per the campaign's first matching
spec — whether the signal is dropped, duplicated, corrupted, delayed,
reordered, or passed through untouched.

Determinism: one ``random.Random(seed)`` is consulted in interception
order only (probability draws for ``probability < 1``, mask draws for
``corrupt`` without an explicit ``xor``), so two runs of the same
seeded campaign over the same traffic produce byte-identical message
logs and :class:`~repro.faults.report.ResilienceReport`s.  Because the
injector sits *above* the state machine engines, compiled and
interpreted cosimulation stay lockstep-equivalent under faults.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from ..engine import FAULT
from ..perf import PERF
from .campaign import FaultCampaign, FaultSpec
from .report import ResilienceReport

#: A held (reorder) message: peer part, signal, arguments, latency.
_Held = Tuple[str, str, Dict[str, Any], float]


class FaultInjector:
    """Applies a :class:`FaultCampaign` to routed cosimulation traffic."""

    __slots__ = ("simulation", "campaign", "seed", "rng", "report",
                 "_fired", "_held")

    def __init__(self, simulation, campaign: FaultCampaign,
                 seed: Optional[int] = None,
                 report: Optional[ResilienceReport] = None):
        self.simulation = simulation
        self.campaign = campaign
        self.seed = campaign.seed if seed is None else int(seed)
        self.rng = random.Random(self.seed)
        self.report = report if report is not None else ResilienceReport()
        #: per-spec injection counts (enforces max_count)
        self._fired: List[int] = [0] * len(campaign.faults)
        #: per-spec held message awaiting its reorder partner
        self._held: Dict[int, _Held] = {}

    # -- the interception point -------------------------------------------

    def route(self, part: str, port: str, peer: str, connector: str,
              signal: str, arguments: Dict[str, Any],
              latency: float) -> None:
        """Route one signal hop, applying the first matching fault spec."""
        simulation = self.simulation
        now = simulation.simulator.now
        spec, index = self._match(now, part, port, peer, connector, signal)
        if spec is None:
            simulation._schedule_delivery(peer, signal, arguments, latency,
                                          sender=part)
            return
        self._fired[index] += 1
        PERF.incr("faults.injected")
        kind = spec.kind
        # Report writes stay direct (deterministic even with the bus
        # off); the trace event is observation only.
        bus = getattr(simulation, "bus", None)
        if bus is not None and FAULT in bus.active_kinds:
            record = bus.emit(FAULT, now, part,
                              {"fault": spec.name, "kind": kind,
                               "signal": signal, "peer": peer,
                               "connector": connector})
            if bus.causal and record is not None:
                # the corrupted/delayed/duplicated delivery descends
                # from the injection, not the clean routing record
                bus.cause = record.ordinal
        if kind == "drop":
            self.report.record_injection(now, spec.name, kind, spec.site(),
                                         signal)
            return
        if kind == "duplicate":
            self.report.record_injection(now, spec.name, kind, spec.site(),
                                         signal)
            simulation._schedule_delivery(peer, signal, arguments, latency,
                                          sender=part)
            simulation._schedule_delivery(peer, signal, dict(arguments),
                                          latency, sender=part)
            return
        if kind == "corrupt":
            mutated, detail = self._corrupt(spec, arguments)
            self.report.record_injection(now, spec.name, kind, spec.site(),
                                         signal, detail=detail)
            simulation._schedule_delivery(peer, signal, mutated, latency,
                                          sender=part)
            return
        if kind == "delay":
            extra = spec.delay
            if spec.jitter:
                extra += self.rng.uniform(0.0, spec.jitter)
            self.report.record_injection(now, spec.name, kind, spec.site(),
                                         signal, detail=f"+{extra:g}")
            simulation._schedule_delivery(peer, signal, arguments,
                                          latency + extra, sender=part)
            return
        # reorder: hold the first matched signal; the next match releases
        # both with the arrival order swapped.
        held = self._held.pop(index, None)
        if held is None:
            self._held[index] = (peer, signal, dict(arguments), latency)
            return
        held_peer, held_signal, held_arguments, held_latency = held
        self.report.record_injection(
            now, spec.name, kind, spec.site(), signal,
            detail=f"swapped with held {held_signal}")
        simulation._schedule_delivery(peer, signal, arguments, latency,
                                      sender=part)
        simulation._schedule_delivery(held_peer, held_signal,
                                      held_arguments, held_latency,
                                      sender=part)

    def _match(self, now: float, part: str, port: str, peer: str,
               connector: str, signal: str
               ) -> Tuple[Optional[FaultSpec], int]:
        """First enabled matching spec (site, window, budget, dice)."""
        for index, spec in enumerate(self.campaign.faults):
            if spec.max_count is not None \
                    and self._fired[index] >= spec.max_count:
                continue
            if not spec.matches(now, part, port, peer, connector, signal):
                continue
            if spec.probability < 1.0 \
                    and self.rng.random() >= spec.probability:
                continue
            return spec, index
        return None, -1

    def _corrupt(self, spec: FaultSpec, arguments: Dict[str, Any]
                 ) -> Tuple[Dict[str, Any], str]:
        """XOR one integer argument; non-integer payloads pass through."""
        field = spec.field
        if field is None:
            for key in sorted(arguments):
                if isinstance(arguments[key], int):
                    field = key
                    break
        value = arguments.get(field) if field is not None else None
        if field is None or not isinstance(value, int):
            return arguments, "no integer field to corrupt"
        mask = spec.xor if spec.xor is not None \
            else 1 << self.rng.randrange(12)
        mutated = dict(arguments)
        mutated[field] = value ^ mask
        return mutated, f"{field} ^= {mask:#x}"

    # -- end-of-run + checkpointing ---------------------------------------

    def flush(self) -> List[Tuple[str, str, Dict[str, Any]]]:
        """Release reorder-held messages that never found a partner.

        Returns ``(peer, signal, arguments)`` tuples in spec order; the
        harness schedules them at the current time so no message is
        silently lost at the end of a run.
        """
        leftovers = [(peer, signal, arguments)
                     for _index, (peer, signal, arguments, _latency)
                     in sorted(self._held.items())]
        self._held.clear()
        return leftovers

    def snapshot(self) -> Dict[str, Any]:
        """Capture RNG state, budgets and held messages."""
        return {
            "rng": self.rng.getstate(),
            "fired": list(self._fired),
            "held": {index: (peer, signal, dict(arguments), latency)
                     for index, (peer, signal, arguments, latency)
                     in self._held.items()},
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        self.rng.setstate(snap["rng"])
        self._fired = list(snap["fired"])
        self._held = {index: (peer, signal, dict(arguments), latency)
                      for index, (peer, signal, arguments, latency)
                      in snap["held"].items()}

    def __repr__(self) -> str:
        return (f"<FaultInjector {self.campaign.name!r} seed={self.seed} "
                f"injected={sum(self._fired)}>")
