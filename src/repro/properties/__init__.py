"""`repro.properties` — online temporal-property checking (PR 7).

Fault campaigns that prove *correctness*, not just survival: declare
temporal assertions (:func:`response`, :func:`precedence`,
:func:`absence`, :func:`bounded_liveness`,
:func:`interaction_conformance`) over the typed TraceBus stream, let
the :class:`PropertyChecker` evaluate them online as monitor automata
over simulated time — engine-agnostic, byte-identical across the
interpreted/compiled/batched engines, checkpoint/restore-transparent —
and aggregate per-property pass rates across campaign seeds with
:func:`aggregate_reports`.  See ``docs/PROPERTIES.md``.
"""

from .checker import VIOLATION_POLICIES, PropertyChecker
from .report import PropertyReport, aggregate_reports, aggregate_to_json
from .spec import (
    AbsenceProperty,
    BoundedLivenessProperty,
    EventMatch,
    InteractionConformanceProperty,
    PrecedenceProperty,
    Property,
    PropertySuite,
    ResponseProperty,
    absence,
    bounded_liveness,
    coerce_suite,
    interaction_conformance,
    precedence,
    response,
)

__all__ = [
    "EventMatch",
    "Property",
    "PropertySuite",
    "ResponseProperty",
    "PrecedenceProperty",
    "AbsenceProperty",
    "BoundedLivenessProperty",
    "InteractionConformanceProperty",
    "response",
    "precedence",
    "absence",
    "bounded_liveness",
    "interaction_conformance",
    "coerce_suite",
    "PropertyChecker",
    "VIOLATION_POLICIES",
    "PropertyReport",
    "aggregate_reports",
    "aggregate_to_json",
]
