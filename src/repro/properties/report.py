"""Property verdicts as artifacts: per-run and campaign-level reports.

A :class:`PropertyReport` is the serialized outcome of one checked run
— per property: verdict, monitor statistics, the ordered violation
records and the time-to-first-violation.  JSON output is key-sorted so
reports are byte-comparable: two runs that behaved identically produce
identical bytes, which is how the engine-lockstep and
serial == parallel == vectorized == resumed guarantees are asserted.

:func:`aggregate_reports` folds per-seed reports into the campaign
artifact: per-property pass rates across seeds, violated-seed lists and
a seed → time-to-violation map.  Aggregation is *order-independent* —
it keys by seed and sorts — so the merged artifact is identical no
matter which execution mode produced the rows or in which order they
completed (the same contract :class:`ResilienceReport.merge` keeps).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..errors import PropertyError

REPORT_VERSION = 1


class PropertyReport:
    """Per-run property verdicts (see module docstring for the schema)."""

    __slots__ = ("suite", "properties")

    def __init__(self, suite: str,
                 properties: Dict[str, Dict[str, Any]]):
        self.suite = suite
        #: property name -> {kind, verdict, stats, violations,
        #:                    time_to_violation}
        self.properties = properties

    @classmethod
    def from_checker(cls, checker) -> "PropertyReport":
        """Snapshot a :class:`PropertyChecker`'s current verdicts."""
        stats = checker.stats()
        properties: Dict[str, Dict[str, Any]] = {}
        for prop in checker.suite:
            violations = checker.violations(prop.name)
            properties[prop.name] = {
                "kind": prop.kind,
                "verdict": "violated" if violations else "pass",
                "stats": stats[prop.name],
                "violations": violations,
                "time_to_violation": (violations[0]["t"] if violations
                                      else None),
            }
        return cls(checker.suite.name, properties)

    @property
    def total_violations(self) -> int:
        return sum(len(entry["violations"])
                   for entry in self.properties.values())

    @property
    def verdict(self) -> str:
        """``"violated"`` when any property failed, else ``"pass"``."""
        return ("violated" if any(entry["verdict"] == "violated"
                                  for entry in self.properties.values())
                else "pass")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": REPORT_VERSION,
            "suite": self.suite,
            "verdict": self.verdict,
            "total_violations": self.total_violations,
            "properties": {name: dict(entry)
                           for name, entry in self.properties.items()},
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PropertyReport":
        if not isinstance(data, Mapping) or "properties" not in data:
            raise PropertyError(
                f"not a property report: {data!r}")
        return cls(data.get("suite", "suite"),
                   {name: dict(entry)
                    for name, entry in data["properties"].items()})

    def __repr__(self) -> str:
        return (f"<PropertyReport {self.suite!r} {self.verdict} "
                f"violations={self.total_violations}>")


def aggregate_reports(per_seed: Mapping[int, Any]) -> Dict[str, Any]:
    """Fold ``{seed: PropertyReport | report dict}`` into the campaign
    artifact (order-independent; see module docstring)."""
    reports: Dict[int, PropertyReport] = {}
    for seed, report in per_seed.items():
        if not isinstance(report, PropertyReport):
            report = PropertyReport.from_dict(report)
        reports[int(seed)] = report

    seeds = sorted(reports)
    if not seeds:
        return {"version": REPORT_VERSION, "suite": "suite",
                "seeds": [], "verdict": "pass", "total_violations": 0,
                "properties": {}}

    suite_names = {reports[seed].suite for seed in seeds}
    if len(suite_names) > 1:
        raise PropertyError(
            f"cannot aggregate reports from different suites: "
            f"{sorted(suite_names)}")

    names: Dict[str, str] = {}
    for seed in seeds:
        for name, entry in reports[seed].properties.items():
            names.setdefault(name, entry["kind"])

    properties: Dict[str, Dict[str, Any]] = {}
    total_violations = 0
    for name in sorted(names):
        checked = 0
        violations = 0
        violated_seeds = []
        time_to_violation: Dict[str, float] = {}
        for seed in seeds:
            entry = reports[seed].properties.get(name)
            if entry is None:
                continue
            checked += 1
            violations += len(entry["violations"])
            if entry["verdict"] == "violated":
                violated_seeds.append(seed)
                if entry["time_to_violation"] is not None:
                    time_to_violation[str(seed)] = entry["time_to_violation"]
        passes = checked - len(violated_seeds)
        properties[name] = {
            "kind": names[name],
            "checked": checked,
            "violated_seeds": violated_seeds,
            "pass_rate": round(100.0 * passes / checked, 2) if checked
                         else 100.0,
            "violations": violations,
            "time_to_violation": time_to_violation,
        }
        total_violations += violations

    return {
        "version": REPORT_VERSION,
        "suite": next(iter(suite_names)),
        "seeds": seeds,
        "verdict": ("violated" if total_violations else "pass"),
        "total_violations": total_violations,
        "properties": properties,
    }


def aggregate_to_json(per_seed: Mapping[int, Any],
                      indent: Optional[int] = 2) -> str:
    """Key-sorted JSON of :func:`aggregate_reports` (byte-comparable)."""
    return json.dumps(aggregate_reports(per_seed), indent=indent,
                      sort_keys=True)
